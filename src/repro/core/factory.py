"""String-keyed construction of policies (CLI, config files, serve).

Besides the builders themselves this module carries a *parameter
schema* per policy (:func:`policy_schema`): the parameter letters each
builder accepts, their types, defaults and one-line docs.  The serve
layer publishes it verbatim as ``GET /api/policies`` and
:func:`make_policy` validates parameter names against it, so a typo in
``-p`` params or a campaign request fails loudly with the valid
spellings instead of being silently ignored.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple

from repro.core.base import RejuvenationPolicy
from repro.core.baselines import NeverRejuvenate, PeriodicRejuvenation
from repro.core.clta import CLTA
from repro.core.control_charts import CUSUMPolicy, EWMAPolicy
from repro.core.quantile import QuantilePolicy
from repro.core.saraa import SARAA
from repro.core.sla import ServiceLevelObjective
from repro.core.sraa import SRAA, StaticRejuvenation
from repro.core.threshold import DeterministicThreshold, RiskBasedThreshold
from repro.core.trend import TrendPolicy


def _build_sraa(slo: ServiceLevelObjective, **kw: Any) -> RejuvenationPolicy:
    return SRAA(
        slo,
        sample_size=int(kw.get("n", 1)),
        n_buckets=int(kw.get("K", 1)),
        depth=int(kw.get("D", 1)),
    )


def _build_saraa(slo: ServiceLevelObjective, **kw: Any) -> RejuvenationPolicy:
    return SARAA(
        slo,
        sample_size=int(kw.get("n", 5)),
        n_buckets=int(kw.get("K", 1)),
        depth=int(kw.get("D", 1)),
    )


def _build_clta(slo: ServiceLevelObjective, **kw: Any) -> RejuvenationPolicy:
    return CLTA(slo, sample_size=int(kw.get("n", 30)), z=float(kw.get("z", 1.96)))


def _build_static(slo: ServiceLevelObjective, **kw: Any) -> RejuvenationPolicy:
    return StaticRejuvenation(
        slo, n_buckets=int(kw.get("K", 1)), depth=int(kw.get("D", 1))
    )


def _build_never(slo: ServiceLevelObjective, **kw: Any) -> RejuvenationPolicy:
    return NeverRejuvenate()


def _build_periodic(slo: ServiceLevelObjective, **kw: Any) -> RejuvenationPolicy:
    return PeriodicRejuvenation(period=int(kw.get("period", 1000)))


def _build_threshold(slo: ServiceLevelObjective, **kw: Any) -> RejuvenationPolicy:
    default_limit = slo.shift_threshold(3)
    return DeterministicThreshold(threshold=float(kw.get("limit", default_limit)))


def _build_risk(slo: ServiceLevelObjective, **kw: Any) -> RejuvenationPolicy:
    soft = float(kw.get("soft", slo.shift_threshold(1)))
    hard = float(kw.get("hard", slo.shift_threshold(4)))
    return RiskBasedThreshold(soft_limit=soft, hard_limit=hard)


def _build_trend(slo: ServiceLevelObjective, **kw: Any) -> RejuvenationPolicy:
    return TrendPolicy(
        sample_size=int(kw.get("n", 5)),
        window=int(kw.get("window", 12)),
        alpha=float(kw.get("alpha", 0.05)),
        min_slope=float(kw.get("min_slope", 0.0)),
    )


def _build_quantile(
    slo: ServiceLevelObjective, **kw: Any
) -> RejuvenationPolicy:
    # Default limit: the paper's 10 s maximum acceptable response time.
    return QuantilePolicy(
        quantile=float(kw.get("q", 0.95)),
        limit=float(kw.get("limit", 10.0)),
        window=int(kw.get("window", 100)),
        patience=int(kw.get("patience", 2)),
    )


def _build_cusum(slo: ServiceLevelObjective, **kw: Any) -> RejuvenationPolicy:
    return CUSUMPolicy(
        slo,
        k_sigmas=float(kw.get("k", 0.5)),
        h_sigmas=float(kw.get("h", 5.0)),
    )


def _build_ewma(slo: ServiceLevelObjective, **kw: Any) -> RejuvenationPolicy:
    return EWMAPolicy(
        slo,
        lam=float(kw.get("lam", 0.2)),
        L_sigmas=float(kw.get("L", 3.0)),
    )


def _build_adaptive(
    slo: ServiceLevelObjective, **kw: Any
) -> RejuvenationPolicy:
    from repro.detect.adaptive import AdaptiveThresholdPolicy

    return AdaptiveThresholdPolicy(
        slo,
        sample_size=int(kw.get("n", 2)),
        window=int(kw.get("window", 64)),
        k_sigmas=float(kw.get("k", 4.0)),
        patience=int(kw.get("patience", 6)),
        grow_limit_sigmas=float(kw.get("grow", 0.75)),
        warmup=int(kw.get("warmup", 16)),
    )


def _build_entropy(
    slo: ServiceLevelObjective, **kw: Any
) -> RejuvenationPolicy:
    from repro.detect.entropy import EntropyPolicy

    return EntropyPolicy(
        slo,
        window=int(kw.get("window", 128)),
        bins=int(kw.get("bins", 12)),
        drift=float(kw.get("drift", 0.5)),
        patience=int(kw.get("patience", 16)),
        warmup=int(kw.get("warmup", 256)),
        adapt=float(kw.get("adapt", 0.002)),
    )


def _build_predictor(
    slo: ServiceLevelObjective, **kw: Any
) -> RejuvenationPolicy:
    from repro.detect.predictor import TrendProjectionPolicy

    return TrendProjectionPolicy(
        slo,
        sample_size=int(kw.get("n", 5)),
        alpha=float(kw.get("alpha", 0.3)),
        beta=float(kw.get("beta", 0.1)),
        lookahead=int(kw.get("lookahead", 12)),
        bound=float(kw["bound"]) if "bound" in kw else None,
        warmup=int(kw.get("warmup", 10)),
        patience=int(kw.get("patience", 3)),
    )


_BUILDERS: Dict[str, Callable[..., RejuvenationPolicy]] = {
    "adaptive": _build_adaptive,
    "entropy": _build_entropy,
    "predictor": _build_predictor,
    "cusum": _build_cusum,
    "ewma": _build_ewma,
    "quantile": _build_quantile,
    "trend": _build_trend,
    "sraa": _build_sraa,
    "saraa": _build_saraa,
    "clta": _build_clta,
    "static": _build_static,
    "never": _build_never,
    "periodic": _build_periodic,
    "threshold": _build_threshold,
    "risk-threshold": _build_risk,
}


def _p(name: str, kind: str, default: str, doc: str) -> Dict[str, str]:
    return {"name": name, "type": kind, "default": default, "doc": doc}


#: One-line summary + parameter schema per factory name, published as
#: ``GET /api/policies`` and enforced by :func:`make_policy`.
_SCHEMAS: Dict[str, Tuple[str, Tuple[Dict[str, str], ...]]] = {
    "sraa": (
        "the paper's Software Rejuvenation Alert Algorithm",
        (
            _p("n", "int", "1", "batch size"),
            _p("K", "int", "1", "buckets to climb before triggering"),
            _p("D", "int", "1", "bucket depth (net exceedances per level)"),
        ),
    ),
    "saraa": (
        "SRAA with sampling acceleration (adaptive batch size)",
        (
            _p("n", "int", "5", "initial batch size"),
            _p("K", "int", "1", "buckets to climb before triggering"),
            _p("D", "int", "1", "bucket depth (net exceedances per level)"),
        ),
    ),
    "clta": (
        "central-limit-theorem alert (single z-test per batch)",
        (
            _p("n", "int", "30", "batch size"),
            _p("z", "float", "1.96", "one-sided z threshold"),
        ),
    ),
    "static": (
        "the original static-threshold alert (SRAA with n=1)",
        (
            _p("K", "int", "1", "buckets to climb before triggering"),
            _p("D", "int", "1", "bucket depth (net exceedances per level)"),
        ),
    ),
    "never": ("no rejuvenation ever (control arm)", ()),
    "periodic": (
        "time-blind rejuvenation every N observations",
        (_p("period", "int", "1000", "observations between rejuvenations"),),
    ),
    "threshold": (
        "deterministic single-observation threshold",
        (_p("limit", "float", "slo.mean + 3*slo.std", "hard limit in seconds"),),
    ),
    "risk-threshold": (
        "two-level soft/hard threshold",
        (
            _p("soft", "float", "slo.mean + 1*slo.std", "soft limit (warning)"),
            _p("hard", "float", "slo.mean + 4*slo.std", "hard limit (trigger)"),
        ),
    ),
    "trend": (
        "Mann-Kendall/Theil-Sen slope test over recent batch means",
        (
            _p("n", "int", "5", "batch size"),
            _p("window", "int", "12", "batch means in the test window"),
            _p("alpha", "float", "0.05", "Mann-Kendall significance level"),
            _p("min_slope", "float", "0.0", "minimum Theil-Sen slope (s/batch)"),
        ),
    ),
    "quantile": (
        "windowed tail-quantile threshold",
        (
            _p("q", "float", "0.95", "tracked quantile"),
            _p("limit", "float", "10.0", "quantile limit in seconds"),
            _p("window", "int", "100", "window size in observations"),
            _p("patience", "int", "2", "consecutive breaches to trigger"),
        ),
    ),
    "cusum": (
        "one-sided CUSUM control chart on raw observations",
        (
            _p("k", "float", "0.5", "reference offset in sigmas"),
            _p("h", "float", "5.0", "decision interval in sigmas"),
        ),
    ),
    "ewma": (
        "EWMA control chart on raw observations",
        (
            _p("lam", "float", "0.2", "EWMA weight"),
            _p("L", "float", "3.0", "control-limit width in sigmas"),
        ),
    ),
    "adaptive": (
        "self-recalibrating k-sigma threshold (workload-shift robust)",
        (
            _p("n", "int", "2", "batch size"),
            _p("window", "int", "64", "rolling baseline window (batch means)"),
            _p("k", "float", "4.0", "detection threshold in baseline sigmas"),
            _p("patience", "int", "6", "consecutive exceedances to decide"),
            _p("grow", "float", "0.75", "shift/aging growth limit in sigmas"),
            _p("warmup", "int", "16", "accepted batches before arming"),
        ),
    ),
    "entropy": (
        "CHAOS-style windowed-entropy shift detector",
        (
            _p("window", "int", "128", "sliding window (raw observations)"),
            _p("bins", "int", "12", "histogram buckets before overflow"),
            _p("drift", "float", "0.5", "entropy deviation band in nats"),
            _p("patience", "int", "16", "consecutive deviations to trigger"),
            _p("warmup", "int", "256", "observations before the reference"),
            _p("adapt", "float", "0.002", "reference EWMA weight when healthy"),
        ),
    ),
    "predictor": (
        "Holt trend projection against the SLA bound",
        (
            _p("n", "int", "5", "batch size"),
            _p("alpha", "float", "0.3", "Holt level smoothing weight"),
            _p("beta", "float", "0.1", "Holt trend smoothing weight"),
            _p("lookahead", "int", "12", "projection horizon in batches"),
            _p("bound", "float", "slo.mean + 4*slo.std", "SLA bound in seconds"),
            _p("warmup", "int", "10", "batches before the model is trusted"),
            _p("patience", "int", "3", "consecutive projected breaches"),
        ),
    ),
}

assert set(_SCHEMAS) == set(_BUILDERS)


def available_policies() -> tuple[str, ...]:
    """Names accepted by :func:`make_policy`."""
    return tuple(sorted(_BUILDERS))


def policy_parameters(name: str) -> Tuple[Dict[str, str], ...]:
    """The parameter schema of one policy (raises on unknown names)."""
    try:
        return _SCHEMAS[name][1]
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; available: "
            f"{', '.join(available_policies())}"
        ) from None


def policy_schema() -> List[Dict[str, Any]]:
    """Every factory-constructible policy with its parameter schema.

    JSON-ready: a list of ``{"name", "summary", "params"}`` dicts in
    :func:`available_policies` order (served as ``GET /api/policies``).
    """
    return [
        {
            "name": name,
            "summary": _SCHEMAS[name][0],
            "params": [dict(p) for p in _SCHEMAS[name][1]],
        }
        for name in available_policies()
    ]


def make_policy(
    name: str, slo: ServiceLevelObjective, **params: Any
) -> RejuvenationPolicy:
    """Build a policy by name.

    Parameters
    ----------
    name:
        One of :func:`available_policies`.
    slo:
        The service-level objective (ignored by the stateless baselines).
    params:
        Algorithm parameters using the paper's letters: ``n``, ``K``,
        ``D``, ``z`` -- plus baseline-specific keys (``period``,
        ``limit``, ``soft``, ``hard``).

    Examples
    --------
    >>> from repro.core.sla import PAPER_SLO
    >>> make_policy("sraa", PAPER_SLO, n=2, K=5, D=3).describe()
    'SRAA(n=2, K=5, D=3)'
    """
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; available: {', '.join(available_policies())}"
        ) from None
    allowed = {p["name"] for p in _SCHEMAS[name][1]}
    unknown = sorted(set(params) - allowed)
    if unknown:
        raise ValueError(
            f"unknown parameter(s) {', '.join(unknown)} for policy "
            f"{name!r}; accepted: {', '.join(sorted(allowed)) or '(none)'}"
        )
    return builder(slo, **params)
