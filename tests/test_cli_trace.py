"""The CLI tracing surface: --trace/--trace-level/--trace-chrome/
--metrics, --telemetry-csv, and the `repro explain` subcommand."""

import csv
import json

import pytest

from repro.cli import main
from repro.obs.exporters import read_jsonl


SIMULATE = [
    "simulate",
    "--policy", "sraa",
    "-p", "n=2", "-p", "K=5", "-p", "D=3",
    "--load", "9",
    "--transactions", "2000",
    "--seed", "3",
]


class TestSimulateTrace:
    def test_jsonl_trace_written_and_explainable(self, tmp_path, capsys):
        trace = str(tmp_path / "out.jsonl")
        assert main(SIMULATE + ["--trace", trace]) == 0
        assert f"wrote {trace}" in capsys.readouterr().out

        records = read_jsonl(trace)
        types = {r["type"] for r in records}
        assert "run.meta" in types
        assert "request.complete" in types
        assert "policy.trigger" in types

        assert main(["explain", trace]) == 0
        out = capsys.readouterr().out
        assert "trigger #1" in out
        assert "bucket" in out and "threshold" in out

    def test_trace_level_spans_omits_decisions(self, tmp_path):
        trace = str(tmp_path / "spans.jsonl")
        assert (
            main(SIMULATE + ["--trace", trace, "--trace-level", "spans"])
            == 0
        )
        types = {r["type"] for r in read_jsonl(trace)}
        assert "request.complete" in types
        assert "policy.trigger" not in types
        assert "des.event" not in types

    def test_chrome_trace_is_valid_event_array(self, tmp_path):
        chrome = str(tmp_path / "chrome.json")
        assert main(SIMULATE + ["--trace-chrome", chrome]) == 0
        with open(chrome) as handle:
            events = json.load(handle)
        assert isinstance(events, list) and events
        for event in events:
            assert {"name", "ph", "ts", "pid", "tid"} <= set(event)
        assert any(e["ph"] == "X" for e in events)

    def test_metrics_snapshot(self, tmp_path):
        metrics = str(tmp_path / "metrics.prom")
        assert main(SIMULATE + ["--metrics", metrics]) == 0
        content = open(metrics).read()
        assert "# TYPE repro_completed_total counter" in content
        assert "repro_response_time_seconds_bucket" in content

    def test_telemetry_csv_schema(self, tmp_path):
        from repro.ecommerce.telemetry import TELEMETRY_COLUMNS

        path = str(tmp_path / "telemetry.csv")
        assert (
            main(
                SIMULATE
                + ["--replications", "2", "--telemetry-csv", path]
            )
            == 0
        )
        with open(path, newline="") as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["replication"] + list(TELEMETRY_COLUMNS)
        replications = {row[0] for row in rows[1:]}
        assert replications == {"0", "1"}


class TestRunTrace:
    def test_run_comparison_quick_traces(self, tmp_path, capsys):
        """The ISSUE acceptance command, at smoke scale for test speed."""
        trace = str(tmp_path / "out.jsonl")
        code = main(
            [
                "run", "comparison",
                "--scale", "smoke",
                "--trace", trace,
            ]
        )
        assert code == 0
        records = read_jsonl(trace)
        types = {r["type"] for r in records}
        assert "request.complete" in types  # request spans
        assert "policy.batch" in types  # policy decisions
        assert main(["explain", trace]) == 0
        capsys.readouterr()

    def test_alias_resolves(self):
        from repro.experiments.registry import resolve_experiment_id

        assert resolve_experiment_id("comparison") == "fig16"
        assert resolve_experiment_id("fig16") == "fig16"
        with pytest.raises(ValueError, match="aliases"):
            resolve_experiment_id("nope")


class TestExplainCommand:
    def test_missing_file_exits(self):
        with pytest.raises(SystemExit):
            main(["explain", "/nonexistent/trace.jsonl"])
