"""Fault injectors: each one changes the system the way it claims to."""

import pickle

import pytest

from repro.ecommerce.config import PAPER_CONFIG
from repro.ecommerce.spec import ArrivalSpec
from repro.ecommerce.system import ECommerceSystem
from repro.ecommerce.workload import PoissonArrivals
from repro.faults.injectors import (
    INJECTION_NAMES,
    INJECTION_TYPES,
    AgingAcceleration,
    HeavyTailContamination,
    NodeCrash,
    NodeHang,
    ServiceSlowdown,
    TrafficSurge,
    WorkloadRamp,
    WorkloadShift,
)

BASE = PAPER_CONFIG.without_degradation()
RATE = PAPER_CONFIG.arrival_rate_for_load(6.0)


def run_with(injections, n=600, seed=3, config=BASE, rate=RATE):
    system = ECommerceSystem(
        config,
        PoissonArrivals(rate),
        policy=None,
        seed=seed,
        faults=injections,
    )
    return system, system.run(n)


class TestWorkloadShift:
    def test_step_raises_throughput(self):
        _, calm = run_with(())
        _, shifted = run_with((WorkloadShift.step(at_s=50.0, rate=4.0),))
        # Same arrival count at a higher late rate: the run ends sooner.
        assert shifted.sim_duration_s < calm.sim_duration_s

    def test_same_injection_arms_identically_on_fresh_systems(self):
        shift = WorkloadShift.step(at_s=50.0, rate=4.0)
        _, first = run_with((shift,), seed=9)
        _, again = run_with((shift,), seed=9)
        assert first == again  # injections keep no state across arms

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadShift.step(at_s=-1.0, rate=2.0)


class TestWorkloadRamp:
    def test_ramp_compresses_run(self):
        _, calm = run_with(())
        ramp = WorkloadRamp(
            start_s=20.0, end_s=120.0, from_rate=RATE, to_rate=4.0, steps=5
        )
        _, ramped = run_with((ramp,))
        assert ramped.sim_duration_s < calm.sim_duration_s

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadRamp(10.0, 10.0, 1.0, 2.0)
        with pytest.raises(ValueError):
            WorkloadRamp(0.0, 10.0, 0.0, 2.0)
        with pytest.raises(ValueError):
            WorkloadRamp(0.0, 10.0, 1.0, 2.0, steps=0)


class TestTrafficSurge:
    def test_surge_restores_original_process(self):
        surge = TrafficSurge(at_s=50.0, factor=3.0, duration_s=60.0)
        system, result = run_with((surge,))
        # After the surge window the constructor's process is back.
        assert system.arrivals is system._base_arrivals
        assert result.arrivals == 600

    def test_surge_shortens_run(self):
        _, calm = run_with(())
        _, surged = run_with(
            (TrafficSurge(at_s=10.0, factor=3.0, duration_s=400.0),)
        )
        assert surged.sim_duration_s < calm.sim_duration_s

    def test_validation(self):
        with pytest.raises(ValueError):
            TrafficSurge(0.0, 0.0, 10.0)
        with pytest.raises(ValueError):
            TrafficSurge(0.0, 2.0, 0.0)


class TestServiceSlowdown:
    def test_persistent_slowdown_raises_rt(self):
        _, calm = run_with(())
        _, slowed = run_with((ServiceSlowdown(at_s=0.0, factor=3.0),))
        assert slowed.avg_response_time > 2.0 * calm.avg_response_time

    def test_transient_slowdown_restores_scale(self):
        slow = ServiceSlowdown(at_s=10.0, factor=3.0, duration_s=50.0)
        system, _ = run_with((slow,))
        assert system.node.service_scale == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ServiceSlowdown(0.0, 0.0)
        with pytest.raises(ValueError):
            ServiceSlowdown(0.0, 2.0, duration_s=0.0)


class TestHeavyTailContamination:
    def test_contamination_inflates_max_rt(self):
        _, calm = run_with((), n=2000)
        contaminated = HeavyTailContamination(
            at_s=0.0, prob=0.3, alpha=1.5, scale_s=50.0
        )
        _, heavy = run_with((contaminated,), n=2000)
        assert heavy.max_response_time > 2.0 * calm.max_response_time
        assert heavy.avg_response_time > calm.avg_response_time

    def test_transient_contamination_cleared(self):
        contaminated = HeavyTailContamination(
            at_s=10.0, prob=0.5, alpha=1.5, scale_s=10.0, duration_s=30.0
        )
        system, _ = run_with((contaminated,))
        assert system.node.contamination is None

    def test_validation(self):
        with pytest.raises(ValueError):
            HeavyTailContamination(0.0, 0.0, 1.5, 1.0)
        with pytest.raises(ValueError):
            HeavyTailContamination(0.0, 0.5, 0.0, 1.0)
        with pytest.raises(ValueError):
            HeavyTailContamination(0.0, 0.5, 1.5, 0.0)


class TestNodeCrash:
    def test_crash_loses_work_but_is_not_a_rejuvenation(self):
        system, result = run_with((NodeCrash(at_s=100.0, restart_s=30.0),))
        assert system.crashes == 1
        assert result.rejuvenations == 0
        assert result.rejuvenation_times == ()
        assert result.lost > 0
        assert result.completed + result.lost == result.arrivals

    def test_restart_window_refuses_arrivals(self):
        _, slow = run_with((NodeCrash(at_s=100.0, restart_s=60.0),))
        _, fast = run_with((NodeCrash(at_s=100.0, restart_s=0.0),))
        assert slow.lost > fast.lost

    def test_crash_resets_policy_state(self):
        from repro.core import SRAA, PAPER_SLO

        policy = SRAA(PAPER_SLO, sample_size=2, n_buckets=5, depth=3)
        system = ECommerceSystem(
            BASE,
            PoissonArrivals(RATE),
            policy=policy,
            seed=5,
            faults=(NodeCrash(at_s=100.0, restart_s=10.0),),
        )
        system.run(400)
        # No assertion on internals beyond: the run completes and the
        # crash is not recorded as a trigger.
        assert system.rejuvenation_times == [] or all(
            t != 100.0 for t in system.rejuvenation_times
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            NodeCrash(-1.0)
        with pytest.raises(ValueError):
            NodeCrash(0.0, restart_s=-1.0)


class TestNodeHang:
    def test_hang_inflates_max_rt(self):
        _, calm = run_with(())
        _, hung = run_with((NodeHang(at_s=100.0, hang_s=40.0),))
        # A job caught by the stall waits out the full 40 s hang.
        assert hung.max_response_time >= 40.0
        assert hung.max_response_time > calm.max_response_time

    def test_system_healthy_after_hang(self):
        system, result = run_with((NodeHang(at_s=100.0, hang_s=15.0),))
        assert result.lost == 0
        assert system.node.gc_count == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            NodeHang(0.0, 0.0)


class TestAgingAcceleration:
    def test_garbage_injection_drives_gc_without_alloc(self):
        from dataclasses import replace

        config = replace(PAPER_CONFIG, alloc_mb=0.0)
        aging = AgingAcceleration(
            start_s=50.0, rate_mb_s=30.0, interval_s=5.0
        )
        _, result = run_with((aging,), config=config, n=2000)
        assert result.gc_count > 0

    def test_bounded_injection_stops(self):
        from dataclasses import replace

        config = replace(PAPER_CONFIG, alloc_mb=0.0)
        aging = AgingAcceleration(
            start_s=50.0, rate_mb_s=1.0, interval_s=5.0, end_s=100.0
        )
        system, _ = run_with((aging,), config=config)
        assert system.node.garbage_mb <= 1.0 * 50.0 + 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            AgingAcceleration(0.0, 0.0)
        with pytest.raises(ValueError):
            AgingAcceleration(0.0, 1.0, interval_s=0.0)
        with pytest.raises(ValueError):
            AgingAcceleration(10.0, 1.0, end_s=10.0)


class TestRegistryAndPickling:
    def test_every_injection_type_registered_bidirectionally(self):
        for name, cls in INJECTION_TYPES.items():
            assert INJECTION_NAMES[cls] == name

    def test_injections_pickle(self):
        samples = (
            WorkloadShift.step(10.0, 2.0),
            WorkloadRamp(0.0, 10.0, 1.0, 2.0),
            TrafficSurge(0.0, 2.0, 10.0),
            ServiceSlowdown(0.0, 3.0),
            HeavyTailContamination(0.0, 0.2, 1.5, 10.0),
            NodeCrash(0.0, 5.0),
            NodeHang(0.0, 5.0),
            AgingAcceleration(0.0, 1.0),
        )
        for injection in samples:
            assert pickle.loads(pickle.dumps(injection)) == injection

    def test_workload_shift_arrival_spec_survives_pickle(self):
        shift = WorkloadShift(
            at_s=5.0, arrival=ArrivalSpec.mmpp(1.0, 5.0, 30.0, 10.0)
        )
        assert pickle.loads(pickle.dumps(shift)) == shift
