"""Rule families: multi-window burn-rate math and persistence streaks.

The burn-rate cases feed handcrafted cumulative-counter snapshots so
the expected window deltas are exact integers; the regression cases
drive :class:`RegressionRule` with synthetic ledger entries (same
manifest hash, different per-replication vectors) against a duck-typed
ledger, pinning the streak discipline without running a simulation.
"""

import pytest

from repro.obs.sentinel import BurnRateRule, RegressionRule, rules_from_dict


def snap(ts, completed, bad, run="r1"):
    return {
        "ts": ts,
        "completed": completed,
        "slo_bad": bad,
        "slo_s": 0.2,
        "run": run,
    }


def burn_rule(**overrides):
    params = dict(
        slo_s=0.2,
        objective=0.9,  # budget 0.1
        factor=2.0,
        long_window_s=100.0,
        short_window_s=20.0,
        min_count=10,
    )
    params.update(overrides)
    return BurnRateRule("slo", **params)


class TestBurnRateRule:
    def test_validation(self):
        with pytest.raises(ValueError):
            burn_rule(objective=1.0)
        with pytest.raises(ValueError):
            burn_rule(factor=0.0)
        with pytest.raises(ValueError):
            burn_rule(long_window_s=10.0, short_window_s=20.0)
        with pytest.raises(ValueError):
            burn_rule(min_count=0)

    def test_healthy_stream_never_fires(self):
        rule = burn_rule()
        for step in range(1, 20):
            signal = rule.observe_snapshot(
                snap(10.0 * step, 10 * step, 0)
            )
            assert signal is not None and not signal.firing

    def test_short_window_alone_does_not_fire(self):
        rule = burn_rule()
        rule.observe_snapshot(snap(10.0, 10, 0))
        rule.observe_snapshot(snap(20.0, 20, 0))
        # 5/10 bad in the last 10s: short burn 2.5x but long burn
        # (5/30)/0.1 = 1.67x < factor -- the long window gates.
        signal = rule.observe_snapshot(snap(30.0, 30, 5))
        assert signal.observed["burn_short"] == pytest.approx(2.5)
        assert signal.observed["burn_long"] == pytest.approx(5 / 30 / 0.1)
        assert not signal.firing

    def test_fires_when_both_windows_burn(self):
        rule = burn_rule()
        rule.observe_snapshot(snap(10.0, 10, 0))
        rule.observe_snapshot(snap(20.0, 20, 0))
        rule.observe_snapshot(snap(30.0, 30, 5))
        signal = rule.observe_snapshot(snap(40.0, 40, 15))
        assert signal.observed["burn_long"] == pytest.approx(3.75)
        assert signal.observed["burn_short"] == pytest.approx(7.5)
        assert signal.firing
        assert signal.target == "r1"
        assert signal.evidence[0]["record"] == "event"
        assert signal.evidence[0]["kind"] == "live.snapshot"

    def test_recovery_clears_the_firing_state(self):
        rule = burn_rule()
        rule.observe_snapshot(snap(10.0, 10, 0))
        rule.observe_snapshot(snap(30.0, 30, 5))
        assert rule.observe_snapshot(snap(40.0, 40, 15)).firing
        # 100 clean completions later the window base has moved past
        # the bad stretch: burn drops to zero.
        signal = rule.observe_snapshot(snap(140.0, 140, 15))
        assert signal.observed["burn_long"] == pytest.approx(0.0)
        assert not signal.firing

    def test_min_count_gates_thin_windows(self):
        rule = burn_rule(min_count=1000)
        rule.observe_snapshot(snap(10.0, 10, 10))
        signal = rule.observe_snapshot(snap(20.0, 20, 20))
        assert not signal.firing  # 100% bad but too few completions

    def test_counter_reset_starts_a_fresh_window(self):
        rule = burn_rule()
        rule.observe_snapshot(snap(40.0, 40, 20))
        # completed went backwards: a new replication under the same
        # tag.  No negative deltas, no stale burn.
        signal = rule.observe_snapshot(snap(50.0, 5, 0))
        assert signal.observed["burn_long"] == pytest.approx(0.0)
        assert not signal.firing

    def test_targets_are_independent(self):
        rule = burn_rule()
        rule.observe_snapshot(snap(10.0, 10, 0, run="a"))
        firing = rule.observe_snapshot(snap(20.0, 20, 20, run="b"))
        quiet = rule.observe_snapshot(snap(20.0, 20, 0, run="a"))
        assert firing.firing
        assert not quiet.firing

    def test_forget_drops_state(self):
        rule = burn_rule()
        rule.observe_snapshot(snap(10.0, 10, 10))
        rule.forget("r1")
        assert rule._windows == {}

    def test_incomplete_snapshot_yields_no_signal(self):
        rule = burn_rule()
        assert rule.observe_snapshot({"ts": 1.0}) is None
        assert rule.observe_snapshot({"completed": 5, "slo_bad": 1}) is None


# ---------------------------------------------------------------------------
# Regression rules over synthetic ledger entries
# ---------------------------------------------------------------------------
def entry(entry_id, rts, manifest_hash="abc123", kind="simulate"):
    n = len(rts)
    return {
        "id": entry_id,
        "kind": kind,
        "manifest": {"manifest_hash": manifest_hash, "kind": kind},
        "outcomes": {
            "per_replication": {
                "avg_response_time": list(rts),
                "loss_fraction": [0.0] * n,
                "rejuvenations": [1.0] * n,
                "gc_count": [0.0] * n,
            }
        },
    }


BASELINE = entry("sim-0001", [1.0, 1.1, 0.9, 1.0])
HEALTHY = [1.02, 0.95, 1.05, 0.99]
DEGRADED = [3.0, 3.1, 2.9, 3.05]


class FakeLedger:
    """Only what RegressionRule needs: a pinned baseline lookup."""

    def __init__(self, baseline=BASELINE, label="prod"):
        self.baseline = baseline
        self.label = label

    def baseline_entry(self, label):
        if label != self.label:
            raise LookupError(f"no baseline {label!r}")
        return self.baseline


class TestRegressionRule:
    def test_persistence_gates_the_first_exceedance(self):
        rule = RegressionRule("regress", baseline="prod", persistence=2)
        ledger = FakeLedger()
        first = rule.observe_entry(entry("sim-0002", DEGRADED), ledger)
        assert first.observed["exceeded"]
        assert first.observed["streak"] == 1
        assert not first.firing  # one noisy run never pages
        second = rule.observe_entry(entry("sim-0003", DEGRADED), ledger)
        assert second.observed["streak"] == 2
        assert second.firing
        assert second.target == "prod"

    def test_clean_run_resets_the_streak(self):
        rule = RegressionRule("regress", baseline="prod", persistence=2)
        ledger = FakeLedger()
        rule.observe_entry(entry("sim-0002", DEGRADED), ledger)
        clean = rule.observe_entry(entry("sim-0003", HEALTHY), ledger)
        assert not clean.observed["exceeded"]
        assert clean.observed["streak"] == 0
        assert not clean.firing
        again = rule.observe_entry(entry("sim-0004", DEGRADED), ledger)
        assert again.observed["streak"] == 1
        assert not again.firing

    def test_skips_baseline_itself_and_other_kinds(self):
        rule = RegressionRule("regress", baseline="prod")
        ledger = FakeLedger()
        assert rule.observe_entry(BASELINE, ledger) is None
        assert (
            rule.observe_entry(
                entry("fau-0001", DEGRADED, kind="faults"), ledger
            )
            is None
        )

    def test_missing_baseline_or_ledger_is_quiet(self):
        rule = RegressionRule("regress", baseline="nope")
        assert rule.observe_entry(entry("sim-0002", DEGRADED), None) is None
        assert (
            rule.observe_entry(entry("sim-0002", DEGRADED), FakeLedger())
            is None
        )

    def test_evidence_is_the_check_report(self):
        rule = RegressionRule("regress", baseline="prod", persistence=1)
        signal = rule.observe_entry(
            entry("sim-0002", DEGRADED), FakeLedger()
        )
        assert signal.firing
        record = signal.evidence[0]
        assert record["kind"] == "runs.check"
        assert record["detail"]["candidate_id"] == "sim-0002"
        assert record["detail"]["exceeded"]
        assert "avg_response_time" in signal.observed["exceeded_metrics"]

    def test_validation(self):
        with pytest.raises(ValueError):
            RegressionRule("r", baseline="prod", persistence=0)


class TestRulesFromDict:
    def test_builds_both_families_with_default_names(self):
        rules = rules_from_dict(
            {
                "burn_rate": [{"slo_s": 2.0, "factor": 6.0}],
                "regression": [{"baseline": "prod", "persistence": 3}],
            }
        )
        assert [r.name for r in rules] == ["burn-rate-1", "regression-1"]
        assert rules[0].factor == 6.0
        assert rules[1].persistence == 3

    def test_explicit_names_win(self):
        (rule,) = rules_from_dict(
            {"burn_rate": [{"name": "checkout-slo", "slo_s": 1.0}]}
        )
        assert rule.name == "checkout-slo"

    def test_rejects_unknown_families_and_bad_specs(self):
        with pytest.raises(ValueError, match="unknown rule"):
            rules_from_dict({"burn": []})
        with pytest.raises(ValueError, match="baseline"):
            rules_from_dict({"regression": [{"persistence": 2}]})
        with pytest.raises(ValueError):
            rules_from_dict("not a dict")
