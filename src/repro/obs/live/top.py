"""``repro top``: a live terminal snapshot of a running simulation.

A :class:`LiveDisplay` plugs into :class:`~repro.obs.live.LiveSpec`
(``display=``) and is ticked by the tap as events stream through; it
re-renders a compact panel at most every ``refresh_s`` wall-clock
seconds.  Because a display handle is unpicklable, jobs carrying one
run in the parent process even under the process-pool backend -- the
terminal is exactly where they must live.

Rendering is pure (:func:`render_snapshot`), so tests assert on
strings; ANSI cursor control is only used when the output stream is a
TTY (or forced), so piped output degrades to appended frames.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Any, Callable, Dict, Optional, TextIO

#: Default minimum wall-clock seconds between repaints.
DEFAULT_REFRESH_S = 0.5

#: Default re-render period of ``repro top --follow``.
DEFAULT_FOLLOW_S = 2.0

_BAR_WIDTH = 24


def _bar(fraction: float, width: int = _BAR_WIDTH) -> str:
    fraction = max(0.0, min(1.0, fraction))
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


def render_snapshot(
    snapshot: Dict[str, Any],
    dumps: int = 0,
    max_level: int = 5,
) -> str:
    """The ``repro top`` panel for one aggregator snapshot."""
    quantiles = snapshot.get("rt_quantiles", {})
    quantile_text = (
        "  ".join(
            f"{name}={value:7.3f}s"
            for name, value in sorted(quantiles.items())
        )
        or "(no completions yet)"
    )
    level = int(snapshot.get("level", 0))
    lines = [
        f"repro top  t={snapshot.get('ts', 0.0):10.1f}s   "
        f"rate={snapshot.get('rate_per_s', 0.0):7.2f}/s",
        f"  completed {snapshot.get('completed', 0):>9}   "
        f"lost {snapshot.get('lost', 0):>6}   "
        f"gc {snapshot.get('gc', 0):>4}   "
        f"rejuvenations {snapshot.get('rejuvenations', 0):>3}",
        f"  faults    {snapshot.get('faults', 0):>9}   "
        f"triggers {snapshot.get('triggers', 0):>2}   "
        f"flight dumps {dumps:>3}",
        f"  rt mean {snapshot.get('rt_mean', 0.0):7.3f}s  "
        f"std {snapshot.get('rt_std', 0.0):7.3f}s  "
        f"max {snapshot.get('rt_max', 0.0):7.3f}s",
        f"  rt {quantile_text}",
        f"  window mean {snapshot.get('window_mean', 0.0):7.3f}s  "
        f"autocorr {snapshot.get('window_autocorr', 0.0):+6.3f}",
        f"  bucket level {level}/{max_level} "
        f"[{_bar(level / max_level if max_level else 0.0)}]",
    ]
    return "\n".join(lines)


def read_snapshot_source(source: str) -> Dict[str, Any]:
    """One aggregator snapshot from a URL or a local JSON file.

    ``repro top --follow`` points this at a ``repro serve`` instance's
    ``/api/live`` endpoint -- the same payload the dashboard's Live
    panel renders -- or at a JSON file something else keeps fresh.
    Returns ``{}`` when the server has no snapshot yet.
    """
    if source.startswith(("http://", "https://")):
        from urllib.request import urlopen

        with urlopen(source, timeout=5.0) as response:
            return json.loads(response.read().decode("utf-8"))
    with open(source, encoding="utf-8") as handle:
        return json.load(handle)


#: ``--follow`` retry backoff ceiling (seconds) while the source is down.
MAX_BACKOFF_S = 30.0


def follow_snapshots(
    source: str,
    interval_s: float = DEFAULT_FOLLOW_S,
    frames: Optional[int] = None,
    stream: Optional[TextIO] = None,
    ansi: Optional[bool] = None,
    sleep: Callable[[float], None] = time.sleep,
    max_level: int = 5,
    max_backoff_s: float = MAX_BACKOFF_S,
) -> int:
    """Re-render the ``repro top`` panel from ``source`` every period.

    The observer side of the live channel: nothing here touches a
    simulation -- each frame is one GET (or file read) against whatever
    ``source`` serves.  ``frames`` bounds the loop (``None`` follows
    until interrupted); returns the number of frames painted.  Fetch
    errors paint a waiting line rather than aborting, and consecutive
    errors back off exponentially (doubling from ``interval_s`` up to
    ``max_backoff_s``, reset by the first good fetch), so a follower
    rides out server restarts without hammering the socket.
    """
    if stream is None:
        stream = sys.stderr
    if ansi is None:
        isatty = getattr(stream, "isatty", None)
        ansi = bool(isatty()) if callable(isatty) else False
    painted = 0
    last_height = 0
    errors = 0
    try:
        while frames is None or painted < frames:
            try:
                snapshot = read_snapshot_source(source)
            except (OSError, ValueError) as error:
                errors += 1
                panel = f"repro top  (waiting on {source}: {error})"
            else:
                errors = 0
                if snapshot:
                    panel = render_snapshot(
                        snapshot,
                        dumps=int(snapshot.get("flight_dumps") or 0),
                        max_level=max_level,
                    )
                else:
                    panel = (
                        f"repro top  (no live snapshot at {source} "
                        "yet -- launch a campaign)"
                    )
            if ansi and last_height:
                stream.write(f"\x1b[{last_height}F\x1b[J")
            stream.write(panel + "\n")
            stream.flush()
            last_height = panel.count("\n") + 1
            painted += 1
            if frames is not None and painted >= frames:
                break
            delay = interval_s
            if errors:
                delay = min(
                    interval_s * (2 ** (errors - 1)), max_backoff_s
                )
            sleep(delay)
    except KeyboardInterrupt:
        pass
    return painted


class LiveDisplay:
    """Wall-clock-throttled terminal renderer for ``repro top``.

    Parameters
    ----------
    stream:
        Output stream (default ``sys.stderr``, keeping stdout clean for
        result tables and ``--csv``).
    refresh_s:
        Minimum wall-clock seconds between repaints.
    ansi:
        Repaint in place with cursor-up control codes.  Defaults to
        whether the stream is a TTY.
    clock:
        Wall clock (injectable for tests).
    max_level:
        Bucket-count hint for the level bar.
    """

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        refresh_s: float = DEFAULT_REFRESH_S,
        ansi: Optional[bool] = None,
        clock: Optional[Callable[[], float]] = None,
        max_level: int = 5,
    ) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.refresh_s = refresh_s
        if ansi is None:
            isatty = getattr(self.stream, "isatty", None)
            ansi = bool(isatty()) if callable(isatty) else False
        self.ansi = ansi
        self.clock = clock if clock is not None else time.monotonic
        self.max_level = max_level
        self.frames = 0
        self._last_paint: Optional[float] = None
        self._last_height = 0

    # The tap calls this on every event; almost every call is a cheap
    # clock read + compare.
    def tick(self, tap: Any) -> None:
        now = self.clock()
        last = self._last_paint
        if last is not None and now - last < self.refresh_s:
            return
        self._last_paint = now
        self._paint(tap)

    def _paint(self, tap: Any) -> None:
        panel = render_snapshot(
            tap.aggregator.snapshot(),
            dumps=len(tap.dumps()),
            max_level=self.max_level,
        )
        height = panel.count("\n") + 1
        if self.ansi and self._last_height:
            self.stream.write(f"\x1b[{self._last_height}F\x1b[J")
        self.stream.write(panel + "\n")
        self.stream.flush()
        self._last_height = height
        self.frames += 1

    def final(self, tap: Any) -> None:
        """Force one last repaint (end-of-run state)."""
        self._last_paint = self.clock()
        self._paint(tap)
