"""Property-based invariants of the full simulation model.

Hypothesis drives the simulator through random loads, policies and
configuration corners; the invariants below must hold for every single
run, not just the paper's operating points.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.baselines import PeriodicRejuvenation
from repro.core.clta import CLTA
from repro.core.saraa import SARAA
from repro.core.sla import PAPER_SLO
from repro.core.sraa import SRAA
from repro.ecommerce.config import PAPER_CONFIG, SystemConfig
from repro.ecommerce.runner import run_once
from repro.ecommerce.workload import PoissonArrivals

N_TRANSACTIONS = 600

policy_strategy = st.one_of(
    st.none().map(lambda _: None),
    st.builds(
        SRAA,
        st.just(PAPER_SLO),
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=5),
    ),
    st.builds(
        SARAA,
        st.just(PAPER_SLO),
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=5),
    ),
    st.builds(
        CLTA,
        st.just(PAPER_SLO),
        st.integers(min_value=1, max_value=40),
        st.floats(min_value=0.5, max_value=3.0),
    ),
    st.builds(PeriodicRejuvenation, st.integers(min_value=5, max_value=400)),
)


@st.composite
def config_strategy(draw):
    return dataclasses.replace(
        PAPER_CONFIG,
        gc_pause_s=draw(st.sampled_from([0.0, 10.0, 60.0])),
        rejuvenation_downtime_s=draw(st.sampled_from([0.0, 30.0])),
        rejuvenation_kills_queued=draw(st.booleans()),
        gc_freezes_new_threads=draw(st.booleans()),
        enable_gc=draw(st.booleans()),
        enable_overhead=draw(st.booleans()),
    )


class TestInvariants:
    @given(
        load=st.floats(min_value=0.2, max_value=10.0),
        policy=policy_strategy,
        config=config_strategy(),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_run_invariants(self, load, policy, config, seed):
        rate = config.arrival_rate_for_load(load)
        result = run_once(
            config,
            PoissonArrivals(rate),
            policy,
            N_TRANSACTIONS,
            seed=seed,
            collect_response_times=True,
        )
        # Conservation: every generated transaction resolves exactly once.
        assert result.completed + result.lost == N_TRANSACTIONS
        assert result.arrivals == N_TRANSACTIONS
        # Loss accounting is a fraction of the measured window.
        assert 0.0 <= result.loss_fraction <= 1.0
        assert result.lost == round(result.loss_fraction * N_TRANSACTIONS)
        # Response times are physical: non-negative, and bounded below
        # by zero waiting (a completed RT can be arbitrarily small but
        # never negative); the maximum tracks the recorded stream.
        assert result.response_times is not None
        assert len(result.response_times) == result.completed
        assert all(rt >= 0.0 for rt in result.response_times)
        if result.response_times:
            assert result.max_response_time == pytest.approx(
                max(result.response_times)
            )
        # No policy, no loss (nothing ever kills a transaction).
        if policy is None and config.rejuvenation_downtime_s == 0.0:
            assert result.lost == 0
        # The clock moved forward.
        assert result.sim_duration_s > 0.0

    @given(
        load=st.floats(min_value=0.2, max_value=9.5),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=15, deadline=None)
    def test_determinism(self, load, seed):
        rate = PAPER_CONFIG.arrival_rate_for_load(load)

        def once():
            return run_once(
                PAPER_CONFIG,
                PoissonArrivals(rate),
                SRAA(PAPER_SLO, 2, 2, 2),
                N_TRANSACTIONS,
                seed=seed,
            )

        a, b = once(), once()
        assert a.avg_response_time == b.avg_response_time
        assert a.lost == b.lost
        assert a.rejuvenations == b.rejuvenations
        assert a.gc_count == b.gc_count

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_gc_disabled_means_no_gc(self, seed):
        config = dataclasses.replace(PAPER_CONFIG, enable_gc=False)
        result = run_once(
            config, PoissonArrivals(1.6), None, N_TRANSACTIONS, seed=seed
        )
        assert result.gc_count == 0

    @given(
        period=st.integers(min_value=10, max_value=200),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=10, deadline=None)
    def test_periodic_policy_trigger_count(self, period, seed):
        result = run_once(
            PAPER_CONFIG,
            PoissonArrivals(1.0),
            PeriodicRejuvenation(period=period),
            N_TRANSACTIONS,
            seed=seed,
        )
        # One trigger per `period` completions, within bookkeeping slack
        # (lost transactions do not feed the policy).
        assert result.rejuvenations <= N_TRANSACTIONS // period + 1
