"""The columnar trace store: structured arrays + shape dictionaries.

The JSONL trace is row-major: one dict per event, one JSON object per
line.  That representation is what makes ``repro report`` and trace
re-scoring O(parse) instead of O(scan) -- at the million-event horizon
most of the wall-clock goes to ``json.loads`` and dict churn, not to
statistics.  This module stores the same records column-major in numpy
arrays, losslessly:

``ts``/``run``/``type``/``source``
    Dense typed columns (float64 / int64 / dictionary-encoded ids).
    Every scan the observability stack performs -- time-range slices,
    kind filters, per-run grouping, completion latencies -- is a
    vectorized operation over these.

shape dictionary
    Payload dicts are *shaped*: every emit call site produces the same
    ordered ``(key, value-type)`` signature, so a whole trace holds a
    handful of distinct payload shapes.  Each event stores one shape id
    plus its values appended to per-type pools (``ints`` int64,
    ``floats`` float64, ``strs``/``jsons`` dictionary ids).  Decoding
    walks the shape's keys and pulls values back from the pools, which
    reconstructs the original dict -- same keys, same order, same
    Python types -- exactly.

Losslessness is the contract that keeps the JSONL path the
compatibility baseline: ``records -> EventBatch -> records`` is
identity (pinned by tests), so a JSONL trace converted to columnar and
back is byte-for-byte the same file, and every consumer (``report``,
``explain``, ``faults score``, ``serve``) produces identical output
from either form.

Records that do not match the two envelopes the trace writer produces
(per-event lines and ``run.meta`` lines) -- e.g. flight-recorder dump
lines -- are carried verbatim as *opaque* JSON fragments: they survive
the round trip and stay addressable by run/ts, just without columnar
acceleration.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

#: Payload value tags (part of a shape's identity).
TAG_NULL = "n"
TAG_BOOL = "b"
TAG_INT = "i"
TAG_FLOAT = "f"
TAG_STR = "s"
TAG_JSON = "j"  # any other JSON value, as a compact fragment

#: Envelope kinds (how a record's top level is laid out).
ENV_EVENT = "event"  # {"ts","type","source","data",...,"run"}
ENV_META = "meta"  # {"run","tag","seed","ts","type","source","data"}
ENV_OPAQUE = "opaque"  # anything else, carried as one JSON fragment

#: The exact top-level key orders the trace writer produces
#: (:meth:`repro.obs.session.TraceSession.records`).
_EVENT_KEYS = ("ts", "type", "source", "data", "run")
_META_KEYS = ("run", "tag", "seed", "ts", "type", "source", "data")

#: int64 bounds; JSON ints outside them fall back to fragments.
_I64_MIN, _I64_MAX = -(2**63), 2**63 - 1

#: A shape: envelope kind plus the ordered payload field signature.
#: Meta shapes prepend the pseudo-fields ``__tag`` (always a fragment)
#: and ``__seed``; the opaque shape holds one ``__raw`` fragment.
Shape = Tuple[str, Tuple[Tuple[str, str], ...]]

#: Compact JSON (the trace writer's separators).
_dumps = json.dumps


def compact_json(value: Any) -> str:
    """``value`` as the compact JSON the trace writer emits."""
    return _dumps(value, separators=(",", ":"))


def _tag_of(value: Any) -> str:
    """The pool tag for one payload value (bool before int: bool is
    an int subclass)."""
    if value is None:
        return TAG_NULL
    if value is True or value is False:
        return TAG_BOOL
    if isinstance(value, int):
        return TAG_INT if _I64_MIN <= value <= _I64_MAX else TAG_JSON
    if isinstance(value, float):
        return TAG_FLOAT
    if isinstance(value, str):
        return TAG_STR
    return TAG_JSON


class _Dict:
    """An order-preserving string dictionary (value -> dense id)."""

    __slots__ = ("values", "ids")

    def __init__(self, values: Optional[List[str]] = None) -> None:
        self.values: List[str] = list(values or ())
        self.ids: Dict[str, int] = {
            value: index for index, value in enumerate(self.values)
        }

    def id_of(self, value: str) -> int:
        ids = self.ids
        found = ids.get(value)
        if found is None:
            found = len(self.values)
            ids[value] = found
            self.values.append(value)
        return found


class ShapeTable:
    """The shape dictionary plus per-shape decode/query metadata."""

    __slots__ = ("shapes", "ids", "_meta")

    def __init__(self, shapes: Optional[Sequence[Shape]] = None) -> None:
        self.shapes: List[Shape] = [
            (kind, tuple((str(k), str(t)) for k, t in fields))
            for kind, fields in (shapes or ())
        ]
        self.ids: Dict[Shape, int] = {
            shape: index for index, shape in enumerate(self.shapes)
        }
        self._meta: List[Optional[dict]] = [None] * len(self.shapes)

    def id_of(self, shape: Shape) -> int:
        found = self.ids.get(shape)
        if found is None:
            found = len(self.shapes)
            self.ids[shape] = found
            self.shapes.append(shape)
            self._meta.append(None)
        return found

    def meta(self, shape_id: int) -> dict:
        """Per-shape pool consumption counts and key positions.

        ``counts`` maps tag -> values consumed; ``slots`` maps key ->
        ``(tag, position-within-that-tag's-pool-run)`` -- what the
        vectorized field gather in :mod:`repro.obs.columnar.query`
        uses to find, say, ``response_time`` for every event of a
        shape in one fancy-indexing step.
        """
        cached = self._meta[shape_id]
        if cached is not None:
            return cached
        kind, fields = self.shapes[shape_id]
        counts = {
            TAG_INT: 0,
            TAG_FLOAT: 0,
            TAG_STR: 0,
            TAG_JSON: 0,
            TAG_BOOL: 0,
        }
        slots: Dict[str, Tuple[str, int]] = {}
        for key, tag in fields:
            if tag == TAG_NULL:
                slots[key] = (TAG_NULL, 0)
                continue
            pool = TAG_INT if tag == TAG_BOOL else tag
            slots[key] = (tag, counts[pool])
            counts[pool] += 1
        meta = {
            "kind": kind,
            "fields": fields,
            "ints": counts[TAG_INT] + counts[TAG_BOOL],
            "floats": counts[TAG_FLOAT],
            "strs": counts[TAG_STR],
            "jsons": counts[TAG_JSON],
            "slots": slots,
        }
        # Recompute int/bool interleaving: bools share the int pool, so
        # positions must be assigned over the merged pool in order.
        merged = 0
        floats = strs = jsons = 0
        for key, tag in fields:
            if tag in (TAG_INT, TAG_BOOL):
                slots[key] = (tag, merged)
                merged += 1
            elif tag == TAG_FLOAT:
                slots[key] = (tag, floats)
                floats += 1
            elif tag == TAG_STR:
                slots[key] = (tag, strs)
                strs += 1
            elif tag == TAG_JSON:
                slots[key] = (tag, jsons)
                jsons += 1
        self._meta[shape_id] = meta
        return meta

    def __len__(self) -> int:
        return len(self.shapes)


class EventBatch:
    """One encoded batch of trace records (a segment's worth).

    All dictionaries are *batch-local*; :class:`ColumnarTrace` owns the
    cross-batch consolidation.  Arrays are parallel over events:
    ``run``/``ts``/``type_id``/``source_id``/``shape_id`` plus one
    offset per pool, with the pools appended in event order.
    """

    __slots__ = (
        "run",
        "ts",
        "type_id",
        "source_id",
        "shape_id",
        "ints_off",
        "floats_off",
        "strs_off",
        "jsons_off",
        "ints",
        "floats",
        "strs",
        "jsons",
        "types",
        "sources",
        "strings",
        "fragments",
        "shapes",
    )

    def __init__(self, **arrays: Any) -> None:
        for name in self.__slots__:
            setattr(self, name, arrays[name])

    def __len__(self) -> int:
        return int(self.ts.shape[0])

    def with_run(self, run_index: int) -> "EventBatch":
        """A copy whose every event belongs to ``run_index``.

        The submission-order ingest in
        :class:`~repro.obs.session.TraceSession` assigns run indices in
        the parent; worker-side batches are encoded with run 0.
        """
        arrays = {name: getattr(self, name) for name in self.__slots__}
        arrays["run"] = np.full(len(self), run_index, dtype=np.int64)
        return EventBatch(**arrays)


class _BatchBuilder:
    """Append-side state while encoding records into an EventBatch."""

    def __init__(self) -> None:
        self.run: List[int] = []
        self.ts: List[float] = []
        self.type_id: List[int] = []
        self.source_id: List[int] = []
        self.shape_id: List[int] = []
        self.ints_off: List[int] = []
        self.floats_off: List[int] = []
        self.strs_off: List[int] = []
        self.jsons_off: List[int] = []
        self.ints: List[int] = []
        self.floats: List[float] = []
        self.strs: List[int] = []
        self.jsons: List[int] = []
        self.types = _Dict()
        self.sources = _Dict()
        self.strings = _Dict()
        self.fragments = _Dict()
        self.shapes = ShapeTable()

    # ------------------------------------------------------------------
    def _payload(self, data: Dict[str, Any]) -> Tuple[Tuple[str, str], ...]:
        """Append one payload's values to the pools; return its fields."""
        fields = []
        ints, floats, strs, jsons = (
            self.ints,
            self.floats,
            self.strs,
            self.jsons,
        )
        for key, value in data.items():
            tag = _tag_of(value)
            fields.append((key, tag))
            if tag == TAG_INT:
                ints.append(value)
            elif tag == TAG_FLOAT:
                floats.append(value)
            elif tag == TAG_STR:
                strs.append(self.strings.id_of(value))
            elif tag == TAG_BOOL:
                ints.append(1 if value else 0)
            elif tag == TAG_JSON:
                jsons.append(self.fragments.id_of(compact_json(value)))
        return tuple(fields)

    def _begin(self, run: int, ts: float, etype: str, source: str) -> None:
        self.run.append(run)
        self.ts.append(ts)
        self.type_id.append(self.types.id_of(etype))
        self.source_id.append(self.sources.id_of(source))
        self.ints_off.append(len(self.ints))
        self.floats_off.append(len(self.floats))
        self.strs_off.append(len(self.strs))
        self.jsons_off.append(len(self.jsons))

    def add_event(
        self, run: int, ts: float, etype: str, source: str, data: Dict
    ) -> None:
        self._begin(run, ts, etype, source)
        fields = self._payload(data)
        self.shape_id.append(self.shapes.id_of((ENV_EVENT, fields)))

    def add_meta(self, record: Dict[str, Any]) -> None:
        self._begin(
            record["run"], record["ts"], record["type"], record["source"]
        )
        tag_fragment = self.fragments.id_of(compact_json(record["tag"]))
        self.jsons.append(tag_fragment)
        seed = record["seed"]
        seed_tag = _tag_of(seed)
        if seed_tag == TAG_INT:
            self.ints.append(seed)
        elif seed_tag == TAG_FLOAT:
            self.floats.append(seed)
        elif seed_tag == TAG_STR:
            self.strs.append(self.strings.id_of(seed))
        elif seed_tag == TAG_BOOL:
            self.ints.append(1 if seed else 0)
        elif seed_tag == TAG_JSON:
            self.jsons.append(self.fragments.id_of(compact_json(seed)))
        fields = (("__tag", TAG_JSON), ("__seed", seed_tag))
        fields += self._payload(record["data"])
        self.shape_id.append(self.shapes.id_of((ENV_META, fields)))

    def add_opaque(self, record: Dict[str, Any]) -> None:
        run = record.get("run")
        ts = record.get("ts")
        etype = record.get("type")
        self._begin(
            run if isinstance(run, int) and not isinstance(run, bool) else 0,
            float(ts) if isinstance(ts, (int, float)) else 0.0,
            etype if isinstance(etype, str) else "",
            "",
        )
        self.jsons.append(self.fragments.id_of(compact_json(record)))
        self.shape_id.append(
            self.shapes.id_of((ENV_OPAQUE, (("__raw", TAG_JSON),)))
        )

    # ------------------------------------------------------------------
    def finish(self) -> EventBatch:
        return EventBatch(
            run=np.asarray(self.run, dtype=np.int64),
            ts=np.asarray(self.ts, dtype=np.float64),
            type_id=np.asarray(self.type_id, dtype=np.uint32),
            source_id=np.asarray(self.source_id, dtype=np.uint32),
            shape_id=np.asarray(self.shape_id, dtype=np.uint32),
            ints_off=np.asarray(self.ints_off, dtype=np.uint32),
            floats_off=np.asarray(self.floats_off, dtype=np.uint32),
            strs_off=np.asarray(self.strs_off, dtype=np.uint32),
            jsons_off=np.asarray(self.jsons_off, dtype=np.uint32),
            ints=np.asarray(self.ints, dtype=np.int64),
            floats=np.asarray(self.floats, dtype=np.float64),
            strs=np.asarray(self.strs, dtype=np.uint32),
            jsons=np.asarray(self.jsons, dtype=np.uint32),
            types=self.types.values,
            sources=self.sources.values,
            strings=self.strings.values,
            fragments=self.fragments.values,
            shapes=self.shapes.shapes,
        )


def _classify(record: Dict[str, Any]) -> str:
    """Which envelope a parsed JSONL record matches."""
    keys = tuple(record)
    if keys == _EVENT_KEYS:
        ts, etype, source, data, run = (
            record["ts"],
            record["type"],
            record["source"],
            record["data"],
            record["run"],
        )
        if (
            type(ts) is float
            and isinstance(etype, str)
            and isinstance(source, str)
            and isinstance(data, dict)
            and type(run) is int
            and _I64_MIN <= run <= _I64_MAX
        ):
            return ENV_EVENT
    elif keys == _META_KEYS:
        if (
            type(record["run"]) is int
            and isinstance(record["tag"], list)
            and type(record["ts"]) is float
            and isinstance(record["type"], str)
            and isinstance(record["source"], str)
            and isinstance(record["data"], dict)
        ):
            return ENV_META
    return ENV_OPAQUE


def encode_records(records: Sequence[Dict[str, Any]]) -> EventBatch:
    """Encode parsed JSONL records (in order) into one batch."""
    builder = _BatchBuilder()
    for record in records:
        kind = _classify(record)
        if kind == ENV_EVENT:
            builder.add_event(
                record["run"],
                record["ts"],
                record["type"],
                record["source"],
                record["data"],
            )
        elif kind == ENV_META:
            builder.add_meta(record)
        else:
            builder.add_opaque(record)
    return builder.finish()


def encode_events(
    events: Sequence[Tuple[float, str, str, Dict[str, Any]]],
    run: int = 0,
) -> EventBatch:
    """Encode raw emit tuples (the :class:`ColumnarTap` buffer)."""
    builder = _BatchBuilder()
    for ts, etype, source, data in events:
        builder.add_event(run, ts, etype, source, data)
    return builder.finish()


# ---------------------------------------------------------------------------
# The consolidated store
# ---------------------------------------------------------------------------
class ColumnarTrace:
    """A whole trace: consolidated columns, global dictionaries, and a
    segment index.

    Built from batches (:meth:`from_batches`) by concatenating columns
    and remapping each batch's local dictionary ids onto the global
    dictionaries with one ``np.take`` per column -- no record is
    re-parsed, which is what makes the submission-order merge across
    process-pool workers effectively free.  ``segments`` keeps one
    ``(start, stop, ts_min, ts_max, kind_mask)`` row per source batch:
    the on-disk footer index serializes it so readers can skip whole
    segments on time-range or kind filters.
    """

    __slots__ = (
        "run",
        "ts",
        "type_id",
        "source_id",
        "shape_id",
        "ints_off",
        "floats_off",
        "strs_off",
        "jsons_off",
        "ints",
        "floats",
        "strs",
        "jsons",
        "types",
        "sources",
        "strings",
        "fragments",
        "shapes",
        "segments",
        "_shape_table",
    )

    def __init__(self, **arrays: Any) -> None:
        for name in self.__slots__:
            if name != "_shape_table":
                setattr(self, name, arrays[name])
        self._shape_table: Optional[ShapeTable] = None

    # ------------------------------------------------------------------
    @property
    def shape_table(self) -> ShapeTable:
        if self._shape_table is None:
            self._shape_table = ShapeTable(self.shapes)
        return self._shape_table

    def __len__(self) -> int:
        return int(self.ts.shape[0])

    @property
    def n_records(self) -> int:
        return len(self)

    # ------------------------------------------------------------------
    @classmethod
    def from_batches(
        cls, batches: Sequence[EventBatch]
    ) -> "ColumnarTrace":
        """Consolidate batches (in submission order) into one trace."""
        types = _Dict()
        sources = _Dict()
        strings = _Dict()
        fragments = _Dict()
        shapes = ShapeTable()

        columns: Dict[str, List[np.ndarray]] = {
            name: []
            for name in (
                "run",
                "ts",
                "type_id",
                "source_id",
                "shape_id",
                "ints_off",
                "floats_off",
                "strs_off",
                "jsons_off",
                "ints",
                "floats",
                "strs",
                "jsons",
            )
        }
        segments: List[Tuple[int, int, float, float, int]] = []
        start = 0
        pool_base = {"ints": 0, "floats": 0, "strs": 0, "jsons": 0}
        for batch in batches:
            n = len(batch)
            # Dictionary id remaps: local id -> global id, vectorized.
            type_map = np.asarray(
                [types.id_of(v) for v in batch.types], dtype=np.uint32
            )
            source_map = np.asarray(
                [sources.id_of(v) for v in batch.sources], dtype=np.uint32
            )
            string_map = np.asarray(
                [strings.id_of(v) for v in batch.strings], dtype=np.uint32
            )
            fragment_map = np.asarray(
                [fragments.id_of(v) for v in batch.fragments],
                dtype=np.uint32,
            )
            # Shapes remap through the dictionary-reconciled signature:
            # a shape's identity is its (envelope, fields), which is
            # dictionary-independent, so the table merges directly.
            shape_map = np.asarray(
                [shapes.id_of(shape) for shape in batch.shapes],
                dtype=np.uint32,
            )
            columns["run"].append(batch.run)
            columns["ts"].append(batch.ts)
            columns["type_id"].append(
                type_map[batch.type_id] if len(type_map) else batch.type_id
            )
            columns["source_id"].append(
                source_map[batch.source_id]
                if len(source_map)
                else batch.source_id
            )
            columns["shape_id"].append(
                shape_map[batch.shape_id]
                if len(shape_map)
                else batch.shape_id
            )
            for pool, off in (
                ("ints", "ints_off"),
                ("floats", "floats_off"),
                ("strs", "strs_off"),
                ("jsons", "jsons_off"),
            ):
                base = pool_base[pool]
                offsets = getattr(batch, off)
                columns[off].append(
                    (offsets.astype(np.uint64) + base).astype(np.uint64)
                )
                pool_base[pool] += int(getattr(batch, pool).shape[0])
            columns["ints"].append(batch.ints)
            columns["floats"].append(batch.floats)
            columns["strs"].append(
                string_map[batch.strs] if len(string_map) else batch.strs
            )
            columns["jsons"].append(
                fragment_map[batch.jsons]
                if len(fragment_map)
                else batch.jsons
            )
            mask = 0
            if n:
                for tid in np.unique(
                    type_map[batch.type_id]
                    if len(type_map)
                    else batch.type_id
                ):
                    mask |= 1 << int(tid)
                ts_min = float(batch.ts.min())
                ts_max = float(batch.ts.max())
            else:
                ts_min = ts_max = 0.0
            segments.append((start, start + n, ts_min, ts_max, mask))
            start += n

        def cat(name: str, dtype) -> np.ndarray:
            parts = columns[name]
            if not parts:
                return np.zeros(0, dtype=dtype)
            return np.concatenate(parts).astype(dtype, copy=False)

        return cls(
            run=cat("run", np.int64),
            ts=cat("ts", np.float64),
            type_id=cat("type_id", np.uint32),
            source_id=cat("source_id", np.uint32),
            shape_id=cat("shape_id", np.uint32),
            ints_off=cat("ints_off", np.uint64),
            floats_off=cat("floats_off", np.uint64),
            strs_off=cat("strs_off", np.uint64),
            jsons_off=cat("jsons_off", np.uint64),
            ints=cat("ints", np.int64),
            floats=cat("floats", np.float64),
            strs=cat("strs", np.uint32),
            jsons=cat("jsons", np.uint32),
            types=types.values,
            sources=sources.values,
            strings=strings.values,
            fragments=fragments.values,
            shapes=shapes.shapes,
            segments=segments,
        )

    @classmethod
    def from_records(
        cls, records: Sequence[Dict[str, Any]]
    ) -> "ColumnarTrace":
        """Encode already-parsed JSONL records into one-segment store."""
        return cls.from_batches([encode_records(records)])

    # ------------------------------------------------------------------
    # Decoding (the lossless inverse)
    # ------------------------------------------------------------------
    def decode(self, index: int) -> Dict[str, Any]:
        """Record ``index`` as the exact dict the JSONL line parses to."""
        shape_id = int(self.shape_id[index])
        kind, fields = self.shape_table.shapes[shape_id]
        i = int(self.ints_off[index])
        f = int(self.floats_off[index])
        s = int(self.strs_off[index])
        j = int(self.jsons_off[index])
        if kind == ENV_OPAQUE:
            return json.loads(self.fragments[int(self.jsons[j])])

        values: List[Any] = []
        for _key, tag in fields:
            if tag == TAG_NULL:
                values.append(None)
            elif tag == TAG_INT:
                values.append(int(self.ints[i]))
                i += 1
            elif tag == TAG_BOOL:
                values.append(bool(self.ints[i]))
                i += 1
            elif tag == TAG_FLOAT:
                values.append(float(self.floats[f]))
                f += 1
            elif tag == TAG_STR:
                values.append(self.strings[int(self.strs[s])])
                s += 1
            else:  # TAG_JSON
                values.append(
                    json.loads(self.fragments[int(self.jsons[j])])
                )
                j += 1

        if kind == ENV_EVENT:
            data = {
                key: value
                for (key, _tag), value in zip(fields, values)
            }
            return {
                "ts": float(self.ts[index]),
                "type": self.types[int(self.type_id[index])],
                "source": self.sources[int(self.source_id[index])],
                "data": data,
                "run": int(self.run[index]),
            }
        # ENV_META: fields start with __tag, __seed.
        data = {
            key: value
            for (key, _tag), value in zip(fields[2:], values[2:])
        }
        return {
            "run": int(self.run[index]),
            "tag": values[0],
            "seed": values[1],
            "ts": float(self.ts[index]),
            "type": self.types[int(self.type_id[index])],
            "source": self.sources[int(self.source_id[index])],
            "data": data,
        }

    def iter_records(
        self, indices: Optional[Sequence[int]] = None
    ) -> Iterator[Dict[str, Any]]:
        """Decode records (all, or the given indices) in order."""
        if indices is None:
            indices = range(len(self))
        for index in indices:
            yield self.decode(int(index))

    def records(self) -> List[Dict[str, Any]]:
        """All records, decoded (the JSONL-equivalent row view)."""
        return list(self.iter_records())

    # ------------------------------------------------------------------
    # Vectorized accessors (what the query layer builds on)
    # ------------------------------------------------------------------
    def type_id_of(self, etype: str) -> Optional[int]:
        try:
            return self.types.index(etype)
        except ValueError:
            return None

    def mask_of_types(self, etypes: Sequence[str]) -> np.ndarray:
        """Boolean row mask for any of the given event types."""
        ids = [
            tid
            for tid in (self.type_id_of(t) for t in etypes)
            if tid is not None
        ]
        if not ids:
            return np.zeros(len(self), dtype=bool)
        return np.isin(self.type_id, np.asarray(ids, dtype=np.uint32))

    def field_float(
        self, key: str, rows: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(row_indices, values)`` of float payload field ``key``.

        Gathers over the selected ``rows`` (an index array) for every
        shape that carries ``key`` as a float, preserving event order.
        One fancy-indexing pass per shape -- no per-event Python.
        """
        table = self.shape_table
        shape_ids = self.shape_id[rows]
        out_rows: List[np.ndarray] = []
        out_vals: List[np.ndarray] = []
        for sid in np.unique(shape_ids):
            meta = table.meta(int(sid))
            slot = meta["slots"].get(key)
            if slot is None or slot[0] not in (TAG_FLOAT, TAG_INT):
                continue
            sel = rows[shape_ids == sid]
            if slot[0] == TAG_FLOAT:
                values = self.floats[
                    self.floats_off[sel].astype(np.int64) + slot[1]
                ]
            else:
                values = self.ints[
                    self.ints_off[sel].astype(np.int64) + slot[1]
                ].astype(np.float64)
            out_rows.append(sel)
            out_vals.append(values)
        if not out_rows:
            return (
                np.zeros(0, dtype=np.int64),
                np.zeros(0, dtype=np.float64),
            )
        rows_cat = np.concatenate(out_rows)
        vals_cat = np.concatenate(out_vals)
        order = np.argsort(rows_cat, kind="stable")
        return rows_cat[order], vals_cat[order]

    def counts_by_type(
        self, rows: Optional[np.ndarray] = None
    ) -> Dict[str, int]:
        """Event counts keyed by type name (over ``rows`` or all)."""
        type_ids = self.type_id if rows is None else self.type_id[rows]
        counts = np.bincount(type_ids, minlength=len(self.types))
        return {
            self.types[tid]: int(count)
            for tid, count in enumerate(counts)
            if count
        }

    def to_jsonl_lines(self) -> Iterator[str]:
        """Every record as its compact JSON line (no newline)."""
        for record in self.iter_records():
            yield compact_json(record)


def merge_batches_sorted(
    batches: Sequence[EventBatch],
) -> EventBatch:
    """Batches merged into one, stably re-sorted by timestamp.

    The fleet substrate's per-shard tracers each buffer their own
    events; the merged single-run trace interleaves them by simulated
    time with ties broken by shard order -- the same discipline as the
    dict-path ``sort(key=lambda e: e.ts)`` merge, vectorized.
    """
    trace = ColumnarTrace.from_batches(batches)
    order = np.argsort(trace.ts, kind="stable")
    arrays = {
        "run": trace.run[order],
        "ts": trace.ts[order],
        "type_id": trace.type_id[order],
        "source_id": trace.source_id[order],
        "shape_id": trace.shape_id[order],
        "ints_off": trace.ints_off[order].astype(np.uint32),
        "floats_off": trace.floats_off[order].astype(np.uint32),
        "strs_off": trace.strs_off[order].astype(np.uint32),
        "jsons_off": trace.jsons_off[order].astype(np.uint32),
        "ints": trace.ints,
        "floats": trace.floats,
        "strs": trace.strs,
        "jsons": trace.jsons,
        "types": trace.types,
        "sources": trace.sources,
        "strings": trace.strings,
        "fragments": trace.fragments,
        "shapes": trace.shapes,
    }
    return EventBatch(**arrays)
