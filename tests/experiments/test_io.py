"""Result persistence: JSON round-trip, CSV export, comparison."""

import json
import math

import pytest

from repro.experiments.io import (
    SCHEMA_VERSION,
    load_json,
    max_relative_difference,
    result_from_dict,
    result_to_dict,
    save_csv,
    save_json,
)
from repro.experiments.tables import ExperimentResult, Series, Table


def make_result(scale=1.0) -> ExperimentResult:
    table = Table(title="RT over load", x_label="load", y_label="rt")
    series = Series(label="A")
    series.add(1.0, 10.0 * scale)
    series.add(2.0, 20.0 * scale)
    table.add_series(series)
    other = Series(label="B")
    other.add(2.0, 5.0 * scale)
    table.add_series(other)
    table.notes.append("demo note")
    return ExperimentResult(
        experiment_id="demo",
        description="demo experiment",
        tables=[table],
        paper_expectations=["something holds"],
    )


class TestJsonRoundTrip:
    def test_dict_round_trip(self):
        original = make_result()
        restored = result_from_dict(result_to_dict(original))
        assert restored.experiment_id == original.experiment_id
        assert restored.description == original.description
        assert restored.paper_expectations == original.paper_expectations
        assert restored.tables[0].notes == ["demo note"]
        assert (
            restored.tables[0].get_series("A").points
            == original.tables[0].get_series("A").points
        )

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "result.json"
        save_json(make_result(), str(path))
        restored = load_json(str(path))
        assert restored.tables[0].get_series("B").value_at(2.0) == 5.0

    def test_schema_version_written(self, tmp_path):
        path = tmp_path / "result.json"
        save_json(make_result(), str(path))
        payload = json.loads(path.read_text())
        assert payload["schema_version"] == SCHEMA_VERSION

    def test_unknown_schema_rejected(self):
        payload = result_to_dict(make_result())
        payload["schema_version"] = 999
        with pytest.raises(ValueError):
            result_from_dict(payload)

    def test_format_text_survives_round_trip(self):
        original = make_result()
        restored = result_from_dict(result_to_dict(original))
        assert restored.format_text() == original.format_text()


class TestGzipRoundTrip:
    def test_gz_suffix_writes_gzip(self, tmp_path):
        import gzip

        path = tmp_path / "result.json.gz"
        save_json(make_result(), str(path))
        with gzip.open(path, "rt", encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["schema_version"] == SCHEMA_VERSION

    def test_gz_file_round_trip(self, tmp_path):
        path = tmp_path / "result.json.gz"
        save_json(make_result(), str(path))
        restored = load_json(str(path))
        assert restored.format_text() == make_result().format_text()

    def test_gz_smaller_than_plain_for_large_results(self, tmp_path):
        result = make_result()
        series = result.tables[0].get_series("A")
        for i in range(2000):
            series.add(3.0 + i, 1.234567)
        plain, packed = tmp_path / "r.json", tmp_path / "r.json.gz"
        save_json(result, str(plain))
        save_json(result, str(packed))
        assert packed.stat().st_size < plain.stat().st_size

    def test_plain_json_is_not_gzip(self, tmp_path):
        path = tmp_path / "result.json"
        save_json(make_result(), str(path))
        assert path.read_bytes()[:2] != b"\x1f\x8b"


class TestCanonicalResultHash:
    def test_hash_ignores_key_order(self):
        from repro.obs.ledger import canonical_hash

        payload = result_to_dict(make_result())
        shuffled = dict(reversed(list(payload.items())))
        assert canonical_hash(payload) == canonical_hash(shuffled)

    def test_hash_changes_with_content(self):
        from repro.obs.ledger import canonical_hash

        assert canonical_hash(result_to_dict(make_result(1.0))) != (
            canonical_hash(result_to_dict(make_result(1.1)))
        )

    def test_hash_stable_across_round_trip(self):
        from repro.obs.ledger import canonical_hash

        payload = result_to_dict(make_result())
        rebuilt = result_to_dict(result_from_dict(payload))
        assert canonical_hash(payload) == canonical_hash(rebuilt)


class TestCsvExport:
    def test_one_file_per_table(self, tmp_path):
        paths = save_csv(make_result(), str(tmp_path))
        assert len(paths) == 1
        assert paths[0].endswith(".csv")
        assert "demo_00" in paths[0]

    def test_contents(self, tmp_path):
        (path,) = save_csv(make_result(), str(tmp_path))
        with open(path) as handle:
            lines = handle.read().strip().splitlines()
        assert lines[0] == "load,A,B"
        row1 = lines[1].split(",")
        assert float(row1[0]) == 1.0
        assert float(row1[1]) == 10.0
        assert math.isnan(float(row1[2]))  # B has no point at load 1

    def test_creates_directory(self, tmp_path):
        target = tmp_path / "nested" / "dir"
        save_csv(make_result(), str(target))
        assert target.exists()


class TestComparison:
    def test_identical_results(self):
        assert max_relative_difference(make_result(), make_result()) == 0.0

    def test_scaled_results(self):
        delta = max_relative_difference(make_result(1.0), make_result(1.1))
        assert delta == pytest.approx(0.1 / 1.1)

    def test_disjoint_results_compare_to_zero(self):
        a = make_result()
        b = ExperimentResult("other", "x", tables=[Table("t", "x", "y")])
        assert max_relative_difference(a, b) == 0.0


class TestCliIntegration:
    def test_run_with_json_and_csv(self, tmp_path, capsys):
        from repro.cli import main

        json_file = tmp_path / "out.json"
        csv_dir = tmp_path / "csv"
        code = main(
            [
                "run",
                "false_alarm",
                "--scale",
                "smoke",
                "--json",
                str(json_file),
                "--csv",
                str(csv_dir),
            ]
        )
        assert code == 0
        assert json_file.exists()
        restored = load_json(str(json_file))
        assert restored.experiment_id == "false_alarm"
        assert list(csv_dir.glob("*.csv"))
