"""The distribution of the average of ``n`` response times (Fig. 3/4, eq. 4).

The response time of an FCFS M/M/c job is the time to absorption in the
three-state chain of the paper's Fig. 3.  Multiplying every rate by ``n``
turns it into the law of ``X_i / n``; concatenating ``n`` such sub-chains
(fusing the absorbing state of sub-chain ``k`` with the entry state of
sub-chain ``k + 1``) yields a ``2n + 1``-state chain whose absorption time
is distributed exactly like the sample mean ``X̄n`` (Fig. 4).  The density
is the probability flux into the absorbing state (eq. 4):

    f(x) = p_{2n-1}(x) * n mu W_c + p_{2n}(x) * n (c mu - lambda)

This module builds the chain, evaluates its exact density/cdf via the CTMC
transient solvers, and compares against the normal approximation
``N(mu_X, sigma_X^2 / n)`` that underlies the CLTA algorithm -- in
particular the exact false-alarm probabilities the paper reports (3.69 %
for n = 15 and 3.37 % for n = 30 at the 97.5 % normal quantile).
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np
from scipy.stats import norm

from repro.ctmc.absorption import AbsorbingCTMC
from repro.ctmc.chain import CTMC
from repro.queueing.mmc import MMcModel


def build_sample_mean_generator(model: MMcModel, n: int) -> np.ndarray:
    """Generator matrix of the Fig. 4 chain for the mean of ``n`` RTs.

    States are 0-indexed: for sub-chain ``k`` (``0 <= k < n``), state
    ``2k`` is the service-like phase and ``2k + 1`` the drain phase; state
    ``2n`` is absorbing.
    """
    if n < 1:
        raise ValueError("sample size must be >= 1")
    if not model.is_stable:
        raise ValueError("the sample-mean chain requires a stable queue")
    mu = model.service_rate
    lam = model.arrival_rate
    c = model.servers
    wc = model.wc()
    drain = c * mu - lam
    size = 2 * n + 1
    Q = np.zeros((size, size))
    for k in range(n):
        phase_a = 2 * k
        phase_b = 2 * k + 1
        next_entry = 2 * (k + 1)  # entry of sub-chain k+1, or the absorber
        Q[phase_a, next_entry] = n * mu * wc
        Q[phase_a, phase_b] = n * mu * (1.0 - wc)
        Q[phase_a, phase_a] = -n * mu
        Q[phase_b, next_entry] = n * drain
        Q[phase_b, phase_b] = -n * drain
    return Q


class SampleMeanChain:
    """Exact law of ``X̄n``, the mean of ``n`` M/M/c response times.

    Parameters
    ----------
    model:
        The M/M/c model whose response times are being averaged.
    n:
        Sample size.

    Examples
    --------
    >>> model = MMcModel(arrival_rate=1.6, service_rate=0.2, servers=16)
    >>> chain = SampleMeanChain(model, n=30)
    >>> abs(chain.mean() - model.response_time_mean()) < 1e-9
    True
    >>> abs(chain.var() - model.response_time_var() / 30) < 1e-9
    True
    """

    def __init__(self, model: MMcModel, n: int) -> None:
        self.model = model
        self.n = int(n)
        generator = build_sample_mean_generator(model, self.n)
        names = []
        for k in range(self.n):
            names.extend([f"sub{k}.service", f"sub{k}.drain"])
        names.append("absorbed")
        self.chain = CTMC(generator, state_names=names)
        p0 = np.zeros(2 * self.n + 1)
        p0[0] = 1.0
        self.absorbing = AbsorbingCTMC(self.chain, initial=p0)

    # ------------------------------------------------------------------
    # Exact law
    # ------------------------------------------------------------------
    def mean(self) -> float:
        """``E[X̄n] = mu_X`` (eq. 2 of the paper)."""
        return self.absorbing.mean_time_to_absorption()

    def var(self) -> float:
        """``Var(X̄n) = sigma_X^2 / n`` (eq. 3 over n)."""
        return self.absorbing.var()

    def std(self) -> float:
        """Standard deviation ``sigma_X / sqrt(n)``."""
        return math.sqrt(self.var())

    def pdf(self, x: float) -> float:
        """Exact density of ``X̄n`` (the paper's eq. 4)."""
        return self.absorbing.pdf(x)

    def cdf(self, x: float) -> float:
        """Exact cdf ``P(X̄n <= x)`` -- the transient mass in state 2n+1."""
        return self.absorbing.cdf(x)

    def sf(self, x: float) -> float:
        """Exact tail ``P(X̄n > x)``."""
        return self.absorbing.sf(x)

    def pdf_grid(self, xs: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`pdf` over a grid (used to draw Fig. 5)."""
        return np.array([self.pdf(float(x)) for x in np.asarray(xs)])

    # ------------------------------------------------------------------
    # Normal approximation (what CLTA assumes)
    # ------------------------------------------------------------------
    def normal_parameters(self) -> Tuple[float, float]:
        """``(mu, sigma)`` of the approximating normal in Fig. 5."""
        mu = self.model.response_time_mean()
        sigma = self.model.response_time_std() / math.sqrt(self.n)
        return mu, sigma

    def normal_pdf(self, x: float) -> float:
        """Density of the approximating normal at ``x``."""
        mu, sigma = self.normal_parameters()
        return float(norm.pdf(x, loc=mu, scale=sigma))

    def normal_quantile(self, q: float) -> float:
        """``mu_X + z_q sigma_X / sqrt(n)`` -- the CLTA decision threshold."""
        if not 0.0 < q < 1.0:
            raise ValueError("quantile level must lie in (0, 1)")
        mu, sigma = self.normal_parameters()
        return float(norm.ppf(q, loc=mu, scale=sigma))

    def false_alarm_probability(self, q: float = 0.975) -> float:
        """Exact probability that ``X̄n`` exceeds the normal ``q``-quantile.

        Under a perfect normal approximation this would be ``1 - q``; the
        paper reports the exact values 3.69 % (n=15) and 3.37 % (n=30)
        against the nominal 2.5 %.
        """
        return self.sf(self.normal_quantile(q))


def clt_false_alarm_probability(
    model: MMcModel, n: int, quantile: float = 0.975
) -> float:
    """Convenience wrapper: exact CLTA false-alarm probability.

    ``P(X̄n > mu_X + z_quantile * sigma_X / sqrt(n))`` for a healthy
    M/M/c system, evaluated from the exact Fig. 4 chain.
    """
    return SampleMeanChain(model, n).false_alarm_probability(quantile)
