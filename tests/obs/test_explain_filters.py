"""`repro explain --since/--until/--kind` on both trace formats."""

import pytest

from repro.cli import main
from repro.obs.explain import explain_records, explain_trace
from repro.obs.columnar.convert import convert_trace

SIMULATE = [
    "simulate",
    "--policy", "sraa",
    "-p", "n=2", "-p", "K=5", "-p", "D=3",
    "--load", "9",
    "--transactions", "2000",
    "--seed", "3",
]

RECORDS = [
    {
        "run": 0,
        "tag": ["demo"],
        "seed": 1,
        "ts": 0.0,
        "type": "run.meta",
        "source": "session",
        "data": {"arrivals": 2, "avg_response_time": 1.0},
    },
    {
        "ts": 50.0,
        "type": "fault.injected",
        "source": "scenario",
        "data": {"kind": "aging"},
        "run": 0,
    },
    {
        "ts": 200.0,
        "type": "policy.trigger",
        "source": "policy:sraa",
        "data": {
            "level": 3,
            "batch_mean": 0.5,
            "threshold": 0.25,
            "sample_size": 40,
        },
        "run": 0,
    },
    {
        "ts": 210.0,
        "type": "system.rejuvenation",
        "source": "system",
        "data": {"downtime_s": 30.0},
        "run": 0,
    },
    {
        "ts": 400.0,
        "type": "fault.cleared",
        "source": "scenario",
        "data": {"kind": "aging"},
        "run": 0,
    },
]


class TestExplainRecords:
    def test_unfiltered_narrates_everything(self):
        text = explain_records(RECORDS)
        assert "fault" in text and "trigger" in text

    def test_until_cuts_late_events(self):
        text = explain_records(RECORDS, until=100.0)
        assert "injected" in text
        assert "trigger" not in text

    def test_since_cuts_early_events(self):
        text = explain_records(RECORDS, since=100.0)
        assert "injected" not in text
        assert "trigger" in text

    def test_kind_filter_exact_and_prefix(self):
        text = explain_records(RECORDS, kinds=["fault.injected"])
        assert "injected" in text and "cleared" not in text
        text = explain_records(RECORDS, kinds=["fault"])
        assert "injected" in text and "cleared" in text

    def test_meta_survives_any_filter(self):
        # run.meta is always kept, so the header stays even when the
        # window excludes every event.
        text = explain_records(RECORDS, since=9000.0)
        assert "run 0" in text


class TestExplainTrace:
    @pytest.fixture(scope="class")
    def traces(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("explain")
        jsonl = str(root / "t.jsonl")
        assert main(SIMULATE + ["--trace", jsonl]) == 0
        rcol = str(root / "t.rcol")
        convert_trace(jsonl, rcol)
        return jsonl, rcol

    def test_filters_agree_across_formats(self, traces):
        jsonl, rcol = traces
        for kwargs in (
            {},
            {"since": 100.0},
            {"until": 500.0},
            {"kinds": ["policy"]},
            {"since": 50.0, "until": 800.0, "kinds": ["policy.trigger"]},
        ):
            assert explain_trace(jsonl, **kwargs) == explain_trace(
                rcol, **kwargs
            ), kwargs

    def test_cli_flags_reach_the_filter(self, traces, capsys):
        jsonl, _rcol = traces
        assert main(["explain", jsonl]) == 0
        full = capsys.readouterr().out
        assert (
            main(
                [
                    "explain", jsonl,
                    "--kind", "run",
                    "--until", "0.0",
                ]
            )
            == 0
        )
        narrow = capsys.readouterr().out
        assert len(narrow) < len(full)
        assert "trigger #1" in full
        assert "trigger #1" not in narrow

    def test_repeated_kind_flags_accumulate(self, traces, capsys):
        jsonl, _rcol = traces
        assert (
            main(
                [
                    "explain", jsonl,
                    "--kind", "policy.trigger",
                    "--kind", "system.rejuvenation",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "trigger #1" in out

    def test_empty_trace_message(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("", encoding="utf-8")
        assert "empty trace" in explain_trace(str(empty))
