"""Live-telemetry overhead: always-on flight recording must be cheap.

The ISSUE acceptance bound: running with the flight recorder on (live
tap + bounded ring, no buffering trace) must stay within 10% of the
untraced baseline.  The pinned configuration is
``LiveSpec(aggregate=False, recorder=...)`` -- the always-on forensics
path: the tap declines per-request lifecycle events at the call sites
(the ``lifecycle`` tracer flag), the policies skip the per-batch
listener hook (``DecisionListener.wants_batches``), and the recorder's
ring append is inlined into the tap's ``emit``, so a recorded event
costs one flag check, a tuple append and a set lookup.

Methodology: wall-clock on a shared machine is the true cost plus
non-negative interference, and the interference here is large (paired
round ratios swing roughly 0.9x-1.3x between identical runs).  Each
round therefore times the baseline and the flight configuration
*back-to-back* -- adjacent in time, so both see the same machine state
-- and the acceptance pin takes the **best paired round**: if in any
round the machine was quiet for both runs, that pair's ratio bounds
the systematic overhead from above.  A small absolute slack keeps
sub-100ms baselines from flaking on quantisation.

Two further, unpinned measurements record the price of the optional
layers for the machine-capability record -- the full streaming
aggregators (GK sketch, rolling window, EWMA rate per completion) and
the DES profiler on top -- so the docs' overhead table states measured
numbers, not guesses.
"""

import time

from conftest import BENCH_SEED, bench_scale

from repro.core.spec import PolicySpec
from repro.ecommerce.config import PAPER_CONFIG
from repro.ecommerce.runner import run_replications
from repro.ecommerce.spec import ArrivalSpec
from repro.obs.live import LiveSpec, RecorderSpec

#: Paired base/flight rounds; the pin takes the quietest pair.
ROUNDS = 7

#: Rounds for the unpinned capability measurements.
EXTRA_ROUNDS = 3

#: The acceptance bound: flight-recorder-on vs untraced baseline.
OVERHEAD_FACTOR = 1.10

#: Absolute slack (s): sub-100ms baselines are dominated by noise.
ABSOLUTE_SLACK_S = 0.015

#: The pinned configuration -- the always-on forensics path.
FLIGHT_ONLY = LiveSpec(aggregate=False, recorder=RecorderSpec())

#: The full live stack, measured but not pinned (its cost is the
#: documented price of the dashboard statistics).
FULL_LIVE = LiveSpec(recorder=RecorderSpec())


def _workload(live=None, profile=False):
    # Long enough (~0.25 s untraced) that within-run averaging smooths
    # scheduler spikes; a 50 ms run would be noise-dominated.
    scale = bench_scale()
    n = max(10_000, scale.transactions // 2)
    return run_replications(
        PAPER_CONFIG,
        arrival=ArrivalSpec.poisson(1.8),
        policy=PolicySpec.sraa(2, 5, 3),
        n_transactions=n,
        replications=2,
        seed=BENCH_SEED,
        live=live,
        profile=profile,
    )


def _timed(fn):
    started = time.perf_counter()
    result = fn()
    return time.perf_counter() - started, result


def test_live_overhead(benchmark):
    # Warm-up outside the timings (imports, allocator, branch caches).
    _workload()
    _workload(live=FLIGHT_ONLY)

    pairs = []
    for _ in range(ROUNDS):
        base_s, base_result = _timed(_workload)
        flight_s, flight_result = _timed(
            lambda: _workload(live=FLIGHT_ONLY)
        )
        pairs.append((base_s, flight_s))
    base_s, flight_s = min(pairs, key=lambda pair: pair[1] / pair[0])

    live_times, profile_times = [], []
    for _ in range(EXTRA_ROUNDS):
        live_s, live_result = _timed(lambda: _workload(live=FULL_LIVE))
        live_times.append(live_s)
        profile_times.append(
            _timed(lambda: _workload(live=FULL_LIVE, profile=True))[0]
        )
    live_s, profile_s = min(live_times), min(profile_times)

    # Telemetry must not change the simulation itself.
    for traced in (flight_result, live_result):
        assert [r.completed for r in traced.runs] == [
            r.completed for r in base_result.runs
        ]
    # The flight path really recorded: this workload rejuvenates.
    assert any(run.flight for run in flight_result.runs)
    merged = live_result.merged_live()
    assert merged is not None and merged.snapshot()["completed"] > 0

    overhead = flight_s / base_s if base_s else float("nan")
    benchmark.extra_info["baseline_s"] = round(base_s, 4)
    benchmark.extra_info["flight_s"] = round(flight_s, 4)
    benchmark.extra_info["full_live_min_s"] = round(live_s, 4)
    benchmark.extra_info["live_profile_min_s"] = round(profile_s, 4)
    benchmark.extra_info["flight_overhead_factor"] = round(overhead, 4)
    print(
        f"\nbest pair of {ROUNDS}: untraced {base_s:.3f}s, "
        f"flight-recorder-on {flight_s:.3f}s ({overhead:.2%} of "
        f"baseline); full live {live_s:.3f}s, live+profile "
        f"{profile_s:.3f}s (minima of {EXTRA_ROUNDS})"
    )

    # The acceptance pin: within 10% of the untraced baseline on the
    # quietest paired round (plus a small absolute slack so sub-100ms
    # baselines don't flake).
    bound = base_s * OVERHEAD_FACTOR + ABSOLUTE_SLACK_S
    assert flight_s <= bound, (
        f"flight recorder costs {flight_s:.3f}s vs untraced "
        f"{base_s:.3f}s on the quietest of {ROUNDS} paired rounds "
        f"-- beyond the 10% acceptance bound"
    )

    # Keep pytest-benchmark's timing machinery fed with the cheap path.
    benchmark.pedantic(_workload, rounds=1, iterations=1)
