"""The serve-side event bus: bounded fan-out from taps to subscribers.

One :class:`EventBroker` lives in the serving process.  Publishers --
:class:`~repro.serve.tap.ServeTap` instances riding on simulation jobs
-- call :meth:`EventBroker.publish` from whatever thread the job runs
in; each Server-Sent-Events subscriber owns a bounded
:class:`queue.Queue` that the publish fans out to.

Two disciplines keep the broker a *pure observer* of the simulation:

* Publishing never blocks.  A subscriber that cannot keep up loses its
  oldest queued events (counted on the subscription), not the
  simulation's time -- ``put_nowait`` with drop-oldest, never a wait.
* Published payloads are plain JSON-safe data built fresh per event, so
  no subscriber can reach back into live simulation state.

Every event carries a broker-assigned monotonically increasing ``seq``,
so subscribers (and the ordering tests) can assert they saw the stream
in publish order.
"""

from __future__ import annotations

import itertools
import queue
import threading
from typing import Any, Dict, List, Optional

#: Default per-subscriber queue bound.
DEFAULT_QUEUE_SIZE = 1024


class Subscription:
    """One subscriber's bounded view of the event stream."""

    __slots__ = ("id", "queue", "dropped", "_broker")

    def __init__(self, sub_id: int, maxsize: int, broker: "EventBroker"):
        self.id = sub_id
        self.queue: "queue.Queue[Dict[str, Any]]" = queue.Queue(
            maxsize=maxsize
        )
        #: Events lost to backpressure (oldest dropped first).
        self.dropped = 0
        self._broker = broker

    def get(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        """Next event, oldest first; raises ``queue.Empty`` on timeout."""
        return self.queue.get(timeout=timeout)

    def close(self) -> None:
        self._broker.unsubscribe(self)

    def __enter__(self) -> "Subscription":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class EventBroker:
    """Thread-safe bounded pub/sub plus the latest-snapshot register."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._subscribers: List[Subscription] = []
        self._seq = itertools.count(1)
        self._ids = itertools.count(1)
        #: Most recent ``live.snapshot`` payload (what ``/api/live``
        #: serves); ``None`` until a tap publishes one.
        self.latest_snapshot: Optional[Dict[str, Any]] = None
        #: Total events published over the broker's lifetime.
        self.published = 0

    # ------------------------------------------------------------------
    def subscribe(self, maxsize: int = DEFAULT_QUEUE_SIZE) -> Subscription:
        subscription = Subscription(next(self._ids), maxsize, self)
        with self._lock:
            self._subscribers.append(subscription)
        return subscription

    def unsubscribe(self, subscription: Subscription) -> None:
        with self._lock:
            try:
                self._subscribers.remove(subscription)
            except ValueError:
                pass  # already gone; close() is idempotent

    @property
    def subscriber_count(self) -> int:
        with self._lock:
            return len(self._subscribers)

    # ------------------------------------------------------------------
    def publish(self, etype: str, data: Dict[str, Any]) -> Dict[str, Any]:
        """Fan one event out to every subscriber; never blocks.

        Returns the stamped event (``{"seq", "event", "data"}``).
        """
        with self._lock:
            event = {"seq": next(self._seq), "event": etype, "data": data}
            self.published += 1
            if etype == "live.snapshot":
                self.latest_snapshot = data
            subscribers = tuple(self._subscribers)
        for subscription in subscribers:
            try:
                subscription.queue.put_nowait(event)
            except queue.Full:
                # Drop-oldest: the slow subscriber pays, not the run.
                try:
                    subscription.queue.get_nowait()
                    subscription.dropped += 1
                except queue.Empty:  # pragma: no cover - race window
                    pass
                try:
                    subscription.queue.put_nowait(event)
                except queue.Full:  # pragma: no cover - race window
                    subscription.dropped += 1
        return event
