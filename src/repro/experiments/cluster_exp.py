"""Cluster experiment (beyond the paper; companion work [2]).

Runs a 4-node cluster of Section-3 systems at a low and a high per-node
load under the scenario grid {no rejuvenation, per-node SRAA(2,5,3)} x
{round-robin, join-shortest-queue}, plus a rolling-coordinated variant
with restart downtime.  Documents that the single-server conclusions
survive the cluster deployment: per-node monitoring rescues the cluster
from the GC-driven soft failure at a few percent transaction loss.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional

from repro.cluster.balancer import JoinShortestQueue, LoadBalancer, RoundRobin
from repro.cluster.coordinator import RollingCoordinator
from repro.cluster.system import ClusterSystem
from repro.core.sla import PAPER_SLO
from repro.core.sraa import SRAA
from repro.ecommerce.config import PAPER_CONFIG, SystemConfig
from repro.ecommerce.workload import PoissonArrivals
from repro.experiments.scale import Scale
from repro.experiments.tables import ExperimentResult, Series, Table

N_NODES = 4
CLUSTER_LOADS = (2.0, 9.0)  # per-node offered load in CPUs


def _sraa_factory():
    return SRAA(PAPER_SLO, sample_size=2, n_buckets=5, depth=3)


def _run_scenario(
    label: str,
    scale: Scale,
    seed: int,
    rt_table: Table,
    loss_table: Table,
    config: SystemConfig = PAPER_CONFIG,
    policy_factory: Callable = _sraa_factory,
    balancer_factory: Callable[[], Optional[LoadBalancer]] = lambda: None,
    coordinator_factory: Callable[[], Optional[RollingCoordinator]] = (
        lambda: None
    ),
) -> None:
    rt_series = Series(label=label)
    loss_series = Series(label=label)
    for load in CLUSTER_LOADS:
        rate = N_NODES * config.arrival_rate_for_load(load)
        cluster = ClusterSystem(
            config,
            N_NODES,
            PoissonArrivals(rate),
            policy_factory,
            balancer=balancer_factory(),
            coordinator=coordinator_factory(),
            seed=seed,
        )
        result = cluster.run(scale.transactions)
        rt_series.add(load, result.avg_response_time)
        loss_series.add(load, result.loss_fraction)
    rt_table.add_series(rt_series)
    loss_table.add_series(loss_series)


def run_cluster(scale: Scale, seed: int = 0) -> ExperimentResult:
    """The cluster scenario grid at the scale's transaction budget."""
    rt_table = Table(
        title=f"{N_NODES}-node cluster: average response time",
        x_label="load_per_node_cpus",
        y_label="avg_response_time_s",
    )
    loss_table = Table(
        title=f"{N_NODES}-node cluster: fraction of transactions lost",
        x_label="load_per_node_cpus",
        y_label="loss_fraction",
    )
    _run_scenario(
        "no rejuvenation / RR",
        scale,
        seed,
        rt_table,
        loss_table,
        policy_factory=lambda: None,
        balancer_factory=RoundRobin,
    )
    _run_scenario(
        "SRAA(2,5,3) / RR",
        scale,
        seed,
        rt_table,
        loss_table,
        balancer_factory=RoundRobin,
    )
    _run_scenario(
        "SRAA(2,5,3) / JSQ",
        scale,
        seed,
        rt_table,
        loss_table,
        balancer_factory=JoinShortestQueue,
    )
    downtime = dataclasses.replace(
        PAPER_CONFIG, rejuvenation_downtime_s=30.0
    )
    _run_scenario(
        "SRAA + 30s downtime / rolling",
        scale,
        seed,
        rt_table,
        loss_table,
        config=downtime,
        balancer_factory=RoundRobin,
        coordinator_factory=lambda: RollingCoordinator(
            min_gap_s=30.0, max_nodes_down=1
        ),
    )
    return ExperimentResult(
        experiment_id="cluster",
        description=(
            "Cluster deployment of the rejuvenation algorithms "
            "(companion work [2]; beyond this paper)"
        ),
        tables=[rt_table, loss_table],
        paper_expectations=[
            "not a figure of this paper; [2] reports that the "
            "single-server conclusions carry over to clusters",
            "expected shape: unmanaged cluster melts down at high "
            "per-node load; per-node SRAA controls it for a few percent "
            "loss; JSQ does not hurt; rolling restarts bound concurrent "
            "downtime",
        ],
    )
