"""Sharded fleet substrate: thousands of nodes over ``repro.exec``.

A :class:`FleetSpec` describes a fleet of ``n_nodes`` Section-3 nodes
split into ``shards`` balanced clusters.  Each shard is an independent
:class:`~repro.cluster.system.ClusterSystem` slice of the global node
range with its own simulator, random streams, and scheduler domain, so
shards are embarrassingly parallel: the fleet maps a picklable
:class:`_ShardTask` over the ambient :mod:`repro.exec` backend and
merges shard results **in submission order** -- the same discipline
that makes replication sweeps bit-identical across backends makes the
fleet's merged result identical whether its shards ran serially or on
a process pool.

Determinism
-----------
Shard ``i`` of a fleet seeded ``s`` draws from ``s + 104729 * (i + 1)``
(:data:`FLEET_SHARD_RULE`): a fixed large prime stride keeps shard
streams disjoint from the replication (``seed + i``) and campaign
(``seed + 1000 * scenario + i``) seed protocols, so a fleet embedded in
a campaign cell never shares a stream with a neighbouring replication.
Transactions and warmup are split across shards proportionally to
shard size by cumulative rounding (the splits sum exactly).

Merging
-------
Counters sum; response-time moments merge exactly via the Chan et al.
parallel update (each shard ships its raw ``(count, mean, M2, min,
max)``; the merged mean/std/max are *not* recomputed from per-shard
summaries); the loss fraction is recomputed from summed measured
losses; traces and rejuvenation times are stably merged by simulated
time; live aggregators and DES profiles merge with the existing
submission-order folds.  Scheduler grant logs concatenate into
:attr:`FleetSystem.grant_log` (sorted by grant time) for invariant
audits -- capacity floors and blast-radius limits are enforced per
shard (the shard is the coordination domain; see
:mod:`repro.systems.schedulers`), while pods are laid out on global
node indices and must not straddle shard boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro.systems.protocol import ObsSpec, SystemSpec, register_system
from repro.systems.schedulers import SchedulerSpec

#: Seed stride between fleet shards (a prime far above campaign/sweep
#: strides): shard i of a fleet seeded s uses ``s + 104729 * (i + 1)``.
FLEET_SHARD_RULE = "fleet shard i: seed + 104729 * (i + 1)"

_SHARD_SEED_STRIDE = 104729


def shard_seed(seed: Optional[int], shard: int) -> Optional[int]:
    """The CRN seed for ``shard`` of a fleet seeded ``seed``."""
    if seed is None:
        return None
    return seed + _SHARD_SEED_STRIDE * (shard + 1)


def split_proportionally(total: int, weights: Tuple[int, ...]) -> List[int]:
    """Split ``total`` into integer parts proportional to ``weights``.

    Cumulative rounding: part ``i`` is the difference of consecutive
    ``floor(total * cum_i / sum)`` values, so the parts always sum to
    ``total`` exactly and the split is deterministic.
    """
    denom = sum(weights)
    if denom <= 0:
        raise ValueError("weights must sum to a positive total")
    parts: List[int] = []
    cum = 0
    prev = 0
    for weight in weights:
        cum += weight
        mark = (total * cum) // denom
        parts.append(mark - prev)
        prev = mark
    return parts


@dataclass(frozen=True)
class _ShardTask:
    """Everything one shard needs, as plain picklable data."""

    config: Any
    arrival: Any
    policy: Any
    n_nodes: int
    first_node: int
    total_nodes: int
    n_transactions: int
    warmup: int
    seed: Optional[int]
    balancer: str
    scheduler: Optional[SchedulerSpec]
    arrival_scale: float
    faults: Any
    collect: bool
    trace_level: Optional[str]
    trace_format: Optional[str]
    live: Any
    profile: bool


@dataclass(frozen=True)
class ShardOutcome:
    """One shard's converted result plus its raw merge ingredients."""

    result: Any  # RunResult
    #: Raw measured moments: (count, mean, M2, minimum, maximum).
    moments: Tuple[float, ...]
    measured_lost: int
    grants: Tuple[Tuple[float, int, float], ...]
    granted: int
    denied: int


def _run_shard(task: _ShardTask) -> ShardOutcome:
    """Run one shard to completion (module-level: pool-picklable)."""
    from repro.cluster.balancer import make_balancer
    from repro.cluster.system import ClusterSystem
    from repro.exec.jobs import build_arrival
    from repro.systems.cluster import _ClusterRun, _PolicyFactory

    sinks = ObsSpec(
        trace_level=task.trace_level,
        trace_format=task.trace_format,
        live=task.live,
        profile=task.profile,
    ).build()
    coordinator = None
    if task.scheduler is not None:
        coordinator = task.scheduler.build(
            task.n_nodes, first_node=task.first_node
        )
    system = ClusterSystem(
        task.config,
        task.n_nodes,
        build_arrival(task.arrival),
        policy_factory=_PolicyFactory(task.policy),
        balancer=make_balancer(task.balancer),
        coordinator=coordinator,
        seed=task.seed,
        tracer=sinks.sink,
        faults=task.faults,
        profiler=sinks.profiler,
        arrival_scale=task.arrival_scale,
        first_node_index=task.first_node,
        total_nodes=task.total_nodes,
    )
    result = _ClusterRun(system, sinks).run(
        task.n_transactions,
        warmup=task.warmup,
        collect_response_times=task.collect,
    )
    moments = system.measured_moments
    return ShardOutcome(
        result=result,
        moments=(
            moments.count,
            moments.mean,
            moments._m2,
            moments.minimum,
            moments.maximum,
        ),
        measured_lost=system.measured_lost,
        grants=tuple(getattr(coordinator, "grants", ())),
        granted=getattr(system.coordinator, "granted", 0),
        denied=getattr(system.coordinator, "denied", 0),
    )


@register_system
@dataclass(frozen=True)
class FleetSpec(SystemSpec):
    """A fleet of ``n_nodes`` nodes sharded into ``shards`` clusters."""

    kind = "fleet"

    n_nodes: int = 100
    shards: int = 4
    balancer: str = "round_robin"
    scheduler: Optional[SchedulerSpec] = None
    scale_arrivals: bool = True
    scale_transactions: bool = True

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("a fleet needs at least one node")
        if not 1 <= self.shards <= self.n_nodes:
            raise ValueError(
                f"shard count must lie in [1, n_nodes], got "
                f"{self.shards} for {self.n_nodes} nodes"
            )
        from repro.cluster.balancer import BALANCERS

        if self.balancer not in BALANCERS:
            raise ValueError(
                f"unknown balancer {self.balancer!r}; "
                f"available: {', '.join(sorted(BALANCERS))}"
            )
        if self.scheduler is not None and self.scheduler.pod_size is not None:
            for offset in self.shard_offsets():
                if offset % self.scheduler.pod_size != 0:
                    raise ValueError(
                        f"pod size {self.scheduler.pod_size} straddles a "
                        f"shard boundary at node {offset}; choose a pod "
                        "size dividing every shard offset so blast-radius "
                        "limits stay exact"
                    )

    @classmethod
    def from_dict(cls, payload: dict) -> "FleetSpec":
        payload = dict(payload)
        scheduler = payload.get("scheduler")
        if isinstance(scheduler, dict):
            payload["scheduler"] = SchedulerSpec(**scheduler)
        return cls(**payload)

    # ------------------------------------------------------------------
    def shard_sizes(self) -> Tuple[int, ...]:
        """Node count per shard (remainder spread over the first shards)."""
        base, rem = divmod(self.n_nodes, self.shards)
        return tuple(
            base + (1 if i < rem else 0) for i in range(self.shards)
        )

    def shard_offsets(self) -> Tuple[int, ...]:
        """Each shard's first global node index."""
        offsets = []
        cursor = 0
        for size in self.shard_sizes():
            offsets.append(cursor)
            cursor += size
        return tuple(offsets)

    def job_transactions(self, n_transactions: int) -> int:
        if self.scale_transactions:
            return n_transactions * self.n_nodes
        return n_transactions

    def build(
        self,
        config: Any,
        arrival: Any,
        policy: Any,
        seed: Optional[int] = None,
        obs: Optional[ObsSpec] = None,
        faults: Any = None,
    ) -> "FleetSystem":
        return FleetSystem(
            self, config, arrival, policy, seed=seed, obs=obs, faults=faults
        )


class FleetSystem:
    """Runs a :class:`FleetSpec`'s shards and merges their results.

    Unlike the node and cluster substrates this system holds no live
    simulator of its own -- it is an orchestrator.  Shard tasks are
    plain data mapped over the ambient execution backend
    (:func:`repro.exec.backends.current_backend`); inside a process
    pool each worker is pinned to serial execution, so a fleet job in a
    campaign never nests pools.

    After :meth:`run`, :attr:`grant_log` holds the merged scheduler
    audit trail ``(time, global_node, down_until)`` sorted by grant
    time, and :attr:`shard_outcomes` the per-shard
    :class:`ShardOutcome` records.
    """

    def __init__(
        self,
        spec: FleetSpec,
        config: Any,
        arrival: Any,
        policy: Any,
        seed: Optional[int] = None,
        obs: Optional[ObsSpec] = None,
        faults: Any = None,
    ) -> None:
        obs = obs if obs is not None else ObsSpec()
        if obs.telemetry_interval_s is not None:
            raise ValueError(
                "telemetry probes are single-node instrumentation; "
                "the fleet substrate does not support them"
            )
        if obs.live is not None and obs.live.display is not None:
            raise ValueError(
                "a live display cannot watch a sharded fleet; drop the "
                "display (LiveSpec.without_display()) or run one cluster"
            )
        self.spec = spec
        self.config = config
        self.arrival = arrival
        self.policy = policy
        self.seed = seed
        self.obs = obs
        self.faults = faults
        self.grant_log: List[Tuple[float, int, float]] = []
        self.granted = 0
        self.denied = 0
        self.shard_outcomes: List[ShardOutcome] = []

    def _shard_tasks(
        self,
        n_transactions: int,
        warmup: int,
        collect: bool,
    ) -> List[_ShardTask]:
        spec = self.spec
        sizes = spec.shard_sizes()
        offsets = spec.shard_offsets()
        txn_split = split_proportionally(n_transactions, sizes)
        warm_split = split_proportionally(warmup, sizes)
        tasks = []
        for i, (size, offset) in enumerate(zip(sizes, offsets)):
            if txn_split[i] < 1:
                raise ValueError(
                    f"{n_transactions} transactions leave shard {i} of "
                    f"{spec.shards} empty; raise the horizon or use "
                    "fewer shards"
                )
            if not warm_split[i] < txn_split[i]:
                raise ValueError(
                    f"warmup {warmup} leaves shard {i} nothing to measure"
                )
            tasks.append(
                _ShardTask(
                    config=self.config,
                    arrival=self.arrival,
                    policy=self.policy,
                    n_nodes=size,
                    first_node=offset,
                    total_nodes=spec.n_nodes,
                    n_transactions=txn_split[i],
                    warmup=warm_split[i],
                    seed=shard_seed(self.seed, i),
                    balancer=spec.balancer,
                    scheduler=spec.scheduler,
                    arrival_scale=(
                        float(size)
                        if spec.scale_arrivals
                        else size / spec.n_nodes
                    ),
                    faults=self.faults,
                    collect=collect,
                    trace_level=self.obs.trace_level,
                    trace_format=self.obs.trace_format,
                    live=self.obs.live,
                    profile=self.obs.profile,
                )
            )
        return tasks

    def run(
        self,
        n_transactions: int,
        warmup: int = 0,
        collect_response_times: bool = False,
    ):
        """Run every shard and merge, in shard-submission order."""
        from repro.exec.backends import current_backend

        if n_transactions < 1:
            raise ValueError("need at least one transaction")
        if not 0 <= warmup < n_transactions:
            raise ValueError("warmup must lie in [0, n_transactions)")
        tasks = self._shard_tasks(
            n_transactions, warmup, collect_response_times
        )
        outcomes = current_backend().map(_run_shard, tasks)
        self.shard_outcomes = list(outcomes)
        return self._merge(outcomes, n_transactions, warmup)

    def _merge(self, outcomes, n_transactions: int, warmup: int):
        from repro.ecommerce.metrics import RunResult
        from repro.stats.running import OnlineMoments

        results = [outcome.result for outcome in outcomes]
        moments = OnlineMoments()
        for outcome in outcomes:
            shard = OnlineMoments()
            (
                shard.count,
                shard.mean,
                shard._m2,
                shard.minimum,
                shard.maximum,
            ) = outcome.moments
            moments = moments.merge(shard)
        measured_lost = sum(o.measured_lost for o in outcomes)
        self.grant_log = sorted(
            (grant for o in outcomes for grant in o.grants),
            key=lambda grant: grant[0],
        )
        self.granted = sum(o.granted for o in outcomes)
        self.denied = sum(o.denied for o in outcomes)

        trace = None
        if self.obs.trace_level is not None:
            if self.obs.trace_format == "columnar":
                # Shard taps return encoded batches; merge them without
                # decoding -- concatenate columns (shard submission
                # order) and stably re-sort by simulated time, the same
                # interleaving discipline as the dict path below.
                from repro.obs.columnar.store import merge_batches_sorted
                from repro.obs.columnar.tap import ColumnarRun

                batches = [
                    r.trace.batch for r in results if r.trace is not None
                ]
                trace = ColumnarRun(merge_batches_sorted(batches))
            else:
                merged_events = [
                    event for r in results for event in (r.trace or ())
                ]
                merged_events.sort(key=lambda event: event.ts)
                trace = tuple(merged_events)
        response_times = None
        if any(r.response_times is not None for r in results):
            response_times = tuple(
                rt for r in results for rt in (r.response_times or ())
            )
        live = None
        if self.obs.live is not None:
            from repro.obs.live import merge_live

            live = merge_live(r.live for r in results)
        flight = None
        if any(r.flight for r in results):
            flight = tuple(
                dump for r in results for dump in (r.flight or ())
            )
        profile = None
        if self.obs.profile:
            from repro.obs.live import merge_profiles

            profile = merge_profiles(r.profile for r in results)
        rejuvenation_times = sorted(
            t for r in results for t in (r.rejuvenation_times or ())
        )
        return RunResult(
            arrivals=sum(r.arrivals for r in results),
            completed=sum(r.completed for r in results),
            lost=sum(r.lost for r in results),
            avg_response_time=moments.mean if moments.count else 0.0,
            rt_std=moments.std,
            max_response_time=moments.maximum if moments.count else 0.0,
            loss_fraction=measured_lost / (n_transactions - warmup),
            gc_count=sum(r.gc_count for r in results),
            rejuvenations=sum(r.rejuvenations for r in results),
            sim_duration_s=max(r.sim_duration_s for r in results),
            response_times=response_times,
            trace=trace,
            telemetry=None,
            rejuvenation_times=tuple(rejuvenation_times),
            live=live,
            flight=flight,
            profile=profile,
            refused=sum(r.refused for r in results),
            nodes=tuple(
                stats for r in results for stats in (r.nodes or ())
            ),
        )
