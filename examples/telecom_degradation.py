"""Slow capacity erosion under periodic telecom traffic (ref. [3]).

The lineage behind the paper: Avritzer & Weyuker's 1997 study of
telecommunication systems whose capacity degrades smoothly (leaked
resources claim worker capacity one unit at a time) under predictably
periodic traffic.  This example runs that model and asks which detector
family suits *slow drift*, as opposed to the e-commerce model's abrupt
GC stalls:

* the bucket algorithms (SRAA) -- built for shift-by-K-sigma evidence;
* trend detection (Mann-Kendall) -- needs no SLO at all;
* CUSUM -- the control-chart classic for sustained small shifts.

Run:  python examples/telecom_degradation.py
"""

from repro import SRAA, CUSUMPolicy, ServiceLevelObjective, TrendPolicy
from repro.degradation import DegradableSystem
from repro.ecommerce.workload import PeriodicArrivals

# An 8-worker exchange, mean service 2 s, daily-cycle traffic around
# 2 calls/s, capacity eroding roughly every 3 minutes of operation.
C_MAX = 8
SERVICE_RATE = 0.5
DEGRADATION_RATE = 1 / 180.0
SLO = ServiceLevelObjective(mean=2.0, std=2.0)
TRANSACTIONS = 12_000


def arrivals() -> PeriodicArrivals:
    return PeriodicArrivals(base_rate=2.0, amplitude=0.6, period_s=3_600.0)


def run(label, policy):
    system = DegradableSystem(
        c_max=C_MAX,
        service_rate=SERVICE_RATE,
        degradation_rate=DEGRADATION_RATE,
        min_capacity=2,
        arrivals=arrivals(),
        policy=policy,
        seed=17,
    )
    result = system.run(TRANSACTIONS)
    print(
        f"{label:<26} {result.avg_response_time:>7.2f} "
        f"{result.loss_fraction:>8.4f} {result.rejuvenations:>6d} "
        f"{result.degradation_events:>8d}"
    )


def main() -> None:
    print(
        f"Degradable exchange: {C_MAX} workers, erosion every "
        f"{1 / DEGRADATION_RATE:.0f} s, sinusoidal traffic\n"
    )
    header = (
        f"{'policy':<26} {'avg RT':>7} {'loss':>8} {'rejuv':>6} "
        f"{'erosions':>8}"
    )
    print(header)
    print("-" * len(header))
    run("no rejuvenation", None)
    run("SRAA (2,3,3)", SRAA(SLO, sample_size=2, n_buckets=3, depth=3))
    run("trend (n=10, w=10)", TrendPolicy(sample_size=10, window=10))
    run("CUSUM (k=0.5, h=5)", CUSUMPolicy(SLO))
    print(
        "\nReading: with smooth drift every detector family works -- the "
        "difference is the\nevidence each requires.  CUSUM and the "
        "buckets use the SLO and fire on sustained\nexceedance; the "
        "trend detector needs no baseline at all, which is exactly what "
        "the\n1997 telecom setting (no calibrated SLA, strong daily "
        "periodicity) wanted."
    )


if __name__ == "__main__":
    main()
