"""The percentile-SLO policy."""

import numpy as np
import pytest

from repro.core.quantile import QuantilePolicy


class TestTriggering:
    def test_healthy_traffic_never_triggers(self):
        rng = np.random.default_rng(0)
        policy = QuantilePolicy(0.95, limit=20.0, window=50, patience=2)
        # Exponential(5): p95 ~ 15 < 20.
        assert policy.observe_many(rng.exponential(5.0, size=5_000)) == []

    def test_degraded_tail_triggers(self):
        rng = np.random.default_rng(1)
        policy = QuantilePolicy(0.95, limit=20.0, window=50, patience=2)
        degraded = rng.exponential(15.0, size=500)  # p95 ~ 45
        triggers = policy.observe_many(degraded)
        assert triggers
        # Needs patience * window observations at minimum.
        assert triggers[0] >= 100 - 1

    def test_patience_filters_single_bad_window(self):
        rng = np.random.default_rng(2)
        policy = QuantilePolicy(0.95, limit=20.0, window=50, patience=2)
        one_bad_window = list(rng.exponential(30.0, size=50)) + list(
            rng.exponential(5.0, size=400)
        )
        assert policy.observe_many(one_bad_window) == []

    def test_patience_one_is_eager(self):
        rng = np.random.default_rng(3)
        policy = QuantilePolicy(0.95, limit=20.0, window=50, patience=1)
        triggers = policy.observe_many(rng.exponential(30.0, size=100))
        assert triggers and triggers[0] == 49

    def test_mean_shift_without_tail_shift_ignored(self):
        # Constant 9.9s traffic: mean doubled vs a 5s baseline, but the
        # p95 stays under the limit -- a tail SLO does not care.
        policy = QuantilePolicy(0.95, limit=10.0, window=50, patience=1)
        assert policy.observe_many([9.9] * 500) == []

    def test_trigger_resets_state(self):
        policy = QuantilePolicy(0.9, limit=1.0, window=10, patience=1)
        values = [5.0] * 10
        assert policy.observe_many(values) == [9]
        assert policy._violations == 0
        assert policy._in_window == 0


class TestDiagnostics:
    def test_last_estimate_exposed(self):
        policy = QuantilePolicy(0.5, limit=100.0, window=20, patience=1)
        policy.observe_many([float(i) for i in range(20)])
        assert policy.last_estimate is not None
        assert 5.0 <= policy.last_estimate <= 15.0

    def test_describe(self):
        text = QuantilePolicy(0.95, 10.0, window=60, patience=3).describe()
        assert "p=0.95" in text
        assert "patience=3" in text

    def test_reset(self):
        policy = QuantilePolicy(0.9, limit=1.0, window=10, patience=2)
        policy.observe_many([5.0] * 15)
        policy.reset()
        assert policy._in_window == 0
        assert policy._violations == 0


class TestValidation:
    def test_window_floor(self):
        with pytest.raises(ValueError):
            QuantilePolicy(0.9, 10.0, window=5)

    def test_patience_floor(self):
        with pytest.raises(ValueError):
            QuantilePolicy(0.9, 10.0, patience=0)

    def test_quantile_range(self):
        with pytest.raises(ValueError):
            QuantilePolicy(1.0, 10.0)
