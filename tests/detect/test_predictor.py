"""The Holt trend-projection detector."""

import pickle

import pytest

from repro.core.base import DecisionListener
from repro.core.sla import PAPER_SLO
from repro.detect.predictor import TrendProjectionPolicy


def make_policy(**kw):
    defaults = dict(
        sample_size=1, lookahead=10, bound=50.0, warmup=5, patience=2
    )
    defaults.update(kw)
    return TrendProjectionPolicy(PAPER_SLO, **defaults)


class Recorder(DecisionListener):
    def __init__(self):
        self.causes = []
        self.batches = []

    def on_batch(self, policy, batch_mean, threshold, n, breach):
        self.batches.append((batch_mean, breach))

    def on_trigger_cause(self, policy, cause):
        self.causes.append(dict(cause))


class TestDetection:
    def test_fires_before_the_level_reaches_the_bound(self):
        policy = make_policy()
        listener = Recorder()
        policy.set_listener(listener)
        ramp = [5.0 + 2.0 * i for i in range(40)]
        triggers = policy.observe_many(ramp)
        assert triggers
        (cause,) = [listener.causes[0]]
        assert cause["kind"] == "trend-projection"
        assert cause["projected"] >= cause["bound"]
        # The forecast breached while the raw signal was still healthy.
        assert cause["batch_mean"] < cause["bound"]
        assert cause["holt_trend"] > 0.0

    def test_flat_traffic_never_triggers(self):
        policy = make_policy()
        assert policy.observe_many([5.0] * 200) == []

    def test_downward_trend_never_triggers(self):
        policy = make_policy()
        falling = [200.0 - i for i in range(150)]
        assert policy.observe_many(falling) == []

    def test_no_trigger_during_warmup(self):
        policy = make_policy(warmup=50)
        steep = [5.0 + 10.0 * i for i in range(49)]
        assert policy.observe_many(steep) == []

    def test_patience_suppresses_a_single_projected_breach(self):
        policy = make_policy(patience=10)
        # One spike bends the trend briefly; flat traffic then clears
        # the streak before patience is exhausted.
        values = [5.0] * 10 + [300.0] + [5.0] * 50
        assert policy.observe_many(values) == []

    def test_default_bound_is_the_ladder_top(self):
        policy = TrendProjectionPolicy(PAPER_SLO)
        assert policy.bound == pytest.approx(PAPER_SLO.shift_threshold(4))


class TestLifecycle:
    def test_trigger_and_reset_forget_the_model(self):
        policy = make_policy()
        for i in range(40):
            if policy.observe(5.0 + 2.0 * i):
                break
        else:
            pytest.fail("ramp never triggered")
        # The trigger itself cleared the fitted model.
        assert policy.level is None
        assert policy.trend == 0.0
        assert policy.batches == 0
        policy.observe_many([5.0, 6.0])
        policy.reset()
        assert policy.level is None and policy.batches == 0

    def test_deterministic_after_reset(self):
        ramp = [5.0 + 2.0 * i for i in range(40)]
        one = make_policy()
        one.observe_many(ramp)
        one.reset()
        two = make_policy()
        assert one.observe_many(ramp) == two.observe_many(ramp)

    def test_picklable_mid_stream(self):
        policy = make_policy()
        policy.observe_many([5.0 + i for i in range(8)])
        clone = pickle.loads(pickle.dumps(policy))
        tail = [20.0 + 3.0 * i for i in range(20)]
        assert clone.observe_many(tail) == policy.observe_many(tail)


class TestValidation:
    @pytest.mark.parametrize(
        "kw",
        [
            {"alpha": 0.0},
            {"alpha": 1.5},
            {"beta": 0.0},
            {"lookahead": 0},
            {"warmup": 1},
            {"patience": 0},
        ],
    )
    def test_rejects_bad_parameters(self, kw):
        with pytest.raises(ValueError):
            make_policy(**kw)
