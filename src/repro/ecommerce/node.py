"""One processing node: CPUs, heap, queue -- the Section-3 mechanics.

``ProcessingNode`` owns steps 2-7 of the paper's model for a single
host: FCFS queueing for a CPU pool, exponential service with the kernel
overhead rule, per-transaction heap allocation with full-GC stalls, and
capacity restoration.  It is deliberately ignorant of *arrivals* and of
*decision making*: the single-server :class:`~repro.ecommerce.system.ECommerceSystem`
and the cluster :class:`~repro.cluster.system.ClusterSystem` both drive
it through :meth:`submit` and the completion/loss callbacks, so the two
deployments share one implementation of the mechanics.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional, Tuple

import numpy as np

from repro.des.engine import Simulator
from repro.des.events import Event
from repro.ecommerce.config import SystemConfig
from repro.ecommerce.service_times import make_service_sampler


class Job:
    """One transaction travelling through a node."""

    __slots__ = ("arrival_time", "index", "completion_event")

    def __init__(self, arrival_time: float, index: int) -> None:
        self.arrival_time = arrival_time
        self.index = index
        self.completion_event: Optional[Event] = None


class ProcessingNode:
    """The CPU/heap/queue mechanics of one host.

    Parameters
    ----------
    config:
        System parameters (CPU count, heap, GC, overhead).
    sim:
        The simulator whose clock and event set this node lives in --
        shared across nodes in a cluster.
    service_rng:
        Random stream for service-time draws (one per node keeps
        common-random-number discipline across scenarios).
    on_complete:
        Called with ``(job, response_time)`` when a transaction
        finishes.  The owner records the metric, feeds policies, and may
        call :meth:`rejuvenate` from inside the callback.
    on_loss:
        Called with ``(job)`` for every transaction killed by a
        rejuvenation.
    on_allocation:
        Optional; called with ``(time, free_heap_mb)`` after each heap
        allocation -- the resource-policy hook.
    name:
        Label used in repr/diagnostics.
    tracer:
        Optional :class:`repro.obs.tracer.Tracer`; when its ``spans``
        flag is on, the node emits request-lifecycle and GC/
        rejuvenation events.  ``None`` (the default) keeps the hot
        paths at one attribute check each.
    """

    def __init__(
        self,
        config: SystemConfig,
        sim: Simulator,
        service_rng: np.random.Generator,
        on_complete: Callable[[Job, float], None],
        on_loss: Callable[[Job], None],
        on_allocation: Optional[Callable[[float, float], None]] = None,
        name: str = "node0",
        tracer: Optional[object] = None,
    ) -> None:
        self.config = config
        self.sim = sim
        self.service_rng = service_rng
        self._tracer = tracer if tracer is not None and tracer.spans else None
        # Per-request microscope events (enqueue, service start) go
        # only to sinks that want lifecycle detail; see LIFECYCLE_TYPES.
        self._life_tracer = (
            self._tracer
            if self._tracer is not None and getattr(tracer, "lifecycle", True)
            else None
        )
        self._draw_service = make_service_sampler(
            config.service_distribution,
            mean=1.0 / config.service_rate,
            cv=config.service_cv,
            rng=service_rng,
        )
        self.on_complete = on_complete
        self.on_loss = on_loss
        self.on_allocation = on_allocation
        self.name = name
        self.reset()

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Return to a pristine node (used between runs)."""
        self.queue: Deque[Job] = deque()
        # Insertion-ordered on purpose: rejuvenation and GC iterate over
        # the executing jobs, and a set's address-dependent order would
        # make loss/reschedule order differ between worker processes.
        self.in_service: Dict[Job, None] = {}
        self.free_cpus = self.config.cpus
        self.in_system = 0
        self.live_mb = 0.0
        self.garbage_mb = 0.0
        self.gc_end = 0.0
        self.gc_count = 0
        self.rejuvenations = 0
        self.crashes = 0
        #: Multiplier applied to every service draw (fault injection:
        #: a sustained slowdown models genuine software aging).
        self.service_scale = 1.0
        #: Heavy-tailed contamination ``(prob, pareto_alpha, scale_s)``
        #: or ``None``; when set, each service start adds a Pareto-
        #: distributed delay with probability ``prob``.
        self.contamination: Optional[Tuple[float, float, float]] = None

    @property
    def free_heap_mb(self) -> float:
        """Heap neither held live nor awaiting collection."""
        return self.config.heap_mb - self.live_mb - self.garbage_mb

    @property
    def queue_length(self) -> int:
        """Transactions waiting for a CPU."""
        return len(self.queue)

    # ------------------------------------------------------------------
    # Work intake
    # ------------------------------------------------------------------
    def submit(self, job: Job) -> None:
        """Accept one transaction (step 2: queue for a CPU)."""
        self.in_system += 1
        self.queue.append(job)
        tracer = self._life_tracer
        if tracer is not None:
            tracer.emit(
                self.sim.now,
                "request.enqueue",
                self.name,
                index=job.index,
                queue_length=len(self.queue),
                in_system=self.in_system,
            )
        self.dispatch()

    def dispatch(self) -> None:
        """Start service on free CPUs while the queue is non-empty."""
        while self.free_cpus > 0 and self.queue:
            self._start_service(self.queue.popleft())

    def _start_service(self, job: Job) -> None:
        cfg = self.config
        now = self.sim.now
        self.free_cpus -= 1
        self.in_service[job] = None
        # Step 3: processing time (exponential in the paper).
        service = self._draw_service()
        # Fault-injection surface: sustained slowdown and heavy-tailed
        # contamination (no extra draws when no fault is active).
        if self.service_scale != 1.0:
            service *= self.service_scale
        contamination = self.contamination
        if contamination is not None:
            prob, alpha, scale_s = contamination
            if self.service_rng.random() < prob:
                service += scale_s * float(self.service_rng.pareto(alpha))
        # Step 4: kernel overhead above the concurrency threshold.
        if cfg.enable_overhead and self.in_system > cfg.overhead_threshold:
            service *= cfg.overhead_factor
        # Steps 5-6: allocation, possibly forcing a full GC first.
        allocated = False
        if cfg.enable_gc and cfg.alloc_mb > 0.0:
            if self.free_heap_mb < cfg.gc_threshold_mb:
                self._run_gc()
            self.live_mb += cfg.alloc_mb
            allocated = True
        completion_time = now + service
        # A thread starting mid-GC stalls until the GC ends (only when
        # the stop-the-world variant is configured; the paper's default
        # delays running threads only).
        if cfg.gc_freezes_new_threads and now < self.gc_end:
            completion_time += self.gc_end - now
        job.completion_event = self.sim.schedule_at(
            completion_time, lambda j=job: self._on_completion(j), kind="done"
        )
        tracer = self._life_tracer
        if tracer is not None:
            tracer.emit(
                now,
                "request.service_start",
                self.name,
                index=job.index,
                wait_s=now - job.arrival_time,
                service_s=completion_time - now,
                free_heap_mb=self.free_heap_mb,
            )
        if allocated and self.on_allocation is not None:
            self.on_allocation(now, self.free_heap_mb)

    def _run_gc(self) -> None:
        """Full GC: reclaim garbage, stall every running thread."""
        cfg = self.config
        now = self.sim.now
        self.gc_count += 1
        if cfg.gc_pause_model == "proportional":
            # A collector whose pause tracks the amount reclaimed:
            # gc_pause_s is the cost of sweeping a completely full heap.
            pause = cfg.gc_pause_s * (self.garbage_mb / cfg.heap_mb)
        else:
            pause = cfg.gc_pause_s
        tracer = self._tracer
        if tracer is not None:
            tracer.emit(
                now,
                "system.gc",
                self.name,
                pause_s=pause,
                reclaimed_mb=self.garbage_mb,
                stalled_threads=len(self.in_service),
                gc_count=self.gc_count,
            )
        self.garbage_mb = 0.0
        self.gc_end = now + pause
        if pause <= 0.0:
            return
        self._delay_in_service(pause)

    def _delay_in_service(self, pause_s: float) -> int:
        """Push every in-service completion ``pause_s`` into the future."""
        delayed = 0
        for running in self.in_service:
            event = running.completion_event
            if event is None:  # pragma: no cover - defensive
                continue
            self.sim.cancel(event)
            running.completion_event = self.sim.schedule_at(
                event.time + pause_s,
                lambda j=running: self._on_completion(j),
                kind="done",
            )
            delayed += 1
        return delayed

    def _on_completion(self, job: Job) -> None:
        cfg = self.config
        # Break the job -> event -> callback -> job reference cycle so
        # the subgraph is freed by refcounting the moment the job
        # leaves; left in place, every completed transaction becomes
        # cyclic garbage only the tracing collector can reclaim, and
        # the collector passes it forces dominate at scale.
        job.completion_event = None
        self.in_service.pop(job, None)
        self.free_cpus += 1
        self.in_system -= 1
        if cfg.enable_gc and cfg.alloc_mb > 0.0:
            # The allocation leaks: reclaimed only by GC/rejuvenation.
            self.live_mb -= cfg.alloc_mb
            self.garbage_mb += cfg.alloc_mb
        response_time = self.sim.now - job.arrival_time
        # Step 7-8: hand the measurement to the owner, which may decide
        # to rejuvenate this node from inside the callback.
        self.on_complete(job, response_time)
        self.dispatch()

    # ------------------------------------------------------------------
    # Capacity restoration
    # ------------------------------------------------------------------
    def rejuvenate(self) -> int:
        """Kill executing work, release resources; return jobs lost.

        Honours ``config.rejuvenation_kills_queued`` for the queued
        transactions; surviving queued work re-enters service at once.
        """
        self.rejuvenations += 1
        in_service = len(self.in_service)
        lost = 0
        for job in self.in_service:
            if job.completion_event is not None:
                self.sim.cancel(job.completion_event)
                job.completion_event = None  # break the ref cycle
            self.on_loss(job)
            lost += 1
        self.in_system -= len(self.in_service)
        self.in_service.clear()
        if self.config.rejuvenation_kills_queued:
            for job in self.queue:
                self.on_loss(job)
                lost += 1
            self.in_system -= len(self.queue)
            self.queue.clear()
        self.free_cpus = self.config.cpus
        self.live_mb = 0.0
        self.garbage_mb = 0.0
        self.gc_end = self.sim.now  # an in-progress GC dies with the JVM
        tracer = self._tracer
        if tracer is not None:
            tracer.emit(
                self.sim.now,
                "system.rejuvenation",
                self.name,
                lost=lost,
                in_service=in_service,
                rejuvenations=self.rejuvenations,
            )
        self.dispatch()
        return lost

    # ------------------------------------------------------------------
    # Fault-injection surface
    # ------------------------------------------------------------------
    def stall(self, pause_s: float) -> int:
        """Transient GC-like stall: delay every running thread.

        Models a "false aging" blip (a lock convoy, a paging storm): the
        in-service completions are pushed ``pause_s`` into the future,
        exactly like a full GC, but nothing is reclaimed and no GC is
        counted.  Returns the number of threads stalled.  With the
        ``gc_freezes_new_threads`` ablation enabled, threads starting
        mid-stall are frozen too (the stall extends ``gc_end``).
        """
        if pause_s < 0:
            raise ValueError("stall duration must be non-negative")
        if pause_s == 0.0:
            return 0
        self.gc_end = max(self.gc_end, self.sim.now + pause_s)
        return self._delay_in_service(pause_s)

    def inject_garbage(self, mb: float) -> None:
        """Leak ``mb`` of garbage into the heap (aging acceleration).

        Unlike the per-transaction leak of step 5, injected garbage
        forces the full-GC check immediately, so the injector drives GC
        pressure even in configurations where ``alloc_mb`` is zero.
        """
        if mb < 0:
            raise ValueError("injected garbage must be non-negative")
        self.garbage_mb += mb
        if (
            self.config.enable_gc
            and self.free_heap_mb < self.config.gc_threshold_mb
        ):
            self._run_gc()

    def crash(self) -> int:
        """Abrupt node failure: every transaction in the node dies.

        Unlike :meth:`rejuvenate`, a crash is not a policy action -- it
        is not counted as a rejuvenation, and it always empties the
        queue (the process is gone, front-end tier included).  Resources
        come back released; the owner decides the restart downtime.
        Returns the number of transactions lost.
        """
        self.crashes += 1
        lost = 0
        for job in self.in_service:
            if job.completion_event is not None:
                self.sim.cancel(job.completion_event)
                job.completion_event = None  # break the ref cycle
            self.on_loss(job)
            lost += 1
        self.in_system -= len(self.in_service)
        self.in_service.clear()
        for job in self.queue:
            self.on_loss(job)
            lost += 1
        self.in_system -= len(self.queue)
        self.queue.clear()
        self.free_cpus = self.config.cpus
        self.live_mb = 0.0
        self.garbage_mb = 0.0
        self.gc_end = self.sim.now
        return lost

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ProcessingNode({self.name}: in_system={self.in_system}, "
            f"free_cpus={self.free_cpus})"
        )
