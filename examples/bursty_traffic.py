"""Bursts vs aging: what the multi-bucket design is for.

The paper's central design goal is "to distinguish between performance
degradation that occurs as a result of burstiness in the arrival
process and software degradation that occurs as a result of software
aging".  This example drives the e-commerce system with Markov-modulated
(bursty) traffic and compares:

* a naive single-observation threshold (Bobbio-style deterministic
  policy) -- rejuvenates on every burst;
* multi-bucket SRAA -- rides out the bursts, still catches the GC-driven
  aging.

Run:  python examples/bursty_traffic.py
"""

import dataclasses

from repro import (
    PAPER_CONFIG,
    PAPER_SLO,
    SRAA,
    DeterministicThreshold,
    run_once,
)
from repro.ecommerce.workload import MMPPArrivals

TRANSACTIONS = 12_000


def bursty_arrivals() -> MMPPArrivals:
    """Quiet 0.4/s traffic with 1.9/s bursts lasting ~2 min."""
    return MMPPArrivals(
        base_rate=0.4,
        burst_rate=1.9,
        mean_quiet_s=1_800.0,
        mean_burst_s=120.0,
    )


def run(policy, config=PAPER_CONFIG, seed=11):
    return run_once(
        config, bursty_arrivals(), policy, TRANSACTIONS, seed=seed
    )


def main() -> None:
    print(
        f"MMPP traffic: mean rate {bursty_arrivals().mean_rate():.3f}/s "
        f"with bursts to 1.9/s, {TRANSACTIONS} transactions\n"
    )
    contenders = [
        ("threshold > 15 s", DeterministicThreshold(15.0)),
        ("SRAA (3,5,1) multi-bucket", SRAA(PAPER_SLO, 3, 5, 1)),
        ("SRAA (15,1,1) single-bucket", SRAA(PAPER_SLO, 15, 1, 1)),
    ]
    header = f"{'policy':<28} {'avg RT':>7} {'loss':>8} {'rejuvenations':>14}"
    print(header)
    print("-" * len(header))
    for name, policy in contenders:
        result = run(policy)
        print(
            f"{name:<28} {result.avg_response_time:>7.2f} "
            f"{result.loss_fraction:>8.4f} {result.rejuvenations:>14d}"
        )

    # Same policies on a system that cannot age (GC disabled): a
    # burst-tolerant policy should now trigger (almost) never.
    print("\nSame traffic, aging disabled (no GC -- bursts are the only")
    print("source of long response times):")
    no_aging = dataclasses.replace(PAPER_CONFIG, enable_gc=False)
    for name, policy in [
        ("threshold > 15 s", DeterministicThreshold(15.0)),
        ("SRAA (3,5,1) multi-bucket", SRAA(PAPER_SLO, 3, 5, 1)),
    ]:
        result = run(policy, config=no_aging)
        print(
            f"{name:<28} {result.avg_response_time:>7.2f} "
            f"{result.loss_fraction:>8.4f} {result.rejuvenations:>14d}"
        )
    print(
        "\nReading: the naive threshold pays a rejuvenation for every "
        "burst even when nothing\nis wrong, while the multi-bucket chain "
        "requires a sustained multi-sigma shift."
    )


if __name__ == "__main__":
    main()
