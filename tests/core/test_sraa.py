"""SRAA against the Fig. 6 pseudo-code."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sla import ServiceLevelObjective
from repro.core.sraa import SRAA, StaticRejuvenation

SLO = ServiceLevelObjective(mean=5.0, std=5.0)


class TestBatching:
    def test_no_decision_until_batch_completes(self):
        policy = SRAA(SLO, sample_size=3, n_buckets=1, depth=1)
        assert policy.observe(100.0) is False
        assert policy.observe(100.0) is False
        # Third observation completes the batch; d -> 1 (not yet > D).
        assert policy.observe(100.0) is False

    def test_batch_mean_not_raw_value_is_compared(self):
        policy = SRAA(SLO, sample_size=2, n_buckets=1, depth=1)
        # One huge value smoothed out by a tiny one: mean 5.5 > 5, adds
        # a ball; two tiny: removes one.
        policy.observe(10.9)
        policy.observe(0.1)
        assert policy.chain.fill == 1
        policy.observe(0.1)
        policy.observe(0.1)
        assert policy.chain.fill == 0


class TestTargets:
    def test_target_grows_by_sigma_per_bucket(self):
        policy = SRAA(SLO, sample_size=1, n_buckets=3, depth=1)
        assert policy.current_target() == 5.0
        policy.observe(100.0)
        policy.observe(100.0)  # overflow -> bucket 1
        assert policy.level == 1
        assert policy.current_target() == 10.0

    def test_target_independent_of_sample_size(self):
        small = SRAA(SLO, sample_size=1, n_buckets=2, depth=1)
        large = SRAA(SLO, sample_size=30, n_buckets=2, depth=1)
        assert small.current_target() == large.current_target()


class TestTriggering:
    def test_min_delay_is_depth_plus_one_times_buckets_batches(self):
        policy = SRAA(SLO, sample_size=2, n_buckets=2, depth=1)
        observations = 0
        while True:
            observations += 1
            if policy.observe(100.0):
                break
        # (D+1) * K batches of n: (1+1)*2*2 = 8 observations.
        assert observations == 8

    def test_trigger_resets_policy(self):
        policy = SRAA(SLO, sample_size=1, n_buckets=1, depth=1)
        policy.observe(100.0)
        assert policy.observe(100.0) is True
        assert policy.level == 0
        assert policy.chain.fill == 0
        assert policy.buffer.pending == 0

    def test_low_values_never_trigger(self):
        policy = SRAA(SLO, sample_size=2, n_buckets=2, depth=2)
        assert policy.observe_many([1.0] * 500) == []

    def test_burst_tolerance_of_multiple_buckets(self):
        # A burst shorter than the climb cannot trigger a K=5 chain.
        policy = SRAA(SLO, sample_size=1, n_buckets=5, depth=3)
        burst = [100.0] * 10 + [1.0] * 40
        assert policy.observe_many(burst * 5) == []

    def test_reset_clears_partial_batch_and_chain(self):
        policy = SRAA(SLO, sample_size=3, n_buckets=2, depth=2)
        policy.observe(100.0)
        policy.observe(100.0)
        policy.observe(100.0)
        policy.observe(100.0)
        policy.reset()
        assert policy.level == 0
        assert policy.buffer.pending == 0


class TestValidationAndIntrospection:
    def test_invalid_sample_size(self):
        with pytest.raises(ValueError):
            SRAA(SLO, sample_size=0, n_buckets=1, depth=1)

    def test_describe(self):
        policy = SRAA(SLO, sample_size=2, n_buckets=5, depth=3)
        assert policy.describe() == "SRAA(n=2, K=5, D=3)"

    def test_name(self):
        assert SRAA(SLO, 1, 1, 1).name == "sraa"


class TestStaticRejuvenation:
    def test_is_sraa_with_n1(self):
        static = StaticRejuvenation(SLO, n_buckets=2, depth=3)
        assert static.sample_size == 1
        assert static.name == "static"
        assert static.describe() == "Static(K=2, D=3)"

    def test_behaves_like_sraa_n1(self):
        static = StaticRejuvenation(SLO, n_buckets=2, depth=1)
        twin = SRAA(SLO, sample_size=1, n_buckets=2, depth=1)
        values = [8.0, 2.0, 9.0, 9.0, 9.0, 9.0, 9.0, 1.0, 9.0, 9.0]
        assert static.observe_many(values) == twin.observe_many(values)


class TestStatisticalBehaviour:
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_property_trigger_implies_recent_exceedances(self, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        policy = SRAA(SLO, sample_size=2, n_buckets=2, depth=2)
        values = rng.exponential(5.0, size=400)
        for value in values:
            triggered = policy.observe(value)
            if triggered:
                # After a trigger the policy must be pristine.
                assert policy.level == 0
                assert policy.chain.fill == 0
