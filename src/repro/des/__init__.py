"""Discrete-event simulation engine.

A small, deterministic, from-scratch discrete-event kernel used as the
substrate for the e-commerce system model of the paper (Section 3).  It
provides:

* :class:`~repro.des.events.Event` and :class:`~repro.des.events.EventQueue`
  -- a time-ordered event heap with O(log n) scheduling and lazy
  cancellation, with FIFO tie-breaking for simultaneous events.
* :class:`~repro.des.engine.Simulator` -- the simulation clock and run loop.
* :class:`~repro.des.random_streams.RandomStreams` -- named, independent
  random-number substreams derived from a single seed, so that e.g. the
  arrival process and the service process draw from decoupled streams and
  experiments are reproducible.
"""

from repro.des.engine import Simulator, StopSimulation
from repro.des.events import Event, EventQueue
from repro.des.random_streams import RandomStreams

__all__ = [
    "Event",
    "EventQueue",
    "RandomStreams",
    "Simulator",
    "StopSimulation",
]
