"""Serving overhead: an attached SSE subscriber must not tax the run.

The ISSUE acceptance bound: a simulation with live telemetry being
*served* -- a ``ServeTap`` publishing into the broker, the HTTP server
up, and one real SSE subscriber consuming the stream over a socket --
must stay within 10% of the same simulation with the same telemetry
unserved (a plain ``LiveSpec``).  The baseline carries the full live
stack on both sides, so the ratio isolates the serving layer itself:
broker publishes, queue fan-out, and whatever scheduling pressure the
serving threads put on the simulation thread.

Methodology follows ``test_bench_live_overhead``: wall-clock noise on
a shared machine swings paired ratios far more than the effect under
test, so each round times unserved and served back-to-back and the
acceptance pin takes the **best paired round** -- the quietest-machine
bound on the systematic overhead -- with a small absolute slack so
sub-100ms baselines cannot flake on timer quantisation.

The serving layer stays a pure observer under load: the pin also
asserts the served runs' results are bit-identical to the unserved
ones (the broker's drop-oldest queues shed backpressure; the
simulation never waits).
"""

import threading
import time
import urllib.request

from conftest import BENCH_SEED, bench_scale

from repro.core.spec import PolicySpec
from repro.ecommerce.config import PAPER_CONFIG
from repro.ecommerce.runner import run_replications
from repro.ecommerce.spec import ArrivalSpec
from repro.obs.ledger import record_bench_point
from repro.obs.live import LiveSpec, RecorderSpec
from repro.serve import ReproServer, ServeSpec

#: Paired unserved/served rounds; the pin takes the quietest pair.
ROUNDS = 7

#: The acceptance bound: served vs unserved live telemetry.
OVERHEAD_FACTOR = 1.10

#: Absolute slack (s): sub-100ms baselines are dominated by noise.
ABSOLUTE_SLACK_S = 0.015

#: Completions between live.snapshot publishes while serving.
SNAPSHOT_EVERY = 1000


def _workload(live):
    scale = bench_scale()
    n = max(10_000, scale.transactions // 2)
    return run_replications(
        PAPER_CONFIG,
        arrival=ArrivalSpec.poisson(1.8),
        policy=PolicySpec.sraa(2, 5, 3),
        n_transactions=n,
        replications=2,
        seed=BENCH_SEED,
        live=live,
    )


def _timed(fn):
    started = time.perf_counter()
    result = fn()
    return time.perf_counter() - started, result


def _result_key(run):
    return (
        run.arrivals,
        run.completed,
        run.lost,
        run.avg_response_time,
        run.loss_fraction,
        run.rejuvenations,
        run.rejuvenation_times,
    )


def test_serve_overhead(benchmark):
    unserved_spec = LiveSpec(recorder=RecorderSpec(slo_s=30.0))
    server = ReproServer(port=0).start()
    served_spec = ServeSpec(
        recorder=RecorderSpec(slo_s=30.0),
        broker=server.broker,
        run_tag="bench",
        snapshot_every=SNAPSHOT_EVERY,
    )

    # One real SSE subscriber consuming the stream over a socket for
    # the benchmark's whole lifetime (generous timeout; closed by the
    # server teardown at the end).
    consumed = {"events": 0}

    def _consume():
        try:
            stream = urllib.request.urlopen(
                server.url + "/api/events?timeout_s=600", timeout=650
            )
            for line in stream:
                if line.startswith(b"event:"):
                    consumed["events"] += 1
        except Exception:
            pass  # server closed underneath us at teardown

    subscriber = threading.Thread(target=_consume, daemon=True)
    subscriber.start()
    time.sleep(0.2)  # let the subscriber attach before timing

    try:
        # Warm-up outside the timings (imports, allocator, sockets).
        _workload(unserved_spec)
        _workload(served_spec)

        pairs = []
        for _ in range(ROUNDS):
            base_s, base_result = _timed(
                lambda: _workload(unserved_spec)
            )
            served_s, served_result = _timed(
                lambda: _workload(served_spec)
            )
            pairs.append((base_s, served_s))
        base_s, served_s = min(
            pairs, key=lambda pair: pair[1] / pair[0]
        )

        # Serving must not perturb the simulation: bit-identical runs.
        assert [_result_key(r) for r in served_result.runs] == [
            _result_key(r) for r in base_result.runs
        ]
        # The stream really flowed end to end while we timed.
        assert server.broker.published > 0
        deadline = time.monotonic() + 10.0
        while consumed["events"] == 0 and time.monotonic() < deadline:
            time.sleep(0.05)
        assert consumed["events"] > 0
    finally:
        server.close()

    overhead = served_s / base_s if base_s else float("nan")
    benchmark.extra_info["unserved_s"] = round(base_s, 4)
    benchmark.extra_info["served_s"] = round(served_s, 4)
    benchmark.extra_info["serve_overhead_factor"] = round(overhead, 4)
    benchmark.extra_info["sse_events_consumed"] = consumed["events"]
    print(
        f"\nbest pair of {ROUNDS}: unserved live {base_s:.3f}s, "
        f"served+SSE-subscriber {served_s:.3f}s ({overhead:.2%} of "
        f"baseline); {consumed['events']} SSE events consumed"
    )
    record_bench_point(
        f"serve_overhead_{bench_scale().label}",
        round(overhead, 4),
        units="x",
        seed=BENCH_SEED,
    )

    # The acceptance pin: serving within 10% of unserved telemetry on
    # the quietest paired round.
    bound = base_s * OVERHEAD_FACTOR + ABSOLUTE_SLACK_S
    assert served_s <= bound, (
        f"serving costs {served_s:.3f}s vs unserved {base_s:.3f}s on "
        f"the quietest of {ROUNDS} paired rounds -- beyond the 10% "
        "acceptance bound"
    )

    # Keep pytest-benchmark's timing machinery fed with the cheap path.
    benchmark.pedantic(_workload, args=(None,), rounds=1, iterations=1)
