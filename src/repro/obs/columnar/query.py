"""One query interface over both trace representations.

``repro report``, ``repro explain``, offline re-scoring and ``repro
serve`` all ask the same questions of a trace: which runs does it
hold, what does each run's ``run.meta`` say, how many events of each
kind, where are the completions/faults/triggers, what do the
response-time percentiles look like over time.  This module gives
those questions one interface -- :class:`TraceQuery` / :class:`RunView`
-- with two implementations:

:class:`RecordsQuery`
    Wraps an already-parsed list of JSONL record dicts and answers by
    the exact scans the consumers used to inline.  This is the
    compatibility baseline: running a consumer through a
    ``RecordsQuery`` produces byte-identical output to the historical
    record-list code path.

:class:`ColumnarQuery`
    Wraps a :class:`~repro.obs.columnar.store.ColumnarTrace` and
    answers vectorized: counts are one ``bincount``, run grouping is
    one stable argsort, completions are a per-shape float gather, and
    windowed percentiles bin a million latencies without building a
    million dicts.  Sparse questions (the handful of fault/trigger
    records a narrative needs) decode just those rows.

Both implementations share filter semantics (``filtered``):
``run.meta`` records are always kept; other records must fall inside
``[since, until]`` and -- when ``kinds`` is given -- have a type that
equals a requested kind or extends it as a dotted prefix
(``fault`` matches ``fault.injected``).  Records with no type (flight
dumps) survive time filters but never a kind filter.

:func:`load_query` sniffs a path (JSONL or columnar, gz-transparent)
and returns the right implementation, which is all a CLI entry point
needs to become format-agnostic.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs.events import REQUEST_COMPLETE, RUN_META

from .store import ColumnarTrace, ENV_OPAQUE, TAG_FLOAT, TAG_INT

#: Bins used by the report percentile charts (must match the JSONL
#: path's histogram exactly -- see ``_binned_percentiles``).
DEFAULT_BINS = 60


def exact_percentile(ordered: Sequence[float], q: float) -> float:
    """Exact order-statistic percentile of a pre-sorted sequence.

    The rank is ``round(q * (n - 1))`` with Python's round-half-to-even
    -- the same statistic on either representation, bit for bit.
    """
    n = len(ordered)
    if not n:
        return 0.0
    rank = max(0, min(n - 1, round(q * (n - 1))))
    return ordered[int(rank)]


def _kind_matches(etype: str, kinds: Sequence[str]) -> bool:
    return any(
        etype == kind or etype.startswith(kind + ".") for kind in kinds
    )


def _keep_record(
    record: Dict[str, Any],
    since: Optional[float],
    until: Optional[float],
    kinds: Optional[Sequence[str]],
) -> bool:
    """The shared filter predicate (see the module docstring)."""
    if record.get("type") == RUN_META:
        return True
    ts = record.get("ts", 0.0)
    if not isinstance(ts, (int, float)) or isinstance(ts, bool):
        ts = 0.0
    if since is not None and ts < since:
        return False
    if until is not None and ts > until:
        return False
    if kinds is not None:
        etype = record.get("type")
        if not isinstance(etype, str) or not _kind_matches(etype, kinds):
            return False
    return True


def is_flight_dump(record: Dict[str, Any]) -> bool:
    """Flight-recorder dump line rather than a trace event?"""
    return (
        "type" not in record and "reason" in record and "events" in record
    )


# ---------------------------------------------------------------------------
# Records (dict list) implementation
# ---------------------------------------------------------------------------
class RecordsRunView:
    """One run's records, answered by plain scans."""

    __slots__ = ("run_id", "_records")

    def __init__(self, run_id: Any, records: List[Dict[str, Any]]) -> None:
        self.run_id = run_id
        self._records = records

    @property
    def meta(self) -> Optional[Dict[str, Any]]:
        return next(
            (r for r in self._records if r.get("type") == RUN_META), None
        )

    @property
    def n_records(self) -> int:
        return len(self._records)

    def counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for record in self._records:
            etype = record.get("type")
            if isinstance(etype, str):
                counts[etype] = counts.get(etype, 0) + 1
        return counts

    def records(
        self, types: Optional[Sequence[str]] = None
    ) -> List[Dict[str, Any]]:
        if types is None:
            return list(self._records)
        wanted = set(types)
        return [r for r in self._records if r.get("type") in wanted]

    def flight_dumps(self) -> List[Dict[str, Any]]:
        return [r for r in self._records if is_flight_dump(r)]

    def event_records(self) -> List[Dict[str, Any]]:
        """Everything that is not a flight dump (the event narrative)."""
        return [r for r in self._records if not is_flight_dump(r)]

    def ts_of(self, etype: str) -> List[float]:
        return [
            r["ts"] for r in self._records if r.get("type") == etype
        ]

    def max_ts(self) -> float:
        return max(
            (r.get("ts", 0.0) for r in self._records), default=1.0
        )

    def completions(self) -> Tuple[List[float], List[float]]:
        ts: List[float] = []
        rt: List[float] = []
        for record in self._records:
            if record.get("type") != REQUEST_COMPLETE:
                continue
            data = record.get("data", {})
            if "response_time" not in data:
                continue
            ts.append(record["ts"])
            rt.append(data["response_time"])
        return ts, rt

    def binned_percentiles(
        self, horizon: float, bins: int = DEFAULT_BINS
    ) -> List[Tuple[float, float, float]]:
        """``(bin_mid_ts, p50, p95)`` per non-empty time bin."""
        ts, rt = self.completions()
        if not ts or horizon <= 0.0:
            return []
        width = horizon / bins
        buckets: List[List[float]] = [[] for _ in range(bins)]
        for t, r in zip(ts, rt):
            buckets[min(bins - 1, int(t / width))].append(r)
        out = []
        for index, values in enumerate(buckets):
            if not values:
                continue
            values.sort()
            out.append(
                (
                    (index + 0.5) * width,
                    exact_percentile(values, 0.50),
                    exact_percentile(values, 0.95),
                )
            )
        return out


class RecordsQuery:
    """The record-list implementation (the JSONL compatibility path)."""

    def __init__(self, records: Sequence[Dict[str, Any]]) -> None:
        self._records = list(records)

    @property
    def n_records(self) -> int:
        return len(self._records)

    def records(self) -> List[Dict[str, Any]]:
        return list(self._records)

    def filtered(
        self,
        since: Optional[float] = None,
        until: Optional[float] = None,
        kinds: Optional[Sequence[str]] = None,
    ) -> "RecordsQuery":
        if since is None and until is None and kinds is None:
            return self
        return RecordsQuery(
            [
                r
                for r in self._records
                if _keep_record(r, since, until, kinds)
            ]
        )

    def run_views(self) -> List[RecordsRunView]:
        by_run: Dict[Any, List[Dict[str, Any]]] = {}
        for record in self._records:
            by_run.setdefault(record.get("run", 0), []).append(record)
        return [
            RecordsRunView(run_id, by_run[run_id])
            for run_id in sorted(
                by_run, key=lambda r: (str(type(r)), r)
            )
        ]

    def counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for record in self._records:
            etype = record.get("type")
            if isinstance(etype, str):
                counts[etype] = counts.get(etype, 0) + 1
        return counts

    def response_times(self) -> List[float]:
        out = []
        for record in self._records:
            if record.get("type") != REQUEST_COMPLETE:
                continue
            data = record.get("data", {})
            if "response_time" in data:
                out.append(data["response_time"])
        return out


# ---------------------------------------------------------------------------
# Columnar implementation
# ---------------------------------------------------------------------------
class ColumnarRunView:
    """One run's rows in a columnar trace, answered vectorized."""

    __slots__ = ("run_id", "_trace", "_rows")

    def __init__(
        self, run_id: Any, trace: ColumnarTrace, rows: np.ndarray
    ) -> None:
        self.run_id = run_id
        self._trace = trace
        self._rows = rows  # ascending row indices == original order

    @property
    def n_records(self) -> int:
        return int(self._rows.shape[0])

    @property
    def meta(self) -> Optional[Dict[str, Any]]:
        rows = self._type_rows((RUN_META,))
        if not rows.shape[0]:
            return None
        return self._trace.decode(int(rows[0]))

    def _type_rows(self, types: Sequence[str]) -> np.ndarray:
        trace = self._trace
        mask = trace.mask_of_types(types)[self._rows]
        return self._rows[mask]

    def counts(self) -> Dict[str, int]:
        counts = self._trace.counts_by_type(self._rows)
        # Rows with no type key (opaque flight dumps) are stored under
        # the empty type; the record path never counts them.
        counts.pop("", None)
        return counts

    def records(
        self, types: Optional[Sequence[str]] = None
    ) -> List[Dict[str, Any]]:
        rows = (
            self._rows if types is None else self._type_rows(types)
        )
        return list(self._trace.iter_records(rows))

    def flight_dumps(self) -> List[Dict[str, Any]]:
        trace = self._trace
        opaque = np.asarray(
            [
                trace.shape_table.shapes[sid][0] == ENV_OPAQUE
                for sid in range(len(trace.shapes))
            ],
            dtype=bool,
        )
        if not opaque.any():
            return []
        rows = self._rows[opaque[trace.shape_id[self._rows]]]
        return [
            record
            for record in trace.iter_records(rows)
            if is_flight_dump(record)
        ]

    def ts_of(self, etype: str) -> List[float]:
        return [float(t) for t in self._trace.ts[self._type_rows((etype,))]]

    def max_ts(self) -> float:
        if not self._rows.shape[0]:
            return 1.0
        return float(self._trace.ts[self._rows].max())

    def completions(self) -> Tuple[np.ndarray, np.ndarray]:
        rows = self._type_rows((REQUEST_COMPLETE,))
        rows, values = self._trace.field_float("response_time", rows)
        return self._trace.ts[rows], values

    def binned_percentiles(
        self, horizon: float, bins: int = DEFAULT_BINS
    ) -> List[Tuple[float, float, float]]:
        """Same statistic as the records path, vectorized.

        Bin assignment truncates ``ts / width`` exactly as ``int()``
        does for non-negative floats, and per-bin ranks use
        :func:`exact_percentile` over the same sorted values, so the
        chart a columnar trace renders is bit-identical to the chart
        its JSONL twin renders.
        """
        ts, rt = self.completions()
        if not ts.shape[0] or horizon <= 0.0:
            return []
        width = horizon / bins
        index = np.minimum(
            bins - 1, (ts / width).astype(np.int64)
        )
        order = np.argsort(index, kind="stable")
        index = index[order]
        values = rt[order]
        out = []
        starts = np.searchsorted(index, np.arange(bins), side="left")
        stops = np.searchsorted(index, np.arange(bins), side="right")
        for b in range(bins):
            chunk = values[starts[b] : stops[b]]
            if not chunk.shape[0]:
                continue
            chunk = np.sort(chunk)
            out.append(
                (
                    (b + 0.5) * width,
                    float(exact_percentile(chunk, 0.50)),
                    float(exact_percentile(chunk, 0.95)),
                )
            )
        return out


class ColumnarQuery:
    """The vectorized implementation over a :class:`ColumnarTrace`."""

    def __init__(
        self,
        trace: ColumnarTrace,
        rows: Optional[np.ndarray] = None,
    ) -> None:
        self.trace = trace
        self._rows = (
            np.arange(len(trace), dtype=np.int64) if rows is None else rows
        )

    @property
    def n_records(self) -> int:
        return int(self._rows.shape[0])

    def records(self) -> List[Dict[str, Any]]:
        return list(self.trace.iter_records(self._rows))

    def filtered(
        self,
        since: Optional[float] = None,
        until: Optional[float] = None,
        kinds: Optional[Sequence[str]] = None,
    ) -> "ColumnarQuery":
        if since is None and until is None and kinds is None:
            return self
        trace = self.trace
        rows = self._rows
        ts = trace.ts[rows]
        mask = np.ones(rows.shape[0], dtype=bool)
        if since is not None:
            mask &= ts >= since
        if until is not None:
            mask &= ts <= until
        if kinds is not None:
            keep_type = np.asarray(
                [_kind_matches(t, kinds) for t in trace.types],
                dtype=bool,
            )
            mask &= keep_type[trace.type_id[rows]]
        meta_mask = trace.mask_of_types((RUN_META,))[rows]
        mask |= meta_mask
        return ColumnarQuery(trace, rows[mask])

    def run_views(self) -> List[ColumnarRunView]:
        rows = self._rows
        runs = self.trace.run[rows]
        order = np.argsort(runs, kind="stable")
        sorted_rows = rows[order]
        sorted_runs = runs[order]
        run_ids = np.unique(sorted_runs)
        starts = np.searchsorted(sorted_runs, run_ids, side="left")
        stops = np.searchsorted(sorted_runs, run_ids, side="right")
        return [
            ColumnarRunView(
                int(run_id), self.trace, sorted_rows[start:stop]
            )
            for run_id, start, stop in zip(run_ids, starts, stops)
        ]

    def counts(self) -> Dict[str, int]:
        counts = self.trace.counts_by_type(self._rows)
        counts.pop("", None)
        return counts

    def response_times(self) -> np.ndarray:
        rows = self._rows[
            self.trace.mask_of_types((REQUEST_COMPLETE,))[self._rows]
        ]
        _rows, values = self.trace.field_float("response_time", rows)
        return values


# ---------------------------------------------------------------------------
# Loading
# ---------------------------------------------------------------------------
def as_query(source: Any) -> Any:
    """Whatever the caller holds, as a :class:`TraceQuery`.

    A list/tuple of record dicts becomes a :class:`RecordsQuery`; a
    :class:`ColumnarTrace` becomes a :class:`ColumnarQuery`; an
    existing query passes through.
    """
    if isinstance(source, (RecordsQuery, ColumnarQuery)):
        return source
    if isinstance(source, ColumnarTrace):
        return ColumnarQuery(source)
    return RecordsQuery(source)


def load_query(path: str) -> Any:
    """Load a trace file (either format, gz-transparent) as a query."""
    from repro.obs.exporters import read_jsonl

    from .io import read_columnar, sniff_format

    if sniff_format(path) == "columnar":
        return ColumnarQuery(read_columnar(path))
    return RecordsQuery(read_jsonl(path))
