"""Human-readable timelines from a trace: ``repro explain``.

The paper's industrial story is an *explainability* failure -- the
operators could not see why the system was degrading.  ``explain``
answers the converse question for our reproduction: for every
rejuvenation in a trace, *why did it fire?*  It joins each
``policy.trigger`` event back to the batch decision that caused it and
prints the bucket index, the batch mean, the active threshold and the
sample size, plus the bucket-climb path that led there.

Traces load through the shared query layer
(:mod:`repro.obs.columnar.query`), so JSONL and columnar files narrate
identically, and ``--since`` / ``--until`` / ``--kind`` filters slice
the timeline before narration (``run.meta`` headers always survive;
kind filters match a type exactly or as a dotted prefix, so ``fault``
keeps both ``fault.injected`` and ``fault.cleared``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.obs.columnar.query import as_query, load_query
from repro.obs.events import (
    FAULT_CLEARED,
    FAULT_INJECTED,
    MONITOR_TRIGGER,
    POLICY_LEVEL,
    POLICY_TRIGGER,
    REQUEST_COMPLETE,
    REQUEST_LOSS,
    SYSTEM_GC,
    SYSTEM_REJUVENATION,
)

#: The event types the per-run narrative loop walks, in trace order.
_NARRATIVE_TYPES = (
    POLICY_LEVEL,
    FAULT_INJECTED,
    FAULT_CLEARED,
    MONITOR_TRIGGER,
    POLICY_TRIGGER,
)

#: The machine-readable timeline walks the narrative types plus the
#: rejuvenations themselves (the prose narrative infers those from the
#: triggers; a downstream consumer should not have to).
_TIMELINE_TYPES = _NARRATIVE_TYPES + (SYSTEM_REJUVENATION,)


def event_record(
    ts: float,
    kind: str,
    detail: Optional[Dict[str, Any]] = None,
    run: Optional[Any] = None,
    source: Optional[str] = None,
) -> Dict[str, Any]:
    """One machine-readable timeline record.

    This is the shared evidence shape: ``repro explain --json`` emits
    it, and the sentinel alert engine attaches the same records as
    incident evidence, so a consumer parses one format everywhere.
    """
    record: Dict[str, Any] = {
        "record": "event",
        "ts": float(ts),
        "kind": kind,
        "detail": dict(detail) if detail else {},
    }
    if run is not None:
        record["run"] = run
    if source is not None:
        record["source"] = source
    return record


def _format_tag(tag: Any) -> str:
    if not tag:
        return ""
    return "(" + ", ".join(str(part) for part in tag) + ")"


def _summary_line(summary: Dict[str, Any]) -> str:
    parts = []
    for key, suffix in (
        ("arrivals", " arrivals"),
        ("completed", " completed"),
        ("lost", " lost"),
        ("gc_count", " GCs"),
        ("rejuvenations", " rejuvenations"),
    ):
        if key in summary:
            parts.append(f"{summary[key]:g}{suffix}")
    if "avg_response_time" in summary:
        parts.append(f"avg RT {summary['avg_response_time']:.3f}s")
    return ", ".join(parts)


def _format_cause(data: Dict[str, Any]) -> str:
    """A trigger's cause, whatever its shape.

    The paper's policies emit the classic batch-mean-vs-threshold
    cause; the :mod:`repro.detect` family emits free-form mappings
    (entropy/reference, projection/bound, ...).  Classic causes keep
    their historical phrasing; anything else is rendered generically
    as ``key=value`` pairs so no detector's evidence is dropped.
    """
    if "batch_mean" in data and "threshold" in data:
        return (
            f"bucket {data.get('level', 0)} overflowed; "
            f"batch mean {data.get('batch_mean', float('nan')):.3f}s > "
            f"threshold {data.get('threshold', float('nan')):.3f}s "
            f"(n={data.get('sample_size', '?')}"
        ) + (
            f", batch #{data['batch_seq']})"
            if "batch_seq" in data
            else ")"
        )
    pairs = []
    for key in sorted(data):
        if key == "batch_seq":
            continue
        value = data[key]
        if isinstance(value, float):
            pairs.append(f"{key}={value:.3f}")
        else:
            pairs.append(f"{key}={value}")
    return ", ".join(pairs) if pairs else "(no cause data)"


def _explain_run(view: Any) -> List[str]:
    lines: List[str] = []
    meta = view.meta
    header = f"run {view.run_id}"
    if meta is not None:
        tag = _format_tag(meta.get("tag"))
        if tag:
            header += f"  {tag}"
        if meta.get("seed") is not None:
            header += f"  seed={meta['seed']}"
    lines.append(header)
    if meta is not None:
        lines.append(f"  {_summary_line(meta.get('data', {}))}")

    counts: Dict[str, int] = view.counts()
    if counts.get(REQUEST_COMPLETE) or counts.get(REQUEST_LOSS):
        lines.append(
            f"  spans: {counts.get(REQUEST_COMPLETE, 0)} completions, "
            f"{counts.get(REQUEST_LOSS, 0)} losses, "
            f"{counts.get(SYSTEM_GC, 0)} GCs"
        )

    if not counts.get(POLICY_TRIGGER) and counts.get(SYSTEM_REJUVENATION):
        lines.append(
            f"  {counts[SYSTEM_REJUVENATION]} rejuvenation(s) recorded, "
            "but no policy decision events in this trace -- re-run with "
            "--trace-level decisions (or all) to see the causes"
        )
    climb: List[Dict[str, Any]] = []
    trigger_no = 0
    for record in view.records(types=_NARRATIVE_TYPES):
        etype = record["type"]
        if etype == POLICY_LEVEL:
            climb.append(record)
        elif etype in (FAULT_INJECTED, FAULT_CLEARED):
            data = record.get("data", {})
            kind = data.get("kind", "?")
            extras = ", ".join(
                f"{key}={value}"
                for key, value in data.items()
                if key != "kind"
            )
            verb = "cleared" if etype == FAULT_CLEARED else "injected"
            lines.append(
                f"  [t={record['ts']:12.3f}s] fault {verb}: {kind}"
                + (f" ({extras})" if extras else "")
            )
        elif etype == MONITOR_TRIGGER:
            data = record.get("data", {})
            lines.append(
                f"  [t={record['ts']:12.3f}s] monitor relayed trigger "
                f"(observation #{data.get('observation', '?')})"
            )
        elif etype == POLICY_TRIGGER:
            trigger_no += 1
            data = record.get("data", {})
            lines.append(
                f"  [t={record['ts']:12.3f}s] trigger #{trigger_no} by "
                f"{record.get('source', '?')}: {_format_cause(data)}"
            )
            ups = [c for c in climb if c.get("data", {}).get("direction") == "up"]
            if ups:
                path = ", ".join(
                    f"level {c['data'].get('level', '?')} @"
                    f"{c['ts']:.1f}s"
                    for c in ups
                )
                lines.append(f"      climb: {path}")
            climb = []
    if not counts.get(POLICY_TRIGGER) and not counts.get(SYSTEM_REJUVENATION):
        lines.append("  no rejuvenations in this run")
    return lines


def _explain_flight_run(
    run_id: Any, dumps: List[Dict[str, Any]]
) -> List[str]:
    lines = [f"run {run_id}  ({len(dumps)} flight dump(s))"]
    for dump_no, dump in enumerate(dumps, 1):
        events = dump.get("events", [])
        counts: Dict[str, int] = {}
        for event in events:
            counts[event["type"]] = counts.get(event["type"], 0) + 1
        if events:
            window = (
                f"t {events[0]['ts']:.1f}s..{events[-1]['ts']:.1f}s"
            )
        else:
            window = "empty ring"
        lines.append(
            f"  [t={dump['ts']:12.3f}s] dump #{dump_no}: "
            f"{dump['reason']} -- last {len(events)} events ({window})"
        )
        lines.append(
            f"      ring: {counts.get(REQUEST_COMPLETE, 0)} completions, "
            f"{counts.get(REQUEST_LOSS, 0)} losses, "
            f"{counts.get(SYSTEM_GC, 0)} GCs, "
            f"{counts.get(FAULT_INJECTED, 0)} faults injected"
        )
        trigger = next(
            (
                event
                for event in reversed(events)
                if event["type"] == POLICY_TRIGGER
            ),
            None,
        )
        if trigger is not None:
            data = {
                k: v
                for k, v in trigger.get("data", {}).items()
                if k != "batch_seq"
            }
            lines.append(f"      cause: {_format_cause(data)}")
    return lines


def timeline_records(query: Any) -> List[Dict[str, Any]]:
    """The decision/fault timeline as machine-readable records.

    Per run: one ``{"record": "run", ...}`` header (tag, seed, summary
    block), then one :func:`event_record` per narrative event in trace
    order, then one ``{"record": "flight_dump", ...}`` per recorder
    dump.  Identical for JSONL and ``.rcol`` traces (both load through
    the same query layer), pinned by ``tests/obs/test_explain_json.py``.
    """
    records: List[Dict[str, Any]] = []
    for view in query.run_views():
        meta = view.meta
        header: Dict[str, Any] = {
            "record": "run",
            "run": view.run_id,
            "events": view.n_records,
        }
        if meta is not None:
            tag = meta.get("tag")
            header["tag"] = list(tag) if tag else []
            header["seed"] = meta.get("seed")
            header["summary"] = dict(meta.get("data", {}))
        records.append(header)
        for record in view.records(types=_TIMELINE_TYPES):
            records.append(
                event_record(
                    record["ts"],
                    record["type"],
                    record.get("data", {}),
                    run=view.run_id,
                    source=record.get("source"),
                )
            )
        for dump in view.flight_dumps():
            records.append(
                {
                    "record": "flight_dump",
                    "run": view.run_id,
                    "ts": float(dump["ts"]),
                    "reason": dump["reason"],
                    "events": len(dump.get("events", [])),
                }
            )
    return records


def timeline_from_trace(
    path: str,
    since: Optional[float] = None,
    until: Optional[float] = None,
    kinds: Optional[Sequence[str]] = None,
) -> List[Dict[str, Any]]:
    """Load a trace file and return its machine-readable timeline."""
    query = load_query(path)
    if since is not None or until is not None or kinds:
        query = query.filtered(since=since, until=until, kinds=kinds)
    return timeline_records(query)


def explain_query(query: Any) -> str:
    """The explanation text for an already-built trace query."""
    views = query.run_views()
    lines: List[str] = [
        f"{query.n_records} trace records across {len(views)} run(s)",
        "",
    ]
    for view in views:
        dumps = view.flight_dumps()
        if view.n_records > len(dumps):
            lines.extend(_explain_run(view))
        if dumps:
            lines.extend(_explain_flight_run(view.run_id, dumps))
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def explain_records(
    records: List[Dict[str, Any]],
    since: Optional[float] = None,
    until: Optional[float] = None,
    kinds: Optional[Sequence[str]] = None,
) -> str:
    """The explanation text for already-loaded JSONL records.

    Accepts both record shapes the CLI can produce: per-event
    ``--trace`` lines and per-dump ``--flight`` lines (the two may even
    share a file; each run is explained with whichever narrative its
    records call for).  ``since``/``until``/``kinds`` narrow the
    timeline before narration; ``run.meta`` headers always survive.
    """
    query = as_query(records)
    if since is not None or until is not None or kinds:
        query = query.filtered(since=since, until=until, kinds=kinds)
    return explain_query(query)


def explain_trace(
    path: str,
    since: Optional[float] = None,
    until: Optional[float] = None,
    kinds: Optional[Sequence[str]] = None,
) -> str:
    """Load a trace file (JSONL or columnar) and explain it."""
    query = load_query(path)
    if query.n_records == 0:
        return f"{path}: empty trace\n"
    if since is not None or until is not None or kinds:
        query = query.filtered(since=since, until=until, kinds=kinds)
    return explain_query(query)
