"""Background campaign/simulation jobs behind the serve API.

``POST /api/campaigns`` lands here: the request parameters become a
:class:`Job`, a daemon thread runs the fault campaign (or one-off
simulation) over the **serial** backend -- determinism first; the
serving thread pool is for HTTP, not simulation fan-out -- with a
:class:`~repro.serve.tap.ServeSpec` attached so subscribers watch it
live, and the finished result is recorded into the run ledger exactly
the way the CLI records it (same manifest builders, same outcome
blocks).  Same seed, same parameters -> same manifest hash and the
same outcome block, byte for byte; pinned by
``tests/serve/test_serve_jobs.py``.

Execution is serialised through one manager-wide lock: jobs queue up
rather than interleave, so ledger entry ids stay sequential and two
submitted campaigns cannot contend for cores.  Status polling
(``GET /api/campaigns/<id>``) reads plain snapshots under the same
lock discipline -- the HTTP layer never touches live simulation state.
"""

from __future__ import annotations

import threading
import traceback
from datetime import datetime, timezone
from typing import Any, Dict, List, Optional

#: Job lifecycle states, in order.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: States a job can never leave.
TERMINAL_STATES = (DONE, FAILED, CANCELLED)


class JobCancelled(Exception):
    """Raised inside a job body when :meth:`JobManager.cancel` hit it."""


def _utc_now() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


class Job:
    """One background run: parameters in, status + ledger entry out."""

    __slots__ = (
        "id",
        "kind",
        "params",
        "status",
        "source",
        "scheduled_for",
        "submitted_utc",
        "started_utc",
        "finished_utc",
        "error",
        "summary",
        "entry_id",
        "manifest_hash",
        "cancel_requested",
    )

    def __init__(
        self,
        job_id: str,
        kind: str,
        params: Dict[str, Any],
        source: str = "api",
        scheduled_for: Optional[float] = None,
    ):
        self.id = job_id
        self.kind = kind
        self.params = params
        self.status = QUEUED
        #: Who asked for this job: ``"api"`` or ``"schedule:<name>"``.
        self.source = source
        #: Virtual-clock fire time for scheduler-launched jobs.
        self.scheduled_for = scheduled_for
        self.submitted_utc = _utc_now()
        self.started_utc: Optional[str] = None
        self.finished_utc: Optional[str] = None
        self.error: Optional[str] = None
        #: Small result digest (score rows / intervals), JSON-safe.
        self.summary: Optional[Dict[str, Any]] = None
        self.entry_id: Optional[str] = None
        self.manifest_hash: Optional[str] = None
        self.cancel_requested = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "id": self.id,
            "kind": self.kind,
            "params": self.params,
            "status": self.status,
            "source": self.source,
            "scheduled_for": self.scheduled_for,
            "submitted_utc": self.submitted_utc,
            "started_utc": self.started_utc,
            "finished_utc": self.finished_utc,
            "error": self.error,
            "summary": self.summary,
            "entry_id": self.entry_id,
            "manifest_hash": self.manifest_hash,
        }


class JobManager:
    """Submission, execution and status of background serve jobs."""

    def __init__(self, broker: Any = None, ledger_dir: Optional[str] = None):
        self.broker = broker
        self.ledger_dir = ledger_dir
        self._lock = threading.Lock()
        #: Serialises actual simulation work across job threads.
        self._run_lock = threading.Lock()
        self._jobs: List[Job] = []
        self._counter = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def jobs(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [job.to_dict() for job in self._jobs]

    def get(self, job_id: str) -> Dict[str, Any]:
        with self._lock:
            for job in self._jobs:
                if job.id == job_id:
                    return job.to_dict()
        raise LookupError(f"no job {job_id!r}")

    def wait(self, job_id: str, timeout_s: float = 60.0) -> Dict[str, Any]:
        """Block until the job leaves the queued/running states."""
        import time

        deadline = time.monotonic() + timeout_s
        while True:
            snapshot = self.get(job_id)
            if snapshot["status"] in TERMINAL_STATES:
                return snapshot
            if time.monotonic() >= deadline:
                return snapshot
            time.sleep(0.02)

    def has_active(self, source: Optional[str] = None) -> bool:
        """True while any (matching) job is queued or running."""
        with self._lock:
            return any(
                job.status in (QUEUED, RUNNING)
                and (source is None or job.source == source)
                for job in self._jobs
            )

    # ------------------------------------------------------------------
    # Cancellation
    # ------------------------------------------------------------------
    def cancel(self, job_id: str) -> Dict[str, Any]:
        """Request cancellation; returns the job's current snapshot.

        A queued job flips to ``cancelled`` the moment its thread wins
        the run lock (it never starts simulating).  A running campaign
        aborts between replication jobs via the progress hook -- partial
        results are discarded and nothing is ledger-recorded.  Jobs
        already terminal are left untouched.
        """
        with self._lock:
            for job in self._jobs:
                if job.id == job_id:
                    if job.status not in TERMINAL_STATES:
                        job.cancel_requested = True
                    break
            else:
                raise LookupError(f"no job {job_id!r}")
        return self.get(job_id)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit_campaign(
        self,
        params: Dict[str, Any],
        source: str = "api",
        scheduled_for: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Validate and launch a fault campaign; returns the job dict.

        Accepted parameters (all optional except none):

        ``scenarios``  "all", a CSV string, or a list of zoo names
        ``policies``   CSV string or list (default "SRAA,SARAA,CLTA")
        ``replications``  per-cell replications (default 2)
        ``seed``       campaign master seed (default 0)
        ``horizon``    scenario horizon in simulated seconds (default 900)
        ``slo``        response-time SLO in seconds (flight-dump trigger)

        Raises ``ValueError`` on anything unresolvable -- the HTTP
        layer maps that to a 400 *before* a job is created.
        """
        normalised = self._validate_campaign(params)
        job = self._new_job(
            "campaign", normalised, source=source, scheduled_for=scheduled_for
        )
        thread = threading.Thread(
            target=self._execute,
            args=(job, self._run_campaign),
            name=f"serve-job-{job.id}",
            daemon=True,
        )
        thread.start()
        return job.to_dict()

    def _new_job(
        self,
        kind: str,
        params: Dict[str, Any],
        source: str = "api",
        scheduled_for: Optional[float] = None,
    ) -> Job:
        with self._lock:
            self._counter += 1
            job = Job(
                f"job-{self._counter:04d}",
                kind,
                params,
                source=source,
                scheduled_for=scheduled_for,
            )
            self._jobs.append(job)
        return job

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    @staticmethod
    def _validate_campaign(params: Dict[str, Any]) -> Dict[str, Any]:
        from repro.faults.campaign import resolve_policies
        from repro.faults.zoo import scenario_names

        if not isinstance(params, dict):
            raise ValueError("campaign parameters must be a JSON object")
        known = {
            "scenarios", "policies", "replications", "seed", "horizon",
            "slo",
        }
        unknown = set(params) - known
        if unknown:
            raise ValueError(
                f"unknown campaign parameter(s): {sorted(unknown)}"
            )
        scenarios = params.get("scenarios", "all")
        if isinstance(scenarios, str):
            scenarios = (
                list(scenario_names())
                if scenarios == "all"
                else [s.strip() for s in scenarios.split(",") if s.strip()]
            )
        if not isinstance(scenarios, list) or not scenarios:
            raise ValueError("scenarios must be 'all', a CSV, or a list")
        valid = set(scenario_names())
        for name in scenarios:
            if name not in valid:
                raise ValueError(
                    f"unknown scenario {name!r}; "
                    f"known: {', '.join(sorted(valid))}"
                )
        policies = params.get("policies", "SRAA,SARAA,CLTA")
        if isinstance(policies, list):
            policies = ",".join(policies)
        resolve_policies(policies)  # raises ValueError on bad names
        replications = int(params.get("replications", 2))
        if replications < 1:
            raise ValueError("replications must be >= 1")
        horizon = float(params.get("horizon", 900.0))
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        slo = params.get("slo")
        return {
            "scenarios": scenarios,
            "policies": policies,
            "replications": replications,
            "seed": int(params.get("seed", 0)),
            "horizon": horizon,
            "slo": None if slo is None else float(slo),
        }

    #: Public alias -- the scheduler validates specs at add time so a
    #: bad schedule is a 400 at POST, not a failed job at tick time.
    validate_campaign = _validate_campaign

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _execute(self, job: Job, body) -> None:
        with self._run_lock:
            with self._lock:
                if job.cancel_requested:
                    # Cancelled while queued: never starts simulating.
                    job.status = CANCELLED
                    job.finished_utc = _utc_now()
                    cancelled_in_queue = True
                else:
                    job.status = RUNNING
                    job.started_utc = _utc_now()
                    cancelled_in_queue = False
            if cancelled_in_queue:
                if self.broker is not None:
                    self.broker.publish(
                        "job.finished",
                        {"job": job.id, "status": CANCELLED, "entry_id": None},
                    )
                return
            if self.broker is not None:
                self.broker.publish("job.started", {"job": job.id})
            try:
                body(job)
            except JobCancelled:
                with self._lock:
                    job.status = CANCELLED
                    job.finished_utc = _utc_now()
            except Exception as error:  # noqa: BLE001 - reported via API
                with self._lock:
                    job.status = FAILED
                    job.error = f"{type(error).__name__}: {error}"
                    job.finished_utc = _utc_now()
                traceback.print_exc()
            else:
                with self._lock:
                    job.status = DONE
                    job.finished_utc = _utc_now()
            if self.broker is not None:
                snapshot = self.get(job.id)
                self.broker.publish(
                    "job.finished",
                    {
                        "job": job.id,
                        "status": snapshot["status"],
                        "entry_id": snapshot["entry_id"],
                    },
                )

    def _run_campaign(self, job: Job) -> None:
        from repro.exec.backends import SerialBackend
        from repro.faults.campaign import resolve_policies, run_campaign
        from repro.faults.zoo import get_scenario
        from repro.obs.ledger import (
            Ledger,
            campaign_manifest,
            campaign_outcomes,
        )
        from repro.obs.live import RecorderSpec
        from repro.serve.tap import ServeSpec

        params = job.params
        scenarios = [
            get_scenario(name, params["horizon"])
            for name in params["scenarios"]
        ]
        policies = resolve_policies(params["policies"])
        live = ServeSpec(
            recorder=RecorderSpec(slo_s=params["slo"]),
            broker=self.broker,
            run_tag=job.id,
        )
        import time

        def _abort_on_cancel(event: Any) -> None:
            # Runs between replication jobs on the serial backend; a
            # cancel lands at the next job boundary, never mid-run.
            if job.cancel_requested:
                raise JobCancelled(job.id)

        started = time.perf_counter()
        campaign = run_campaign(
            scenarios=scenarios,
            policies=policies,
            replications=params["replications"],
            seed=params["seed"],
            backend=SerialBackend(),
            live=live,
            progress=_abort_on_cancel,
        )
        wall_clock_s = time.perf_counter() - started
        manifest = campaign_manifest(
            scenarios,
            policies,
            params["replications"],
            params["seed"],
            backend=SerialBackend(),
        )
        entry = Ledger(self.ledger_dir).append(
            manifest,
            campaign_outcomes(campaign),
            {"wall_clock_s": wall_clock_s},
        )
        with self._lock:
            job.entry_id = entry["id"]
            job.manifest_hash = entry["manifest"]["manifest_hash"]
            job.summary = {
                "table": campaign.format_table(),
                "scores": [
                    {
                        "scenario": score.scenario,
                        "policy": score.policy,
                        "detected": score.detected,
                        "missed": score.missed,
                        "false_alarms": score.false_alarms,
                        "mean_loss_fraction": score.mean_loss_fraction,
                        "mean_response_time_s": score.mean_response_time_s,
                    }
                    for score in campaign.scores
                ],
            }
