"""Contents of the analytical experiments (paper-value checks)."""

import math

import pytest

from repro.experiments.analytical import (
    run_false_alarm,
    run_fig05,
    run_mmc_baseline,
)
from repro.experiments.scale import Scale

SCALE = Scale.smoke()


class TestFig05:
    def test_panel_per_sample_size_plus_summary(self):
        result = run_fig05(SCALE)
        assert len(result.tables) == 5  # n = 1, 5, 15, 30 + summary

    def test_exact_density_approaches_normal(self):
        result = run_fig05(SCALE)
        summary = result.tables[-1]
        sup = summary.get_series("sup |f_exact - f_normal|")
        assert sup.value_at(1) > sup.value_at(5) > sup.value_at(30)

    def test_panel_densities_are_nonnegative(self):
        result = run_fig05(SCALE)
        panel = result.tables[0]
        for series in panel.series:
            assert all(v >= -1e-12 for v in series.points.values())


class TestFalseAlarm:
    def test_paper_values(self):
        result = run_false_alarm(SCALE)
        exact = result.tables[0].get_series("exact tail [eq. 4 chain]")
        assert exact.value_at(15) == pytest.approx(0.0369, abs=0.0005)
        assert exact.value_at(30) == pytest.approx(0.0337, abs=0.0005)

    def test_all_above_nominal(self):
        result = run_false_alarm(SCALE)
        exact = result.tables[0].get_series("exact tail [eq. 4 chain]")
        assert all(v > 0.025 for v in exact.points.values())


class TestMMcBaseline:
    def test_flat_at_five_below_one_per_second(self):
        result = run_mmc_baseline(SCALE)
        mean = result.tables[0].get_series("E[RT] (eq. 2)")
        for load in (0.5, 1, 2, 3, 4):
            assert mean.value_at(load) == pytest.approx(5.0, abs=0.01)

    def test_diverges_at_high_load(self):
        result = run_mmc_baseline(SCALE)
        mean = result.tables[0].get_series("E[RT] (eq. 2)")
        assert mean.value_at(15) > 5.5

    def test_std_tracks_mean_shape(self):
        result = run_mmc_baseline(SCALE)
        std = result.tables[0].get_series("sd[RT] (sqrt eq. 3)")
        assert std.value_at(0.5) == pytest.approx(5.0, abs=0.01)
        assert std.value_at(15) > std.value_at(0.5)
