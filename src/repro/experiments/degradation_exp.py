"""Slow-drift study on the eroding-capacity substrate (beyond the paper).

Runs the ref.-[3] degradable system (capacity erodes stochastically,
rejuvenation restores it) under Poisson traffic at several erosion
speeds, for the three detector families suited to slow drift: bucket
(SRAA), trend (Mann-Kendall), and CUSUM.  Complements the e-commerce
experiments, whose degradation is abrupt (GC stalls): a detector that
shines there may lag here and vice versa.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro.core.base import RejuvenationPolicy
from repro.core.control_charts import CUSUMPolicy
from repro.core.sla import ServiceLevelObjective
from repro.core.sraa import SRAA
from repro.core.trend import TrendPolicy
from repro.degradation.system import DegradableSystem
from repro.ecommerce.workload import PoissonArrivals
from repro.experiments.scale import Scale
from repro.experiments.tables import ExperimentResult, Series, Table

#: The degradable exchange: 8 workers, mean service 2 s, load 4 Erlangs.
C_MAX = 8
SERVICE_RATE = 0.5
ARRIVAL_RATE = 2.0
MIN_CAPACITY = 2
SLO = ServiceLevelObjective(mean=2.0, std=2.0)

#: Mean seconds between capacity erosions (x axis: fast -> slow aging).
EROSION_PERIODS_S: Tuple[float, ...] = (60.0, 180.0, 600.0)


def detector_families():
    """(label, fresh-policy factory) for the slow-drift contenders."""
    return [
        ("none", lambda: None),
        ("SRAA(2,3,3)", lambda: SRAA(SLO, 2, 3, 3)),
        ("trend(10,10)", lambda: TrendPolicy(sample_size=10, window=10)),
        ("CUSUM(.5,5)", lambda: CUSUMPolicy(SLO)),
    ]


def run_degradation(scale: Scale, seed: int = 0) -> ExperimentResult:
    """Sweep erosion speed x detector family."""
    rt_table = Table(
        title="Degradable system: average response time vs erosion period",
        x_label="erosion_period_s",
        y_label="avg_response_time_s",
    )
    loss_table = Table(
        title="Degradable system: loss fraction vs erosion period",
        x_label="erosion_period_s",
        y_label="loss_fraction",
    )
    for label, factory in detector_families():
        rt_series = Series(label=label)
        loss_series = Series(label=label)
        for period in EROSION_PERIODS_S:
            totals_rt = 0.0
            totals_loss = 0.0
            for replication in range(scale.replications):
                system = DegradableSystem(
                    c_max=C_MAX,
                    service_rate=SERVICE_RATE,
                    degradation_rate=1.0 / period,
                    min_capacity=MIN_CAPACITY,
                    arrivals=PoissonArrivals(ARRIVAL_RATE),
                    policy=factory(),
                    seed=seed + replication,
                )
                result = system.run(scale.transactions)
                totals_rt += result.avg_response_time
                totals_loss += result.loss_fraction
            rt_series.add(period, totals_rt / scale.replications)
            loss_series.add(period, totals_loss / scale.replications)
        rt_table.add_series(rt_series)
        loss_table.add_series(loss_series)
    return ExperimentResult(
        experiment_id="degradation",
        description=(
            "Detector families on the eroding-capacity substrate of "
            "ref. [3] (beyond the paper)"
        ),
        tables=[rt_table, loss_table],
        paper_expectations=[
            "expected shape: unmanaged response times blow up once "
            "capacity erodes below the offered load; every detector "
            "family controls the drift, trading loss for response time "
            "in its own way",
            "faster erosion (smaller period) needs more rejuvenations "
            "and costs more everywhere",
        ],
    )
