"""Time-to-absorption analysis of a CTMC.

The paper's response time (Fig. 3) and the average of ``n`` response times
(Fig. 4) are both times to absorption in small CTMCs; SHARPE was used to
evaluate them.  :class:`AbsorbingCTMC` provides the same analysis: the
cdf of the absorption time is the transient probability of the absorbing
set, the pdf is the probability flux into it, and expected absorption
times come from one linear solve against the transient subgenerator.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np
from scipy.linalg import solve

from repro.ctmc.chain import CTMC


class AbsorbingCTMC:
    """A CTMC with at least one absorbing state.

    Parameters
    ----------
    chain:
        The underlying chain; must contain at least one absorbing state.
    initial:
        Initial distribution (defaults to mass 1 on state 0).
    """

    def __init__(
        self, chain: CTMC, initial: Optional[Sequence[float]] = None
    ) -> None:
        self.chain = chain
        absorbing = chain.absorbing_states()
        if not absorbing:
            raise ValueError("chain has no absorbing state")
        self.absorbing: Tuple[int, ...] = absorbing
        self.transient_states: Tuple[int, ...] = tuple(
            i for i in range(chain.n_states) if i not in set(absorbing)
        )
        if not self.transient_states:
            raise ValueError("chain has no transient state")
        if initial is None:
            p0 = np.zeros(chain.n_states)
            p0[0] = 1.0
        else:
            p0 = np.asarray(initial, dtype=float)
            if p0.shape != (chain.n_states,):
                raise ValueError("initial distribution has the wrong length")
            if abs(float(p0.sum()) - 1.0) > 1e-9 or np.any(p0 < -1e-12):
                raise ValueError("initial vector must be a distribution")
        if any(p0[i] > 0 for i in self.absorbing):
            raise ValueError("initial mass on an absorbing state")
        self.p0 = np.clip(p0, 0.0, None)
        idx = np.asarray(self.transient_states)
        self._T = chain.Q[np.ix_(idx, idx)]
        self._alpha = self.p0[idx]
        # Flux into the absorbing set from each transient state.
        abs_idx = np.asarray(self.absorbing)
        self._t0 = chain.Q[np.ix_(idx, abs_idx)].sum(axis=1)

    # ------------------------------------------------------------------
    def cdf(self, t: float, method: str = "uniformization") -> float:
        """``P(absorbed by time t)``."""
        if t < 0:
            return 0.0
        p_t = self.chain.transient(self.p0, t, method=method)
        return float(sum(p_t[i] for i in self.absorbing))

    def sf(self, t: float, method: str = "uniformization") -> float:
        """``P(still transient at time t)``."""
        return 1.0 - self.cdf(t, method=method)

    def pdf(self, t: float, method: str = "uniformization") -> float:
        """Density of the absorption time: probability flux into absorption.

        This is the paper's equation (4) specialised to its Fig. 4 chain:
        ``f(t) = sum_i p_i(t) * (rate from i into the absorbing set)``.
        """
        if t < 0:
            return 0.0
        p_t = self.chain.transient(self.p0, t, method=method)
        idx = np.asarray(self.transient_states)
        return float(p_t[idx] @ self._t0)

    def mean_time_to_absorption(self) -> float:
        """Expected absorption time: ``-alpha T^{-1} 1``."""
        ones = np.ones(len(self.transient_states))
        return float(-self._alpha @ solve(self._T, ones))

    def moment(self, k: int) -> float:
        """``k``-th raw moment of the absorption time."""
        if k < 0:
            raise ValueError("moment order must be non-negative")
        if k == 0:
            return 1.0
        vec = np.ones(len(self.transient_states))
        factorial = 1.0
        for j in range(1, k + 1):
            vec = solve(self._T, vec)
            factorial *= j
        sign = 1.0 if k % 2 == 0 else -1.0
        return float(sign * factorial * self._alpha @ vec)

    def var(self) -> float:
        """Variance of the absorption time."""
        mean = self.moment(1)
        return self.moment(2) - mean * mean

    def quantile(self, q: float, method: str = "uniformization") -> float:
        """Inverse of :meth:`cdf` by bracketing bisection."""
        if not 0.0 < q < 1.0:
            raise ValueError("quantile level must lie in (0, 1)")
        low, high = 0.0, max(self.mean_time_to_absorption(), 1e-12)
        while self.cdf(high, method=method) < q:
            high *= 2.0
            if high > 1e12:  # pragma: no cover - defensive
                raise ArithmeticError("quantile search failed to bracket")
        for _ in range(100):
            mid = 0.5 * (low + high)
            if self.cdf(mid, method=method) < q:
                low = mid
            else:
                high = mid
        return 0.5 * (low + high)
