"""The fault-campaign experiment: policy robustness beyond GC aging.

Runs the built-in scenario zoo (:mod:`repro.faults.zoo`) against the
paper's three contenders at their Section-5.6 parameters and reports
the robustness scores as figure-style tables: detection latency,
false alarms per healthy hour, and recovery cost per scenario.  The
scenario horizon scales with the experiment
:class:`~repro.experiments.scale.Scale` (smoke: 10 simulated minutes,
quick: 15, paper: a full hour).
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.scale import Scale
from repro.experiments.tables import ExperimentResult, Series, Table
from repro.faults.campaign import run_campaign
from repro.faults.zoo import builtin_scenarios

#: Scale label -> scenario horizon in simulated seconds.
_HORIZONS: Dict[str, float] = {
    "smoke": 600.0,
    "quick": 900.0,
    "paper": 3600.0,
}


def horizon_for_scale(scale: Scale) -> float:
    """The scenario horizon matching an experiment scale."""
    return _HORIZONS.get(scale.label, _HORIZONS["quick"])


def run_faults(scale: Scale, seed: int = 0) -> ExperimentResult:
    """The robustness campaign as a registry experiment."""
    horizon_s = horizon_for_scale(scale)
    scenarios = list(builtin_scenarios(horizon_s).values())
    campaign = run_campaign(
        scenarios=scenarios,
        replications=scale.replications,
        seed=seed,
    )
    index_of = {s.name: float(i) for i, s in enumerate(scenarios)}
    notes = [
        f"x = {i:g}: {s.name} -- {s.description}"
        for i, s in enumerate(scenarios)
    ] + [
        f"horizon {horizon_s:g} s, {scale.replications} replication(s) "
        f"per cell, CRN seeds from {seed}"
    ]
    latency = Table(
        title="Fault campaign: mean detection latency (s)",
        x_label="scenario",
        y_label="latency_s",
        notes=list(notes),
    )
    alarms = Table(
        title="Fault campaign: false alarms per healthy hour",
        x_label="scenario",
        y_label="false_alarms_per_healthy_hour",
        notes=list(notes),
    )
    cost = Table(
        title="Fault campaign: recovery cost (loss fraction)",
        x_label="scenario",
        y_label="loss_fraction",
        notes=list(notes),
    )
    series: Dict[str, Dict[str, Series]] = {}
    for score in campaign.scores:
        per_policy = series.setdefault(score.policy, {})
        if not per_policy:
            per_policy["latency"] = Series(label=score.policy)
            per_policy["alarms"] = Series(label=score.policy)
            per_policy["cost"] = Series(label=score.policy)
            latency.add_series(per_policy["latency"])
            alarms.add_series(per_policy["alarms"])
            cost.add_series(per_policy["cost"])
        x = index_of[score.scenario]
        if score.mean_detection_latency_s is not None:
            per_policy["latency"].add(x, score.mean_detection_latency_s)
        per_policy["alarms"].add(x, score.false_alarms_per_healthy_hour)
        per_policy["cost"].add(x, score.mean_loss_fraction)
    return ExperimentResult(
        experiment_id="faults",
        description=(
            "Robustness of SRAA/SARAA/CLTA across the adversarial "
            "scenario zoo"
        ),
        tables=[latency, alarms, cost],
        paper_expectations=[
            "SRAA and SARAA ride out the false-aging blips, the "
            "traffic surge and the workload shift without false "
            "alarms; CLTA's single-test rule pays in false alarms "
            "(the Section-5.1 burst-tolerance design intent)",
            "every policy detects the genuine x3 slowdown; CLTA "
            "detects it fastest but at the highest loss, SRAA slowest "
            "at the lowest loss -- the latency/cost trade the paper "
            "prices across its figures",
        ],
    )
