"""Arrival processes for the e-commerce model.

The paper drives its simulation with a Poisson process (step 1 of the
Section-3 model).  Because the whole point of the multi-bucket design is
to *distinguish bursts of arrivals from software aging*, this module also
provides bursty (Markov-modulated Poisson) and periodic (sinusoidally
modulated Poisson, the telecom traffic of [3]) processes, plus trace
replay, so that burst tolerance can actually be exercised.
"""

from __future__ import annotations

import abc
import math
from typing import Sequence

import numpy as np


class ArrivalProcess(abc.ABC):
    """A stateful source of inter-arrival times."""

    @abc.abstractmethod
    def interarrival(self, rng: np.random.Generator) -> float:
        """Draw the time until the next arrival (seconds, ``>= 0``)."""

    @abc.abstractmethod
    def mean_rate(self) -> float:
        """Long-run average arrival rate (transactions/second)."""

    def reset(self) -> None:
        """Return to the initial state (default: stateless no-op)."""


class PoissonArrivals(ArrivalProcess):
    """Homogeneous Poisson arrivals -- the paper's workload.

    Parameters
    ----------
    rate:
        Arrival rate ``lambda`` in transactions/second.
    """

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ValueError("arrival rate must be positive")
        self.rate = float(rate)

    def interarrival(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(1.0 / self.rate))

    def mean_rate(self) -> float:
        return self.rate

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PoissonArrivals(rate={self.rate:g})"


class MMPPArrivals(ArrivalProcess):
    """Two-state Markov-modulated Poisson process (bursty traffic).

    The process alternates between a *quiet* state with rate
    ``base_rate`` and a *burst* state with rate ``burst_rate``; sojourn
    times in each state are exponential.  Used to check that multi-bucket
    configurations tolerate bursts without rejuvenating (Section 5.1's
    design intent).

    Parameters
    ----------
    base_rate, burst_rate:
        Arrival rates in the two states.
    mean_quiet_s, mean_burst_s:
        Mean sojourn times of the quiet and burst states.
    """

    def __init__(
        self,
        base_rate: float,
        burst_rate: float,
        mean_quiet_s: float,
        mean_burst_s: float,
    ) -> None:
        if min(base_rate, burst_rate) <= 0:
            raise ValueError("both arrival rates must be positive")
        if min(mean_quiet_s, mean_burst_s) <= 0:
            raise ValueError("both sojourn means must be positive")
        self.base_rate = float(base_rate)
        self.burst_rate = float(burst_rate)
        self.mean_quiet_s = float(mean_quiet_s)
        self.mean_burst_s = float(mean_burst_s)
        self._in_burst = False
        self._sojourn_left = 0.0

    def reset(self) -> None:
        self._in_burst = False
        self._sojourn_left = 0.0

    def _current_rate(self) -> float:
        return self.burst_rate if self._in_burst else self.base_rate

    def _mean_sojourn(self) -> float:
        return self.mean_burst_s if self._in_burst else self.mean_quiet_s

    def interarrival(self, rng: np.random.Generator) -> float:
        """Race the next arrival against state switches.

        In each state, the candidate arrival is exponential at the state
        rate; if the residual sojourn expires first, the process switches
        state and keeps accumulating elapsed time (the memorylessness of
        the exponential makes re-drawing after a switch exact).
        """
        elapsed = 0.0
        while True:
            if self._sojourn_left <= 0.0:
                self._sojourn_left = float(
                    rng.exponential(self._mean_sojourn())
                )
            candidate = float(rng.exponential(1.0 / self._current_rate()))
            if candidate < self._sojourn_left:
                self._sojourn_left -= candidate
                return elapsed + candidate
            elapsed += self._sojourn_left
            self._in_burst = not self._in_burst
            self._sojourn_left = 0.0

    def mean_rate(self) -> float:
        """Time-weighted average of the two state rates."""
        total = self.mean_quiet_s + self.mean_burst_s
        return (
            self.base_rate * self.mean_quiet_s
            + self.burst_rate * self.mean_burst_s
        ) / total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MMPPArrivals(base={self.base_rate:g}, burst={self.burst_rate:g})"
        )


class PeriodicArrivals(ArrivalProcess):
    """Sinusoidally modulated Poisson arrivals (telecom daily cycle).

    Rate at clock time ``t`` is
    ``base_rate * (1 + amplitude * sin(2 pi t / period))``, realised by
    Lewis-Shedler thinning against the peak rate, which is exact.

    Parameters
    ----------
    base_rate:
        Mean arrival rate.
    amplitude:
        Relative modulation depth in ``[0, 1)``.
    period_s:
        Cycle length in seconds.
    """

    def __init__(self, base_rate: float, amplitude: float, period_s: float):
        if base_rate <= 0:
            raise ValueError("base rate must be positive")
        if not 0.0 <= amplitude < 1.0:
            raise ValueError("amplitude must lie in [0, 1)")
        if period_s <= 0:
            raise ValueError("period must be positive")
        self.base_rate = float(base_rate)
        self.amplitude = float(amplitude)
        self.period_s = float(period_s)
        self._clock = 0.0

    def reset(self) -> None:
        self._clock = 0.0

    def _rate_at(self, t: float) -> float:
        phase = 2.0 * math.pi * t / self.period_s
        return self.base_rate * (1.0 + self.amplitude * math.sin(phase))

    def interarrival(self, rng: np.random.Generator) -> float:
        peak = self.base_rate * (1.0 + self.amplitude)
        start = self._clock
        t = start
        while True:
            t += float(rng.exponential(1.0 / peak))
            if rng.random() * peak <= self._rate_at(t):
                self._clock = t
                return t - start

    def mean_rate(self) -> float:
        """The sinusoid averages out: the mean rate is ``base_rate``."""
        return self.base_rate

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PeriodicArrivals(base={self.base_rate:g}, "
            f"amplitude={self.amplitude:g})"
        )


class ScaledArrivals(ArrivalProcess):
    """Rate-scales another arrival process by a constant factor.

    Every inter-arrival drawn from ``inner`` is divided by ``factor``,
    which multiplies the instantaneous rate by ``factor`` -- exact for
    Poisson arrivals, and a time-compression for modulated processes.
    Used by the traffic-surge fault injector, which wraps the live
    process at surge start (preserving its state) and unwraps it at
    surge end.
    """

    def __init__(self, inner: ArrivalProcess, factor: float) -> None:
        if factor <= 0:
            raise ValueError("rate factor must be positive")
        self.inner = inner
        self.factor = float(factor)

    def reset(self) -> None:
        self.inner.reset()

    def interarrival(self, rng: np.random.Generator) -> float:
        return self.inner.interarrival(rng) / self.factor

    def mean_rate(self) -> float:
        return self.inner.mean_rate() * self.factor

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ScaledArrivals({self.inner!r} x {self.factor:g})"


class TraceArrivals(ArrivalProcess):
    """Replays a recorded sequence of inter-arrival times.

    Raises ``IndexError`` when the trace is exhausted -- run the
    simulation for at most ``len(trace)`` transactions.
    """

    def __init__(self, interarrivals: Sequence[float]) -> None:
        trace = [float(x) for x in interarrivals]
        if not trace:
            raise ValueError("trace must not be empty")
        if any(x < 0 for x in trace):
            raise ValueError("inter-arrival times must be non-negative")
        self.trace = trace
        self._cursor = 0

    def reset(self) -> None:
        self._cursor = 0

    def interarrival(self, rng: np.random.Generator) -> float:
        if self._cursor >= len(self.trace):
            raise IndexError("arrival trace exhausted")
        value = self.trace[self._cursor]
        self._cursor += 1
        return value

    def mean_rate(self) -> float:
        total = sum(self.trace)
        if total <= 0:
            raise ValueError("trace has zero total duration")
        return len(self.trace) / total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceArrivals(n={len(self.trace)})"
