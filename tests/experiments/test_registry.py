"""Experiment registry completeness and dispatch."""

import pytest

from repro.experiments.registry import (
    describe,
    experiment_ids,
    run_experiment,
)
from repro.experiments.scale import Scale

#: Every table/figure of the paper must have a registered experiment
#: (DESIGN.md per-experiment index).
EXPECTED_IDS = {
    "fig05",
    "false_alarm",
    "mmc_baseline",
    "autocorr",
    "fig09_10",
    "fig11",
    "fig12_13",
    "fig14",
    "fig15",
    "fig16",
    "ablations",
}


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        assert EXPECTED_IDS <= set(experiment_ids())

    def test_describe(self):
        assert "Fig. 5" in describe("fig05")

    def test_unknown_id(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            run_experiment("fig99", Scale.smoke())
        with pytest.raises(ValueError):
            describe("fig99")

    def test_analytical_experiments_run(self):
        scale = Scale.smoke()
        for eid in ("fig05", "false_alarm", "mmc_baseline"):
            result = run_experiment(eid, scale)
            assert result.experiment_id == eid
            assert result.tables
            assert result.format_text()
