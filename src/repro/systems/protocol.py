"""The ``System`` protocol: one contract for every simulated substrate.

The paper's monitoring/statistics/rejuvenation loop does not care what
it runs against -- a single Section-3 node, a balanced cluster, or a
sharded fleet.  This module pins down the small contract that makes the
rest of the repo substrate-polymorphic:

``SystemSpec``
    Picklable, declarative description of a substrate (kind plus
    topology knobs).  A spec rides on a
    :class:`~repro.exec.jobs.ReplicationJob` across process boundaries
    and is part of the job's canonical manifest identity.  Its
    :meth:`~SystemSpec.build` assembles a live system *inside* the
    worker from the job's config/arrival/policy sources.

``System`` (structural, not a base class)
    What ``build`` returns: anything with
    ``run(n_transactions, warmup=0, collect_response_times=False)``
    returning a :class:`~repro.ecommerce.metrics.RunResult`, plus the
    fault-injection surface -- ``set_arrivals`` / ``inject_crash`` /
    ``emit_fault`` / ``fault_nodes`` -- and ``sim`` / ``emit_fault``
    hooks the :mod:`repro.faults` injectors schedule against.

``ObsSpec`` / ``ObsSinks``
    The observability side of a job (trace level, telemetry probe,
    live tap, DES profiler) as plain data, and the per-process sinks
    built from it.  ``ObsSinks.decorate`` applies the same result
    updates for every substrate, so live telemetry and profiling
    behave identically on a node, a cluster, or a fleet shard.

Substrates register themselves in :data:`SYSTEM_KINDS` (see
:mod:`repro.systems`); :func:`resolve_system` turns whatever a caller
passed -- ``None``, a kind name, or a spec -- into a spec instance.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, ClassVar, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ecommerce.metrics import RunResult

#: Registry of spec classes by kind name; populated by the substrate
#: modules at import time (see repro.systems.__init__).
SYSTEM_KINDS: "Dict[str, type]" = {}


def register_system(cls: type) -> type:
    """Class decorator: register a :class:`SystemSpec` by its kind."""
    kind = cls.kind
    existing = SYSTEM_KINDS.get(kind)
    if existing is not None and existing is not cls:
        raise ValueError(f"system kind {kind!r} already registered")
    SYSTEM_KINDS[kind] = cls
    return cls


@dataclass(frozen=True)
class ObsSpec:
    """Picklable description of a run's observability instrumentation.

    Mirrors the observability fields of
    :class:`~repro.exec.jobs.ReplicationJob` one-for-one; the job
    runner packs them into one of these and every substrate builds its
    sinks the same way.  Deliberately *excluded* from manifest hashes:
    instrumentation watches a run without changing it.
    """

    trace_level: Optional[str] = None
    #: ``None``/"jsonl" buffers TraceEvent objects; "columnar" buffers
    #: raw tuples and returns an encoded column batch (see
    #: :mod:`repro.obs.columnar`).
    trace_format: Optional[str] = None
    telemetry_interval_s: Optional[float] = None
    live: Any = None
    profile: bool = False

    def build(self) -> "ObsSinks":
        """Construct the per-process sinks this spec asks for."""
        tracer = None
        if self.trace_level is not None:
            if self.trace_format == "columnar":
                from repro.obs.columnar.tap import ColumnarTap

                tracer = ColumnarTap(self.trace_level)
            else:
                from repro.obs.tracer import Tracer

                tracer = Tracer(self.trace_level)
        tap = None
        if self.live is not None:
            tap = self.live.build()
        telemetry = None
        if self.telemetry_interval_s is not None:
            from repro.ecommerce.telemetry import Telemetry

            telemetry = Telemetry(self.telemetry_interval_s)
        profiler = None
        if self.profile:
            from repro.obs.live.profiler import DESProfiler

            profiler = DESProfiler()
        return ObsSinks(self, tracer, tap, telemetry, profiler)


class ObsSinks:
    """The live sinks built from an :class:`ObsSpec` (one process).

    ``sink`` is what a system should treat as its tracer: the real
    :class:`~repro.obs.tracer.Tracer`, the
    :class:`~repro.obs.live.LiveTap`, a tee over both, or ``None``.
    """

    __slots__ = ("spec", "tracer", "tap", "telemetry", "profiler", "sink")

    def __init__(self, spec, tracer, tap, telemetry, profiler) -> None:
        self.spec = spec
        self.tracer = tracer
        self.tap = tap
        self.telemetry = telemetry
        self.profiler = profiler
        if tap is not None:
            from repro.obs.live.tap import compose_tracers

            self.sink = compose_tracers(tracer, tap)
        else:
            self.sink = tracer

    def run_context(self):
        """The context a run executes under (GC amortisation with a tap)."""
        if self.tap is not None:
            # The tap's ring churns tracked containers; amortise the
            # cyclic collector over larger batches for the run.
            from repro.obs.live.tap import amortised_gc

            return amortised_gc()
        return contextlib.nullcontext()

    def decorate(self, result: "RunResult") -> "RunResult":
        """Attach tap/profiler products to a finished result.

        No-op (the result object passes through untouched) when
        neither a tap nor a profiler is active, which keeps the
        default path bit-identical to an uninstrumented run.
        """
        tap = self.tap
        profiler = self.profiler
        if tap is None and profiler is None:
            return result
        updates: dict = {}
        if tap is not None:
            updates["live"] = tap.freeze()
            updates["flight"] = tap.dumps()
            if self.spec.trace_level is None:
                # The tap buffers nothing; without a real tracer the
                # run stays "untraced" on the result.
                updates["trace"] = None
            if tap.display is not None:
                tap.display.final(tap)
        if profiler is not None:
            updates["profile"] = profiler.snapshot()
        return replace(result, **updates)


class SystemSpec:
    """Base class for picklable substrate descriptions.

    Subclasses are frozen dataclasses declaring a ``kind`` and their
    topology knobs, registered via :func:`register_system`.  The spec
    describes the *shape* of the system; the job still carries the
    config, arrival, and policy sources, which :meth:`build` assembles
    into a live system in whatever process the job landed in.
    """

    #: Registry name; also recorded in manifest spec hashes.
    kind: ClassVar[str] = ""

    def build(
        self,
        config: Any,
        arrival: Any,
        policy: Any,
        seed: Optional[int] = None,
        obs: Optional[ObsSpec] = None,
        faults: Any = None,
    ):
        """A live system from this spec plus the job's sources."""
        raise NotImplementedError

    def job_transactions(self, n_transactions: int) -> int:
        """Total transactions a job horizon of ``n_transactions`` means.

        Single-node scenarios state their horizon in per-node terms; a
        substrate that scales arrivals with its node count scales the
        transaction budget alike, so the simulated *time* horizon (and
        with it every scenario's degraded intervals) is preserved.
        """
        return n_transactions

    def to_dict(self) -> dict:
        """Canonical plain-data form, self-describing via ``kind``."""
        from dataclasses import asdict

        from repro.obs.ledger.canonical import to_plain

        data = {"kind": self.kind}
        data.update(to_plain(asdict(self)))
        return data

    @classmethod
    def from_dict(cls, payload: dict) -> "SystemSpec":
        """Revive from a ``to_dict`` payload (minus the ``kind`` key)."""
        return cls(**payload)


def resolve_system(system: Any) -> SystemSpec:
    """Whatever the caller passed, as a :class:`SystemSpec`.

    ``None`` means the default single-node system; a string is looked
    up in :data:`SYSTEM_KINDS` (built with defaults); a mapping is
    revived via :func:`system_spec_from_dict`; a spec instance passes
    through.
    """
    # Importing the package registers the built-in substrates.
    import repro.systems  # noqa: F401

    if system is None:
        return SYSTEM_KINDS["ecommerce"]()
    if isinstance(system, str):
        try:
            return SYSTEM_KINDS[system]()
        except KeyError:
            raise ValueError(
                f"unknown system kind {system!r}; "
                f"available: {', '.join(sorted(SYSTEM_KINDS))}"
            ) from None
    if isinstance(system, dict):
        return system_spec_from_dict(system)
    if isinstance(system, SystemSpec):
        return system
    raise TypeError(
        "system must be None, a kind name, a mapping, or a SystemSpec, "
        f"got {system!r}"
    )


def system_spec_from_dict(data: dict) -> SystemSpec:
    """Revive a spec from its :meth:`SystemSpec.to_dict` payload."""
    import repro.systems  # noqa: F401

    payload = dict(data)
    kind = payload.pop("kind", None)
    if kind is None:
        raise ValueError("system payload needs a 'kind'")
    try:
        cls = SYSTEM_KINDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown system kind {kind!r}; "
            f"available: {', '.join(sorted(SYSTEM_KINDS))}"
        ) from None
    return cls.from_dict(payload)


class SystemRun:
    """Default runner wrapper: a concrete system plus its obs sinks.

    Delegates attribute access to the wrapped system (so the fault
    surface, ``sim``, and telemetry remain reachable), and runs it
    under the sinks' context with the standard result decoration.
    Substrates whose native result is not a ``RunResult`` override
    :meth:`_run` to convert.
    """

    def __init__(self, system: Any, sinks: ObsSinks) -> None:
        self.system = system
        self.sinks = sinks

    def __getattr__(self, name: str) -> Any:
        return getattr(self.system, name)

    def run(
        self,
        n_transactions: int,
        warmup: int = 0,
        collect_response_times: bool = False,
    ) -> "RunResult":
        with self.sinks.run_context():
            result = self._run(
                n_transactions, warmup, collect_response_times
            )
        return self.sinks.decorate(result)

    def _run(
        self, n_transactions: int, warmup: int, collect: bool
    ) -> "RunResult":
        return self.system.run(
            n_transactions,
            warmup=warmup,
            collect_response_times=collect,
        )
