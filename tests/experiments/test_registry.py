"""Experiment registry completeness and dispatch."""

import pytest

from repro.experiments.registry import (
    describe,
    experiment_ids,
    resolve_experiment_id,
    run_experiment,
)
from repro.experiments.scale import Scale

#: Every table/figure of the paper must have a registered experiment
#: (DESIGN.md per-experiment index).
EXPECTED_IDS = {
    "fig05",
    "false_alarm",
    "mmc_baseline",
    "autocorr",
    "fig09_10",
    "fig11",
    "fig12_13",
    "fig14",
    "fig15",
    "fig16",
    "ablations",
}


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        assert EXPECTED_IDS <= set(experiment_ids())

    def test_describe(self):
        assert "Fig. 5" in describe("fig05")

    def test_unknown_id(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            run_experiment("fig99", Scale.smoke())
        with pytest.raises(ValueError):
            describe("fig99")

    def test_beyond_paper_studies_registered(self):
        assert {"faults", "degradation", "fleet"} <= set(experiment_ids())
        assert "robustness" in describe("faults").lower()
        assert resolve_experiment_id("rolling") == "fleet"

    def test_aliases_resolve_to_canonical_ids(self):
        assert resolve_experiment_id("robustness") == "faults"
        assert resolve_experiment_id("erosion") == "degradation"
        assert resolve_experiment_id("comparison") == "fig16"
        # Canonical ids resolve to themselves.
        assert resolve_experiment_id("faults") == "faults"

    def test_alias_and_canonical_describe_identically(self):
        assert describe("robustness") == describe("faults")
        assert describe("erosion") == describe("degradation")

    def test_analytical_experiments_run(self):
        scale = Scale.smoke()
        for eid in ("fig05", "false_alarm", "mmc_baseline"):
            result = run_experiment(eid, scale)
            assert result.experiment_id == eid
            assert result.tables
            assert result.format_text()
