"""Diagnostics for the quality of the normal approximation (Fig. 5).

The paper argues visually (Fig. 5) that the density of the sample mean of
``n`` response times is "reasonably approximated" by a normal for
``n >= 15`` and quantifies the remaining error through the exact tail
probability beyond the 97.5 % normal quantile (3.69 % at n=15, 3.37 % at
n=30).  :class:`CLTDiagnostics` computes those quantities plus standard
distances between the exact and the approximating law.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.stats import norm

from repro.ctmc.sample_mean import SampleMeanChain
from repro.queueing.mmc import MMcModel


@dataclass(frozen=True)
class CLTReport:
    """Summary of how close the law of ``X̄n`` is to its normal limit."""

    n: int
    mean: float
    std: float
    skewness: float
    sup_density_distance: float
    kolmogorov_distance: float
    tail_beyond_975: float
    nominal_tail: float = 0.025

    @property
    def tail_inflation(self) -> float:
        """Exact tail over nominal tail (1.0 means the CLT rule is exact)."""
        return self.tail_beyond_975 / self.nominal_tail


class CLTDiagnostics:
    """Convergence diagnostics for the sample mean of M/M/c response times.

    Parameters
    ----------
    model:
        The underlying (healthy) M/M/c model.
    grid_points:
        Resolution for the density/cdf comparisons.
    span_sigmas:
        Half-width of the comparison window in sample-mean standard
        deviations around the mean.
    """

    def __init__(
        self,
        model: MMcModel,
        grid_points: int = 201,
        span_sigmas: float = 6.0,
    ) -> None:
        if grid_points < 11:
            raise ValueError("grid must have at least 11 points")
        if span_sigmas <= 0:
            raise ValueError("span must be positive")
        self.model = model
        self.grid_points = grid_points
        self.span_sigmas = span_sigmas

    def report(self, n: int) -> CLTReport:
        """Compare the exact law of ``X̄n`` with ``N(mu_X, sigma_X^2/n)``."""
        chain = SampleMeanChain(self.model, n)
        mu, sigma = chain.normal_parameters()
        low = max(0.0, mu - self.span_sigmas * sigma)
        high = mu + self.span_sigmas * sigma
        xs = np.linspace(low, high, self.grid_points)
        exact_pdf = chain.pdf_grid(xs)
        normal_pdf = norm.pdf(xs, loc=mu, scale=sigma)
        exact_cdf = np.array([chain.cdf(float(x)) for x in xs])
        normal_cdf = norm.cdf(xs, loc=mu, scale=sigma)
        # Skewness of the mean of n iid PH variables decays as 1/sqrt(n).
        base_skew = self.model.response_time_phase_type().skewness()
        return CLTReport(
            n=n,
            mean=mu,
            std=sigma,
            skewness=base_skew / math.sqrt(n),
            sup_density_distance=float(np.max(np.abs(exact_pdf - normal_pdf))),
            kolmogorov_distance=float(np.max(np.abs(exact_cdf - normal_cdf))),
            tail_beyond_975=chain.false_alarm_probability(0.975),
        )

    def convergence_table(self, sizes=(1, 5, 15, 30)) -> list[CLTReport]:
        """Reports for a family of sample sizes (the Fig. 5 panels)."""
        return [self.report(n) for n in sizes]
