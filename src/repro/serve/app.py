"""``repro serve``: the HTTP observability plane (stdlib only).

A :class:`ReproServer` wraps one ``http.server.ThreadingHTTPServer``
(one thread per request, daemonic) and exposes three surfaces over the
subsystems earlier PRs built:

* a JSON API over the run ledger (:mod:`repro.obs.ledger`) -- list,
  show, diff, baselines, bench trajectories -- sharing its list
  serialisation with ``repro runs list --json`` so the two can't drift;
* a live-telemetry channel: ``GET /api/events`` streams the
  :class:`~repro.serve.broker.EventBroker` as Server-Sent Events
  (fault/rejuvenation/trigger incidents, flight-dump notices, GK-sketch
  snapshots) while jobs run, and ``GET /api/live`` serves the latest
  snapshot for pollers (``repro top --follow``);
* campaign launches: ``POST /api/campaigns`` hands a request to the
  :class:`~repro.serve.jobs.JobManager`, ``GET /api/campaigns[/<id>]``
  polls status.

The server is strictly an *observer* of the ledger directory it was
pointed at: every GET re-reads the append-only files, so entries
recorded by concurrent CLI runs appear without restarts, and nothing
in the API mutates simulation state.

Endpoints (see docs/observability.md for the curl tour):

====  =========================  =======================================
GET   ``/``                      self-contained HTML dashboard
GET   ``/api/health``            server facts (version, counts, uptime)
GET   ``/api/runs``              ledger listing; ``kind``/``limit``/
                                 ``offset``/``last`` query parameters
GET   ``/api/runs/<ref>``        one full entry (id, prefix or latest)
GET   ``/api/runs/<ref>/trace/summary``  event counts + latency
                                 quantiles of the run's ``--trace``
                                 artifact (``limit``/``offset``
                                 paginate the per-run rows)
GET   ``/api/diff``              ``left`` vs ``right`` field-by-field
GET   ``/api/baselines``         pinned baselines
GET   ``/api/bench``             benchmark trajectory listing
GET   ``/api/bench/<name>``      one full trajectory + validation
GET   ``/api/policies``          every policy + parameter schema/labels
GET   ``/api/scenarios``         the fault zoo (``horizon`` parameter)
GET   ``/api/live``              latest live snapshot (or ``{}``)
GET   ``/api/events``            Server-Sent Events stream
                                 (``Last-Event-ID`` or ``last_event_id``
                                 replays missed buffered events)
GET   ``/api/campaigns``         job listing
GET   ``/api/campaigns/<id>``    one job's status
POST  ``/api/campaigns``         launch a campaign (JSON body)
POST  ``/api/campaigns/<id>/cancel``  request job cancellation
GET   ``/api/schedules``         recurring-campaign schedules
POST  ``/api/schedules``         add a schedule (JSON spec)
POST  ``/api/schedules/tick``    fire due schedules (virtual clock:
                                 optional ``{"now": seconds}`` body)
GET   ``/api/alerts``            incident table + rule set
====  =========================  =======================================
"""

from __future__ import annotations

import json
import queue
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.serve.broker import EventBroker
from repro.serve.jobs import JobManager

#: Default bind address and port of ``repro serve``.
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8765

#: SSE keepalive comment interval (seconds without an event).
SSE_KEEPALIVE_S = 15.0

#: Maximum request body accepted by POST endpoints.
MAX_BODY_BYTES = 1 << 20


class ApiError(Exception):
    """An error with an HTTP status, rendered as ``{"error": ...}``."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class ReproServer:
    """The observability server: state + the threaded HTTP listener."""

    def __init__(
        self,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        ledger_dir: Optional[str] = None,
        bench_dir: Optional[str] = None,
        title: str = "repro serve",
        rules: Any = None,
        alerts_dir: Optional[str] = None,
    ) -> None:
        from repro.obs.sentinel import AlertEngine, AlertLedger, Scheduler
        from repro.obs.sentinel.rules import rules_from_dict

        self.ledger_dir = ledger_dir
        self.bench_dir = bench_dir
        self.title = title
        self.broker = EventBroker()
        self.jobs = JobManager(broker=self.broker, ledger_dir=ledger_dir)
        self.scheduler = Scheduler(self.jobs)
        if isinstance(rules, dict):
            rules = rules_from_dict(rules)
        self.sentinel = AlertEngine(
            rules=rules or (),
            ledger=self.ledger(),
            alerts=(
                AlertLedger(alerts_dir) if alerts_dir is not None else None
            ),
        )
        self.sentinel.attach(self.broker)
        self.started = time.monotonic()
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        # The handler reaches back through the server object.
        self._httpd.repro = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None
        self._ticker: Optional[threading.Thread] = None
        self._ticker_stop = threading.Event()

    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def ledger(self):
        from repro.obs.ledger import Ledger

        return Ledger(self.ledger_dir)

    # ------------------------------------------------------------------
    def serve_forever(self) -> None:
        """Block serving requests (the ``repro serve`` foreground path)."""
        self._httpd.serve_forever(poll_interval=0.2)

    def start(self) -> "ReproServer":
        """Serve on a daemon thread (tests, benchmarks); returns self."""
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-serve", daemon=True
        )
        self._thread.start()
        return self

    def start_ticker(self, every_s: float) -> None:
        """Drive the scheduler from the wall clock (foreground serving).

        Tests and CI never call this: they disable the ticker and POST
        ``/api/schedules/tick`` with explicit virtual times instead, so
        schedule behaviour stays deterministic.
        """
        if self._ticker is not None:
            return

        def _run() -> None:
            while not self._ticker_stop.wait(every_s):
                try:
                    self.scheduler.tick(time.time())
                except Exception:  # pragma: no cover - keep ticking
                    pass

        self._ticker = threading.Thread(
            target=_run, name="repro-serve-ticker", daemon=True
        )
        self._ticker.start()

    def close(self) -> None:
        self._ticker_stop.set()
        if self._ticker is not None:
            self._ticker.join(timeout=5.0)
            self._ticker = None
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None


class _Handler(BaseHTTPRequestHandler):
    """Routing, JSON envelopes, and the SSE writer."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"

    # Quiet by default: per-request lines are noise under test/CI.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    @property
    def app(self) -> ReproServer:
        return self.server.repro  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server contract
        path, query = self._split()
        try:
            if path in ("/", "/dashboard"):
                return self._send_html(self._dashboard())
            if path == "/api/health":
                return self._send_json(self._health())
            if path == "/api/runs":
                return self._send_json(self._runs(query))
            if path.startswith("/api/runs/") and path.endswith(
                "/trace/summary"
            ):
                ref = path[
                    len("/api/runs/") : -len("/trace/summary")
                ]
                return self._send_json(self._trace_summary(ref, query))
            if path.startswith("/api/runs/"):
                ref = path[len("/api/runs/") :]
                return self._send_json(self._run_entry(ref))
            if path == "/api/diff":
                return self._send_json(self._diff(query))
            if path == "/api/baselines":
                return self._send_json(
                    {"baselines": self.app.ledger().baselines()}
                )
            if path == "/api/bench":
                return self._send_json(self._bench_list())
            if path.startswith("/api/bench/"):
                name = path[len("/api/bench/") :]
                return self._send_json(self._bench_one(name))
            if path == "/api/policies":
                return self._send_json(self._policies())
            if path == "/api/scenarios":
                return self._send_json(self._scenarios(query))
            if path == "/api/live":
                return self._send_json(
                    self.app.broker.latest_snapshot or {}
                )
            if path == "/api/events":
                return self._stream_events(query)
            if path == "/api/campaigns":
                return self._send_json({"jobs": self.app.jobs.jobs()})
            if path.startswith("/api/campaigns/"):
                job_id = path[len("/api/campaigns/") :]
                return self._send_json({"job": self.app.jobs.get(job_id)})
            if path == "/api/schedules":
                return self._send_json(
                    {"schedules": self.app.scheduler.states()}
                )
            if path.startswith("/api/schedules/"):
                name = path[len("/api/schedules/") :]
                return self._send_json(
                    {"schedule": self.app.scheduler.get(name)}
                )
            if path == "/api/alerts":
                return self._send_json(self.app.sentinel.to_payload())
            raise ApiError(404, f"no such endpoint: {path}")
        except ApiError as error:
            self._send_json({"error": str(error)}, status=error.status)
        except LookupError as error:
            self._send_json({"error": str(error)}, status=404)
        except BrokenPipeError:  # pragma: no cover - client went away
            pass

    def do_POST(self) -> None:  # noqa: N802 - http.server contract
        path, _ = self._split()
        try:
            if path == "/api/campaigns":
                body = self._read_json_body()
                try:
                    job = self.app.jobs.submit_campaign(body)
                except ValueError as error:
                    raise ApiError(400, str(error)) from None
                return self._send_json({"job": job}, status=202)
            if path.startswith("/api/campaigns/") and path.endswith(
                "/cancel"
            ):
                job_id = path[len("/api/campaigns/") : -len("/cancel")]
                try:
                    job = self.app.jobs.cancel(job_id)
                except LookupError as error:
                    raise ApiError(404, str(error)) from None
                return self._send_json({"job": job}, status=202)
            if path == "/api/schedules":
                body = self._read_json_body()
                # Virtual-clock add time: a client driving explicit
                # ticks pins "now" so first-due is deterministic.
                now = body.pop("now", time.time())
                try:
                    schedule = self.app.scheduler.add(body, now=float(now))
                except ValueError as error:
                    raise ApiError(400, str(error)) from None
                return self._send_json({"schedule": schedule}, status=201)
            if path == "/api/schedules/tick":
                body = self._read_json_body(optional=True)
                now = body.get("now", time.time())
                try:
                    now = float(now)
                except (TypeError, ValueError):
                    raise ApiError(400, "now must be a number") from None
                launched = self.app.scheduler.tick(now)
                return self._send_json(
                    {"now": now, "launched": launched}, status=200
                )
            raise ApiError(404, f"no such endpoint: {path}")
        except ApiError as error:
            self._send_json({"error": str(error)}, status=error.status)
        except BrokenPipeError:  # pragma: no cover - client went away
            pass

    # ------------------------------------------------------------------
    # Endpoint bodies
    # ------------------------------------------------------------------
    def _health(self) -> Dict[str, Any]:
        from repro.obs.ledger.provenance import version_string

        app = self.app
        return {
            "status": "ok",
            "version": version_string(),
            "ledger_dir": app.ledger().directory,
            "runs": len(app.ledger().entries()),
            "subscribers": app.broker.subscriber_count,
            "events_published": app.broker.published,
            "jobs": len(app.jobs.jobs()),
            "schedules": len(app.scheduler),
            "alerts_open": app.sentinel.open_count,
            "uptime_s": round(time.monotonic() - app.started, 3),
        }

    def _runs(self, query: Dict[str, str]) -> Dict[str, Any]:
        from repro.obs.ledger.summary import runs_payload

        ledger = self.app.ledger()
        entries = ledger.entries()
        kind = query.get("kind")
        limit = self._int_param(query, "limit")
        offset = self._int_param(query, "offset") or 0
        last = self._int_param(query, "last")
        if last is not None:
            # The CLI's --last N: the N newest of the filtered view.
            total = sum(
                1 for e in entries if kind is None or e["kind"] == kind
            )
            offset = max(0, total - last)
            limit = last
        return runs_payload(
            entries,
            ledger.baselines(),
            kind=kind,
            limit=limit,
            offset=offset,
        )

    def _run_entry(self, ref: str) -> Dict[str, Any]:
        if not ref:
            raise ApiError(404, "missing run ref")
        return self.app.ledger().get(ref)

    def _trace_summary(
        self, ref: str, query: Dict[str, str]
    ) -> Dict[str, Any]:
        """Event counts and latency quantiles of a run's trace artifact.

        The entry must carry a ``trace`` artifact path (runs recorded
        by ``--trace`` do); the file may be JSONL or columnar, plain or
        gzipped -- both summarise identically.  Per-run rows paginate
        with ``limit``/``offset`` exactly like ``GET /api/runs``
        (``total`` reports the unpaginated run count).
        """
        import os

        import numpy as np

        from repro.obs.columnar.io import sniff_format
        from repro.obs.columnar.query import (
            exact_percentile,
            load_query,
        )
        from repro.obs.events import (
            REQUEST_COMPLETE,
            SYSTEM_REJUVENATION,
        )

        if not ref:
            raise ApiError(404, "missing run ref")
        entry = self.app.ledger().get(ref)
        trace_path = (entry.get("artifacts") or {}).get("trace")
        if not trace_path:
            raise ApiError(
                404,
                f"run {entry['id']} has no trace artifact -- re-run "
                "with --trace PATH to record one",
            )
        if not os.path.exists(trace_path):
            raise ApiError(
                404, f"trace artifact missing on disk: {trace_path}"
            )
        trace_query = load_query(trace_path)
        values = np.sort(
            np.asarray(trace_query.response_times(), dtype=np.float64)
        )
        quantiles = (
            {
                f"p{int(q * 100):02d}": float(
                    exact_percentile(values, q)
                )
                for q in (0.50, 0.90, 0.95, 0.99)
            }
            if values.shape[0]
            else {}
        )
        views = trace_query.run_views()
        offset = max(0, self._int_param(query, "offset") or 0)
        limit = self._int_param(query, "limit")
        window = views[offset:]
        if limit is not None:
            window = window[: max(0, limit)]
        runs = []
        for view in window:
            meta = view.meta or {}
            counts = view.counts()
            runs.append(
                {
                    "run": view.run_id,
                    "records": view.n_records,
                    "tag": list(meta.get("tag") or ()),
                    "seed": meta.get("seed"),
                    "completions": counts.get(REQUEST_COMPLETE, 0),
                    "rejuvenations": counts.get(
                        SYSTEM_REJUVENATION, 0
                    ),
                }
            )
        return {
            "id": entry["id"],
            "trace": trace_path,
            "format": sniff_format(trace_path),
            "records": trace_query.n_records,
            "events_by_kind": trace_query.counts(),
            "latency_quantiles": quantiles,
            "total": len(views),
            "offset": offset,
            "count": len(runs),
            "runs": runs,
        }

    def _diff(self, query: Dict[str, str]) -> Dict[str, Any]:
        from repro.obs.ledger import diff_entries

        left_ref = query.get("left")
        right_ref = query.get("right")
        if not left_ref or not right_ref:
            raise ApiError(400, "diff needs left and right query params")
        ledger = self.app.ledger()
        left = ledger.get(left_ref)
        right = ledger.get(right_ref)
        differences = diff_entries(left, right)
        return {
            "left": left["id"],
            "right": right["id"],
            "identical": not differences,
            "differences": differences,
        }

    def _bench_list(self) -> Dict[str, Any]:
        from repro.obs.ledger import (
            list_trajectories,
            load_trajectory,
            validate_trajectory,
        )

        out = []
        for name in list_trajectories(self.app.bench_dir):
            trajectory = load_trajectory(name, self.app.bench_dir)
            points = trajectory.get("points", [])
            out.append(
                {
                    "name": name,
                    "points": len(points),
                    "latest": points[-1] if points else None,
                    "problems": validate_trajectory(trajectory),
                }
            )
        return {"trajectories": out}

    def _bench_one(self, name: str) -> Dict[str, Any]:
        from repro.obs.ledger import load_trajectory, validate_trajectory

        try:
            trajectory = load_trajectory(name, self.app.bench_dir)
        except FileNotFoundError:
            raise ApiError(404, f"no trajectory {name!r}") from None
        trajectory["problems"] = validate_trajectory(trajectory)
        return trajectory

    def _policies(self) -> Dict[str, Any]:
        """Every constructible policy with its parameter schema.

        ``policies`` mirrors :func:`repro.core.factory.policy_schema`
        (the same validation that rejects a bad ``POST /api/campaigns``
        body), ``labels`` the campaign spellings ``resolve_policies``
        accepts on top of the factory names -- the paper trio at its
        Section-5.6 parameters plus the :mod:`repro.detect` lineup.
        """
        from repro.core.factory import policy_schema
        from repro.detect import DETECTOR_POLICIES
        from repro.faults.campaign import DEFAULT_POLICIES

        labels = [
            {"label": label, "policy": spec.name, "params": dict(spec.params)}
            for mapping in (DEFAULT_POLICIES, DETECTOR_POLICIES)
            for label, spec in mapping.items()
        ]
        return {"policies": policy_schema(), "labels": labels}

    def _scenarios(self, query: Dict[str, str]) -> Dict[str, Any]:
        from repro.faults.zoo import builtin_scenarios

        horizon = float(query.get("horizon", "900"))
        out = []
        for scenario in builtin_scenarios(horizon).values():
            out.append(
                {
                    "name": scenario.name,
                    "description": scenario.description,
                    "n_transactions": scenario.n_transactions,
                    "injections": len(scenario.injections),
                    "degraded_intervals": len(scenario.degraded),
                }
            )
        return {"horizon_s": horizon, "scenarios": out}

    def _dashboard(self) -> str:
        from repro.obs.ledger.provenance import version_string
        from repro.serve.dashboard import render_dashboard

        return render_dashboard(
            {
                "title": self.app.title,
                "version": version_string(),
                "ledger_dir": self.app.ledger().directory,
            }
        )

    # ------------------------------------------------------------------
    # SSE
    # ------------------------------------------------------------------
    def _stream_events(self, query: Dict[str, str]) -> None:
        """The Server-Sent-Events channel over the broker.

        ``max_events`` / ``timeout_s`` close the stream after that many
        events or seconds -- curl- and test-friendly bounds; browsers
        simply reconnect their ``EventSource``.  The stream opens with
        an ``sse.hello`` event (subscription id + replayed count) so a
        client knows it is attached before anything fires.

        A reconnecting client sends the last ``id:`` it saw -- the
        standard ``Last-Event-ID`` header (``EventSource`` does this
        automatically) or a ``last_event_id`` query parameter -- and
        the broker prefills every buffered event after it, so a restart
        of the *client* loses nothing the replay ring still holds.
        """
        max_events = self._int_param(query, "max_events")
        timeout_s = self._float_param(query, "timeout_s")
        after_seq = self._int_param(query, "last_event_id")
        if after_seq is None:
            header = self.headers.get("Last-Event-ID")
            if header is not None:
                try:
                    after_seq = int(header)
                except ValueError:
                    raise ApiError(
                        400, "Last-Event-ID must be an integer"
                    ) from None
        subscription = self.app.broker.subscribe(after_seq=after_seq)
        try:
            self.send_response(200)
            self.send_header("Content-Type", "text/event-stream")
            self.send_header("Cache-Control", "no-store")
            # Close-delimited stream: no Content-Length, no keep-alive.
            self.send_header("Connection", "close")
            self.end_headers()
            self._write_sse(
                "sse.hello",
                {
                    "subscription": subscription.id,
                    "replayed": subscription.replayed,
                },
            )
            sent = 0
            deadline = (
                time.monotonic() + timeout_s
                if timeout_s is not None
                else None
            )
            while max_events is None or sent < max_events:
                wait = SSE_KEEPALIVE_S
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    wait = min(wait, remaining)
                try:
                    event = subscription.get(timeout=wait)
                except queue.Empty:
                    if deadline is None:
                        self.wfile.write(b": keepalive\n\n")
                        self.wfile.flush()
                    continue
                self._write_sse(
                    event["event"], event["data"], event["seq"]
                )
                sent += 1
        except (BrokenPipeError, ConnectionResetError):
            pass  # client disconnected; normal SSE lifecycle
        finally:
            subscription.close()

    def _write_sse(
        self, etype: str, data: Dict[str, Any], seq: Optional[int] = None
    ) -> None:
        chunk = [f"event: {etype}"]
        if seq is not None:
            chunk.append(f"id: {seq}")
        chunk.append(f"data: {json.dumps(data, sort_keys=True)}")
        self.wfile.write(("\n".join(chunk) + "\n\n").encode("utf-8"))
        self.wfile.flush()

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _split(self) -> Tuple[str, Dict[str, str]]:
        parts = urlsplit(self.path)
        query = {
            key: values[-1]
            for key, values in parse_qs(parts.query).items()
        }
        path = parts.path.rstrip("/") or "/"
        return path, query

    @staticmethod
    def _int_param(query: Dict[str, str], name: str) -> Optional[int]:
        raw = query.get(name)
        if raw is None:
            return None
        try:
            return int(raw)
        except ValueError:
            raise ApiError(400, f"{name} must be an integer") from None

    @staticmethod
    def _float_param(query: Dict[str, str], name: str) -> Optional[float]:
        raw = query.get(name)
        if raw is None:
            return None
        try:
            return float(raw)
        except ValueError:
            raise ApiError(400, f"{name} must be a number") from None

    def _read_json_body(self, optional: bool = False) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            if optional:
                return {}
            raise ApiError(400, "a JSON request body is required")
        if length > MAX_BODY_BYTES:
            raise ApiError(413, "request body too large")
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ApiError(400, f"bad JSON body: {error}") from None
        if not isinstance(body, dict):
            raise ApiError(400, "request body must be a JSON object")
        return body

    def _send_json(self, payload: Any, status: int = 200) -> None:
        # Trailing newline keeps bodies byte-identical to the CLI's
        # printed JSON (``cmp``-able) and curl-friendly.
        body = (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode(
            "utf-8"
        )
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_html(self, page: str, status: int = 200) -> None:
        body = page.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "text/html; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
