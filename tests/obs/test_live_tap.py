"""The live tap, the tee, and the cross-backend merge contract.

The acceptance criterion lives here: the merged live aggregator of a
replicated run must be *bit-identical* between the serial and
process-pool backends (submission-order folding of deterministic
merges), and the flight-recorder dumps likewise.
"""

import pickle

import pytest

from repro.core.spec import PolicySpec
from repro.ecommerce.config import PAPER_CONFIG
from repro.ecommerce.runner import run_replications
from repro.ecommerce.spec import ArrivalSpec
from repro.exec.backends import ProcessPoolBackend, SerialBackend
from repro.obs.live import (
    LiveSpec,
    LiveTap,
    RecorderSpec,
    TeeTracer,
    compose_tracers,
    merge_live,
)
from repro.obs.tracer import Tracer


def make_tap(**spec_kwargs):
    return LiveSpec(**spec_kwargs).build()


class TestLiveTap:
    def test_tracer_protocol_flags(self):
        tap = make_tap()
        assert tap.spans and tap.decisions and not tap.engine
        assert tap.events == ()  # the tap buffers nothing

    def test_response_times_feed_every_aggregator(self):
        tap = make_tap()
        for i, rt in enumerate((1.0, 2.0, 3.0, 4.0)):
            tap.emit(float(i), "request.complete", "system",
                     response_time=rt)
        snapshot = tap.aggregator.snapshot()
        assert snapshot["completed"] == 4
        assert snapshot["rt_mean"] == pytest.approx(2.5)
        assert snapshot["rt_max"] == 4.0
        assert snapshot["window_mean"] == pytest.approx(2.5)
        assert snapshot["rt_quantiles"]["p50"] in (2.0, 3.0)
        assert snapshot["ts"] == 3.0

    def test_policy_level_tracked(self):
        tap = make_tap()
        tap.emit(5.0, "policy.level", "policy:sraa", level=3)
        assert tap.aggregator.snapshot()["level"] == 3

    def test_counted_types(self):
        tap = make_tap()
        tap.emit(1.0, "request.loss", "node0", reason="rejuvenation")
        tap.emit(2.0, "system.gc", "node0", pause_s=0.5)
        tap.emit(3.0, "system.rejuvenation", "node0", lost=1)
        tap.emit(4.0, "fault.injected", "campaign", kind="surge")
        tap.emit(5.0, "policy.trigger", "policy:sraa", level=2)
        snapshot = tap.aggregator.snapshot()
        assert snapshot["lost"] == 1
        assert snapshot["gc"] == 1
        assert snapshot["rejuvenations"] == 1
        assert snapshot["faults"] == 1
        assert snapshot["triggers"] == 1

    def test_recorder_attached_and_dumps_exposed(self):
        tap = make_tap(recorder=RecorderSpec(cooldown_s=0.0))
        tap.emit(1.0, "request.complete", "system", response_time=1.0)
        tap.emit(2.0, "system.rejuvenation", "node0", lost=0)
        assert len(tap.dumps()) == 1
        assert tap.dumps()[0].reason == "system.rejuvenation"

    def test_clear_resets(self):
        tap = make_tap(recorder=RecorderSpec(cooldown_s=0.0))
        tap.emit(1.0, "request.complete", "system", response_time=1.0)
        tap.emit(2.0, "system.rejuvenation", "node0", lost=0)
        tap.clear()
        assert tap.aggregator.snapshot()["completed"] == 0
        assert tap.dumps() == ()

    def test_spec_without_display_is_picklable(self):
        spec = LiveSpec(display=lambda: None)
        with pytest.raises(Exception):
            pickle.dumps(spec)  # display handles never cross processes
        assert pickle.loads(pickle.dumps(spec.without_display()))


class TestTeeTracer:
    def test_flags_are_or_of_sinks(self):
        tracer = Tracer("spans")
        tap = make_tap()
        tee = TeeTracer([tracer, tap])
        assert tee.spans and tee.decisions and not tee.engine

    def test_each_sink_gets_only_its_categories(self):
        spans_only = Tracer("spans")
        tap = make_tap()  # wants spans and decisions
        tee = TeeTracer([spans_only, tap])
        tee.emit(1.0, "request.complete", "system", response_time=2.0)
        tee.emit(2.0, "policy.trigger", "policy:sraa", level=1)
        assert [e.etype for e in spans_only.events] == ["request.complete"]
        snapshot = tap.aggregator.snapshot()
        assert snapshot["completed"] == 1 and snapshot["triggers"] == 1

    def test_events_come_from_the_buffering_sink(self):
        tracer = Tracer("spans")
        tap = make_tap()
        tee = TeeTracer([tap, tracer])  # tap first: buffers nothing
        tee.emit(1.0, "request.complete", "system", response_time=2.0)
        assert [e.etype for e in tee.events] == ["request.complete"]

    def test_compose_tracers(self):
        tap = make_tap()
        assert compose_tracers(None, None) is None
        assert compose_tracers(None, tap) is tap
        assert isinstance(
            compose_tracers(Tracer("spans"), tap), TeeTracer
        )

    def test_empty_tee_rejected(self):
        with pytest.raises(ValueError):
            TeeTracer([])


class TestMergeLive:
    def test_merge_folds_counts_and_moments(self):
        a, b = make_tap(), make_tap()
        a.emit(1.0, "request.complete", "system", response_time=2.0)
        b.emit(2.0, "request.complete", "system", response_time=4.0)
        merged = merge_live([a.freeze(), None, b.freeze()])
        snapshot = merged.snapshot()
        assert snapshot["completed"] == 2
        assert snapshot["rt_mean"] == pytest.approx(3.0)

    def test_all_none_merges_to_none(self):
        assert merge_live([None, None]) is None


def _replicate(backend, live=None, profile=False):
    return run_replications(
        PAPER_CONFIG,
        arrival=ArrivalSpec.poisson(PAPER_CONFIG.arrival_rate_for_load(9.0)),
        policy=PolicySpec.sraa(2, 5, 3),
        n_transactions=400,
        replications=3,
        seed=20,
        backend=backend,
        live=live,
        profile=profile,
    )


class TestCrossBackendDeterminism:
    """ISSUE acceptance: serial vs pool merged sketches bit-identical."""

    LIVE = LiveSpec(recorder=RecorderSpec(slo_s=30.0, cooldown_s=0.0))

    def test_merged_live_bit_identical(self):
        serial = _replicate(SerialBackend(), live=self.LIVE)
        pooled = _replicate(ProcessPoolBackend(workers=2), live=self.LIVE)
        a, b = serial.merged_live(), pooled.merged_live()
        assert a is not None and b is not None
        # The snapshot covers moments, sketch quantiles, window,
        # rate and counts; dict equality is bit-exact (no approx).
        assert a.snapshot() == b.snapshot()
        qs = tuple(q / 100.0 for q in range(1, 100))
        assert a.sketch.quantiles(qs) == b.sketch.quantiles(qs)
        assert a.window.values() == b.window.values()

    def test_flight_dumps_bit_identical(self):
        serial = _replicate(SerialBackend(), live=self.LIVE)
        pooled = _replicate(ProcessPoolBackend(workers=2), live=self.LIVE)
        for run_s, run_p in zip(serial.runs, pooled.runs):
            assert run_s.flight == run_p.flight

    def test_profile_event_counts_bit_identical(self):
        # Seconds are wall-clock (machine noise); counts are exact.
        serial = _replicate(SerialBackend(), profile=True)
        pooled = _replicate(ProcessPoolBackend(workers=2), profile=True)
        a, b = serial.merged_profile(), pooled.merged_profile()
        assert [(e.kind, e.subsystem, e.events) for e in a.entries] == [
            (e.kind, e.subsystem, e.events) for e in b.entries
        ]

    def test_live_only_jobs_do_not_buffer_traces(self):
        result = _replicate(SerialBackend(), live=self.LIVE)
        assert all(run.trace is None for run in result.runs)
        assert all(run.live is not None for run in result.runs)
