"""E1 -- Fig. 5: density of the sample-mean RT vs its normal limit."""

from conftest import regenerate


def test_fig05_density(benchmark):
    result = regenerate(benchmark, "fig05")
    summary = result.tables[-1]
    sup = summary.get_series("sup |f_exact - f_normal|")
    kolmogorov = summary.get_series("sup |F_exact - F_normal|")
    # Paper: the approximation is visibly poor at n=1 and reasonable by
    # n=15-30; both distances must shrink monotonically.
    for series in (sup, kolmogorov):
        values = [series.value_at(n) for n in (1, 5, 15, 30)]
        assert values[0] > values[1] > values[2] > values[3]
    # "Reasonably approximated ... for sample sizes as low as 30 or
    # even 15": the Kolmogorov distance is small there.
    assert kolmogorov.value_at(15) < 0.05
    assert kolmogorov.value_at(30) < 0.04
