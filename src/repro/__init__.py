"""repro -- software rejuvenation triggered by customer-affecting metrics.

A complete, from-scratch reproduction of

    Avritzer, Bondi, Grottke, Trivedi, Weyuker:
    "Performance Assurance via Software Rejuvenation: Monitoring,
    Statistics and Algorithms", Proc. DSN 2006, pp. 435-444.

The library contains the paper's three rejuvenation algorithms (SRAA,
SARAA, CLTA) plus every substrate its evaluation depends on: a
discrete-event simulation kernel, the Section-3 e-commerce system model,
analytical M/M/c queueing, a CTMC engine standing in for SHARPE, and the
statistics of Section 4.1.  See DESIGN.md for the system inventory and
EXPERIMENTS.md for paper-vs-measured results.

Quick start::

    from repro import SRAA, PAPER_SLO, RejuvenationMonitor

    policy = SRAA(PAPER_SLO, sample_size=3, n_buckets=2, depth=5)
    monitor = RejuvenationMonitor(policy, on_rejuvenate=my_restart_hook)
    for response_time in live_metric_stream:
        monitor.feed(response_time)
"""

from repro.cluster import (
    ClusterSystem,
    JoinShortestQueue,
    RollingCoordinator,
    RoundRobin,
    WeightedRoundRobin,
)
from repro.core import (
    CLTA,
    PAPER_SLO,
    PolicySpec,
    SARAA,
    SRAA,
    BucketChain,
    CUSUMPolicy,
    DeterministicThreshold,
    EWMAPolicy,
    NeverRejuvenate,
    PeriodicRejuvenation,
    QuantilePolicy,
    RejuvenationPolicy,
    ResourceExhaustionPolicy,
    RiskBasedThreshold,
    ServiceLevelObjective,
    StaticRejuvenation,
    TrendPolicy,
    available_policies,
    make_policy,
)
from repro.ctmc import SampleMeanChain, clt_false_alarm_probability
from repro.degradation import DegradableSystem
from repro.ecommerce import (
    ArrivalSpec,
    ECommerceSystem,
    PAPER_CONFIG,
    PoissonArrivals,
    SystemConfig,
    Telemetry,
    run_once,
    run_replications,
    simulate_mmc_response_times,
)
from repro.exec import (
    ProcessPoolBackend,
    ReplicationJob,
    SerialBackend,
    make_backend,
    use_backend,
)
from repro.experiments import Scale, run_experiment
from repro.faults import FaultScenario, builtin_scenarios, run_campaign
from repro.availability import HuangRejuvenationModel
from repro.monitoring import (
    AdaptiveSLO,
    RejuvenationMonitor,
    calibrate_slo,
    robust_calibrate_slo,
)
from repro.obs import (
    MetricsRegistry,
    TraceSession,
    Tracer,
    explain_trace,
    use_tracing,
)
from repro.obs.ledger import version_string
from repro.queueing import MMcModel
from repro.tuning import ParameterAdvisor, ParameterScore, default_grid

# Resolved from installed distribution metadata when available, with a
# "+src" marker for PYTHONPATH source-tree use (see repro.obs.ledger).
from repro.obs.ledger.provenance import package_version as _package_version

__version__ = _package_version()

__all__ = [
    "AdaptiveSLO",
    "ArrivalSpec",
    "BucketChain",
    "CLTA",
    "CUSUMPolicy",
    "ClusterSystem",
    "DegradableSystem",
    "DeterministicThreshold",
    "ECommerceSystem",
    "EWMAPolicy",
    "FaultScenario",
    "HuangRejuvenationModel",
    "JoinShortestQueue",
    "MMcModel",
    "MetricsRegistry",
    "NeverRejuvenate",
    "PAPER_CONFIG",
    "PAPER_SLO",
    "ParameterAdvisor",
    "ParameterScore",
    "PeriodicRejuvenation",
    "PoissonArrivals",
    "PolicySpec",
    "ProcessPoolBackend",
    "QuantilePolicy",
    "RejuvenationMonitor",
    "RejuvenationPolicy",
    "ReplicationJob",
    "ResourceExhaustionPolicy",
    "RiskBasedThreshold",
    "RollingCoordinator",
    "RoundRobin",
    "SARAA",
    "SRAA",
    "SampleMeanChain",
    "Scale",
    "SerialBackend",
    "ServiceLevelObjective",
    "StaticRejuvenation",
    "SystemConfig",
    "Telemetry",
    "TraceSession",
    "Tracer",
    "TrendPolicy",
    "WeightedRoundRobin",
    "available_policies",
    "builtin_scenarios",
    "default_grid",
    "calibrate_slo",
    "clt_false_alarm_probability",
    "explain_trace",
    "make_backend",
    "make_policy",
    "robust_calibrate_slo",
    "run_campaign",
    "run_experiment",
    "run_once",
    "run_replications",
    "simulate_mmc_response_times",
    "use_backend",
    "use_tracing",
    "version_string",
    "__version__",
]
