"""Compare rejuvenation policies on the paper's e-commerce system.

Reproduces the Section-5 methodology at a small scale: the 16-CPU Java
system with garbage-collection stalls and kernel overhead, driven at a
high offered load (9 CPUs), under every policy the library ships --
including the do-nothing baseline, which shows why rejuvenation matters
at all: above 50 concurrent threads the kernel overhead halves capacity
below the arrival rate, so one GC backlog never drains (a "soft
failure").

Run:  python examples/ecommerce_comparison.py
"""

from repro import (
    CLTA,
    PAPER_CONFIG,
    PAPER_SLO,
    SARAA,
    SRAA,
    DeterministicThreshold,
    NeverRejuvenate,
    PeriodicRejuvenation,
    PoissonArrivals,
    run_replications,
)

LOAD_CPUS = 9.0
TRANSACTIONS = 10_000
REPLICATIONS = 3


def policy_zoo():
    """(name, factory) for every contender."""
    return [
        ("no rejuvenation", NeverRejuvenate),
        ("threshold > 20 s", lambda: DeterministicThreshold(20.0)),
        ("periodic (500 tx)", lambda: PeriodicRejuvenation(period=500)),
        ("SRAA (2,5,3)", lambda: SRAA(PAPER_SLO, 2, 5, 3)),
        ("SARAA (2,5,3)", lambda: SARAA(PAPER_SLO, 2, 5, 3)),
        ("CLTA (n=30)", lambda: CLTA(PAPER_SLO, 30, 1.96)),
    ]


def main() -> None:
    arrival_rate = PAPER_CONFIG.arrival_rate_for_load(LOAD_CPUS)
    print(
        f"Offered load {LOAD_CPUS} CPUs (lambda = {arrival_rate:.2f}/s), "
        f"{REPLICATIONS} x {TRANSACTIONS} transactions\n"
    )
    header = f"{'policy':<20} {'avg RT (s)':>10} {'loss':>8} {'rejuv':>6} {'GCs':>5}"
    print(header)
    print("-" * len(header))
    for name, factory in policy_zoo():
        result = run_replications(
            PAPER_CONFIG,
            arrival_factory=lambda: PoissonArrivals(arrival_rate),
            policy_factory=factory,
            n_transactions=TRANSACTIONS,
            replications=REPLICATIONS,
            seed=42,
        )
        print(
            f"{name:<20} {result.avg_response_time:>10.2f} "
            f"{result.loss_fraction:>8.4f} {result.rejuvenations:>6.0f} "
            f"{result.gc_count:>5.0f}"
        )
    print(
        "\nReading: without rejuvenation the GC backlog never drains and "
        "the average RT explodes;\nthe measurement-driven policies keep it "
        "within a few seconds of the healthy 5 s baseline\nat the cost of "
        "a few percent of transactions lost."
    )


if __name__ == "__main__":
    main()
