"""Result containers that render like the paper's figures.

Each figure in the paper is a family of curves over the offered-load
axis; :class:`Series` is one curve, :class:`Table` one figure.  The
text renderer prints the exact rows a plotting tool would consume, so
``repro run fig09`` output can be compared line-by-line with the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass
class Series:
    """One labelled curve: x (offered load) -> y (metric)."""

    label: str
    points: Dict[float, float] = field(default_factory=dict)

    def add(self, x: float, y: float) -> None:
        """Record one point."""
        self.points[float(x)] = float(y)

    def xs(self) -> List[float]:
        """Sorted x values."""
        return sorted(self.points)

    def value_at(self, x: float) -> float:
        """The y value at ``x`` (must exist)."""
        return self.points[float(x)]


@dataclass
class Table:
    """A figure-shaped result: several series over a common x axis."""

    title: str
    x_label: str
    y_label: str
    series: List[Series] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_series(self, series: Series) -> None:
        """Attach one curve."""
        self.series.append(series)

    def get_series(self, label: str) -> Series:
        """Find a curve by label."""
        for candidate in self.series:
            if candidate.label == label:
                return candidate
        raise KeyError(f"no series labelled {label!r}")

    def xs(self) -> List[float]:
        """Union of all x values, sorted."""
        values = set()
        for series in self.series:
            values.update(series.points)
        return sorted(values)

    def to_rows(self) -> List[Tuple[float, ...]]:
        """Rows of ``(x, y_series1, y_series2, ...)`` with NaN for gaps."""
        rows = []
        for x in self.xs():
            row = [x]
            for series in self.series:
                row.append(series.points.get(x, float("nan")))
            rows.append(tuple(row))
        return rows

    def format_text(self, precision: int = 4) -> str:
        """Render as an aligned text table."""
        header = [self.x_label] + [series.label for series in self.series]
        rows = [
            [f"{value:.{precision}g}" for value in row]
            for row in self.to_rows()
        ]
        widths = [
            max(len(header[i]), *(len(row[i]) for row in rows))
            if rows
            else len(header[i])
            for i in range(len(header))
        ]
        lines = [self.title, ""]
        lines.append(
            "  ".join(h.rjust(w) for h, w in zip(header, widths))
        )
        lines.append("  ".join("-" * w for w in widths))
        for row in rows:
            lines.append(
                "  ".join(cell.rjust(w) for cell, w in zip(row, widths))
            )
        if self.notes:
            lines.append("")
            lines.extend(f"note: {note}" for note in self.notes)
        return "\n".join(lines)


@dataclass
class ExperimentResult:
    """Everything an experiment produced."""

    experiment_id: str
    description: str
    tables: List[Table]
    paper_expectations: List[str] = field(default_factory=list)

    def format_text(self) -> str:
        """Render all tables plus the paper's expected findings."""
        parts = [f"== {self.experiment_id}: {self.description} =="]
        for table in self.tables:
            parts.append("")
            parts.append(table.format_text())
        if self.paper_expectations:
            parts.append("")
            parts.append("Paper expectations:")
            parts.extend(f"  * {line}" for line in self.paper_expectations)
        return "\n".join(parts)
