"""The smoothly degrading system of Avritzer & Weyuker (ref. [3]).

The paper's opening citation -- "Monitoring smoothly degrading systems
for increased dependability" (*Empirical Software Engineering* 1997) --
studies telecommunication systems whose *capacity* erodes gradually
(leaked resources disable worker capacity one unit at a time) under
predictably periodic traffic, and which operators restore with software
procedures that "free allocated memory, release database locks, and
reinitialize operating system tables".

:class:`~repro.degradation.system.DegradableSystem` implements that
model on the shared DES kernel: an M/M/c queue whose server count
decays stochastically and is restored by rejuvenation.  It is a second,
independent substrate for the decision rules of :mod:`repro.core` --
aging here attacks *capacity* (queueing delay grows smoothly) rather
than stalling everything at once like the e-commerce model's garbage
collector, so it exercises the detectors on slow-drift degradation.
"""

from repro.degradation.system import DegradableSystem, DegradationResult

__all__ = ["DegradableSystem", "DegradationResult"]
