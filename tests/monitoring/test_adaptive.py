"""Adaptive SLO estimation."""

import numpy as np
import pytest

from repro.core.sla import ServiceLevelObjective
from repro.monitoring.adaptive import AdaptiveSLO

BASE = ServiceLevelObjective(mean=5.0, std=5.0)


class TestTracking:
    def test_tracks_slow_drift(self):
        # Average the EWMA over its tail to wash out its own
        # fluctuation (sigma * sqrt(alpha / (2 - alpha)) around truth).
        slo = AdaptiveSLO(BASE, alpha=0.02)
        rng = np.random.default_rng(0)
        tail = []
        for i in range(8_000):
            slo.update(rng.exponential(6.0))
            if i >= 2_000:
                tail.append(slo.current().mean)
        assert float(np.mean(tail)) == pytest.approx(6.0, rel=0.1)

    def test_estimates_std(self):
        slo = AdaptiveSLO(BASE, alpha=0.02)
        rng = np.random.default_rng(1)
        for _ in range(8_000):
            slo.update(rng.normal(5.0, 2.0))
        assert slo.current().std == pytest.approx(2.0, rel=0.2)

    def test_stationary_stream_stays_put(self):
        slo = AdaptiveSLO(BASE, alpha=0.01)
        rng = np.random.default_rng(2)
        for _ in range(5_000):
            slo.update(rng.exponential(5.0))
        assert slo.current().mean == pytest.approx(5.0, rel=0.15)
        assert slo.current().std == pytest.approx(5.0, rel=0.25)


class TestGuard:
    def test_degraded_samples_rejected(self):
        slo = AdaptiveSLO(BASE, alpha=0.1, guard_sigmas=4.0)
        assert slo.update(500.0) is False
        assert slo.rejected == 1
        assert slo.current().mean == pytest.approx(5.0)

    def test_baseline_does_not_chase_degradation(self):
        # A sustained 10x degradation must not be absorbed.
        slo = AdaptiveSLO(BASE, alpha=0.05, guard_sigmas=4.0)
        rng = np.random.default_rng(3)
        for _ in range(500):
            slo.update(rng.exponential(5.0))
        mean_before = slo.current().mean
        for _ in range(500):
            slo.update(50.0 + rng.exponential(10.0))
        assert slo.current().mean < mean_before * 2.0
        assert slo.rejection_fraction > 0.3

    def test_low_values_always_accepted(self):
        slo = AdaptiveSLO(BASE, alpha=0.1)
        assert slo.update(0.0) is True

    def test_rejection_fraction_empty(self):
        assert AdaptiveSLO(BASE).rejection_fraction == 0.0


class TestValidation:
    def test_alpha_bounds(self):
        with pytest.raises(ValueError):
            AdaptiveSLO(BASE, alpha=0.0)
        with pytest.raises(ValueError):
            AdaptiveSLO(BASE, alpha=1.5)

    def test_guard_positive(self):
        with pytest.raises(ValueError):
            AdaptiveSLO(BASE, guard_sigmas=0.0)

    def test_current_returns_valid_slo(self):
        slo = AdaptiveSLO(BASE)
        current = slo.current()
        assert current.mean == 5.0
        assert current.std == 5.0
