"""Event objects and the pending-event set.

The event queue is a binary heap ordered by ``(time, sequence)``.  The
monotonically increasing sequence number gives deterministic FIFO ordering
for events scheduled at the same simulated time, which keeps replications
bit-for-bit reproducible for a given seed.

Cancellation is *lazy*: :meth:`EventQueue.cancel` marks the event and the
heap discards cancelled entries when they surface.  This is the standard
technique for discrete-event kernels where reschedules are common (e.g. a
garbage-collection stall postponing every in-service completion).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterator, Optional


class Event:
    """A scheduled occurrence in simulated time.

    Parameters
    ----------
    time:
        Absolute simulated time at which the event fires.
    action:
        Zero-argument callable invoked when the event fires.
    kind:
        Free-form tag used for introspection and tracing (e.g. ``"arrival"``).
    payload:
        Arbitrary data carried by the event; not interpreted by the kernel.
    """

    __slots__ = ("time", "action", "kind", "payload", "sequence", "cancelled")

    def __init__(
        self,
        time: float,
        action: Callable[[], None],
        kind: str = "",
        payload: Any = None,
    ) -> None:
        self.time = float(time)
        self.action = action
        self.kind = kind
        self.payload = payload
        self.sequence = -1  # assigned by the queue on scheduling
        self.cancelled = False

    def cancel(self) -> None:
        """Mark this event so the queue will skip it."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.sequence) < (other.time, other.sequence)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6g}, kind={self.kind!r}, {state})"


class EventQueue:
    """A time-ordered set of pending events with lazy cancellation."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._sequence = 0
        self._live = 0

    def __len__(self) -> int:
        """Number of *non-cancelled* events still pending."""
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, event: Event) -> Event:
        """Schedule ``event`` and return it (for later cancellation)."""
        if event.cancelled:
            raise ValueError("cannot schedule a cancelled event")
        if event.sequence != -1:
            raise ValueError("event is already scheduled")
        event.sequence = self._sequence
        self._sequence += 1
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event.

        Cancelling an already-cancelled or already-fired event is a no-op,
        which makes caller-side bookkeeping simpler.
        """
        if not event.cancelled and event.sequence != -1:
            event.cancelled = True
            self._live -= 1

    def peek(self) -> Optional[Event]:
        """Return the next live event without removing it, or ``None``."""
        self._drop_cancelled()
        return self._heap[0] if self._heap else None

    def pop(self) -> Event:
        """Remove and return the next live event.

        Raises
        ------
        IndexError
            If the queue holds no live events.
        """
        self._drop_cancelled()
        if not self._heap:
            raise IndexError("pop from an empty event queue")
        event = heapq.heappop(self._heap)
        self._live -= 1
        return event

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()
        self._live = 0

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)

    def iter_pending(self) -> Iterator[Event]:
        """Iterate over live events in an unspecified order (for tests)."""
        return (event for event in self._heap if not event.cancelled)
