"""Substrate polymorphism: jobs, campaigns, and node-targeted faults
behave identically on every backend and dispatch by system kind."""

import dataclasses

import pytest

from repro.core.spec import PolicySpec
from repro.ecommerce.config import PAPER_CONFIG
from repro.ecommerce.runner import run_replications
from repro.ecommerce.spec import ArrivalSpec
from repro.exec.backends import make_backend, use_backend
from repro.exec.jobs import ReplicationJob, execute_job
from repro.faults.campaign import run_campaign
from repro.faults.injectors import NodeCrash, NodeHang
from repro.faults.zoo import get_scenario
from repro.systems import ClusterSpec, FleetSpec


def _job(system, n=800, seed=3):
    return ReplicationJob(
        config=PAPER_CONFIG,
        arrival=ArrivalSpec.poisson(1.6),
        policy=PolicySpec.sraa(2, 5, 3),
        n_transactions=n,
        seed=seed,
        system=system,
    )


class TestDefaultPathUnchanged:
    def test_none_and_ecommerce_kind_bit_identical(self):
        assert execute_job(_job(None)) == execute_job(_job("ecommerce"))


class TestBackendBitIdentity:
    """Serial and process-pool runs agree on every substrate."""

    @pytest.mark.parametrize(
        "system",
        [
            None,
            ClusterSpec(n_nodes=3),
            FleetSpec(n_nodes=6, shards=2),
        ],
        ids=["ecommerce", "cluster", "fleet"],
    )
    def test_replications_identical(self, system):
        kwargs = dict(
            config=PAPER_CONFIG,
            arrival=ArrivalSpec.poisson(1.6),
            policy=PolicySpec.sraa(2, 5, 3),
            n_transactions=400,
            replications=2,
            seed=11,
            system=system,
        )
        serial = run_replications(backend="serial", **kwargs)
        pooled = run_replications(
            backend=make_backend("process", workers=2), **kwargs
        )
        assert serial == pooled


class TestCampaignSubstrates:
    def _scores(self, system, backend):
        scenario = get_scenario("false_aging", 400.0)
        result = run_campaign(
            [scenario],
            {"SRAA": PolicySpec.sraa(2, 5, 3)},
            replications=2,
            seed=0,
            backend=backend,
            system=system,
        )
        return result.scores

    @pytest.mark.parametrize(
        "system",
        ["cluster", FleetSpec(n_nodes=6, shards=2)],
        ids=["cluster", "fleet"],
    )
    def test_campaign_bit_identical_across_backends(self, system):
        serial = self._scores(system, "serial")
        pooled = self._scores(system, make_backend("process", workers=2))
        assert serial == pooled

    def test_substrates_change_outcomes(self):
        single = self._scores(None, "serial")
        cluster = self._scores("cluster", "serial")
        assert single != cluster

    def test_scenario_horizon_preserved_by_scaling(self):
        # job_transactions scales the budget with node count, so the
        # simulated-time horizon (where scripted faults live) holds.
        from repro.faults.campaign import campaign_jobs

        scenario = get_scenario("false_aging", 400.0)
        jobs = campaign_jobs(
            [scenario],
            {"SRAA": PolicySpec.sraa(2, 5, 3)},
            1,
            system=ClusterSpec(n_nodes=4),
        )
        assert jobs[0].n_transactions == 4 * scenario.n_transactions


class TestNodeTargetedFaults:
    def _cluster_run(self, injections, n_nodes=3, seed=5):
        from repro.faults.scenario import FaultScenario

        scenario = FaultScenario(
            name="targeted",
            description="node-targeted faults",
            config=PAPER_CONFIG,
            arrival=ArrivalSpec.poisson(1.6),
            n_transactions=900,
            injections=injections,
        )
        job = dataclasses.replace(
            _job(ClusterSpec(n_nodes=n_nodes), n=900 * n_nodes, seed=seed),
            faults=scenario,
        )
        return execute_job(job)

    def test_crash_one_node_loses_less_than_crashing_all(self):
        one = self._cluster_run((NodeCrash(at_s=200.0, node=1),))
        all_nodes = self._cluster_run((NodeCrash(at_s=200.0),))
        assert one.lost <= all_nodes.lost

    def test_single_node_system_rejects_out_of_range_target(self):
        from repro.ecommerce.system import ECommerceSystem
        from repro.ecommerce.workload import PoissonArrivals

        system = ECommerceSystem(
            PAPER_CONFIG, PoissonArrivals(1.6), seed=0
        )
        with pytest.raises(ValueError, match="out of range"):
            system.fault_nodes(2)
        assert system.fault_nodes(0) == [system.node]
        assert system.fault_nodes() == [system.node]

    def test_cluster_global_index_resolves_locally(self):
        from repro.cluster.system import ClusterSystem
        from repro.ecommerce.workload import PoissonArrivals

        shard = ClusterSystem(
            PAPER_CONFIG,
            3,
            PoissonArrivals(3 * 1.6),
            lambda: None,
            seed=0,
            first_node_index=3,
            total_nodes=9,
        )
        assert shard.fault_nodes(4) == [shard.nodes[1]]
        assert shard.fault_nodes(0) == []  # lives in another shard
        assert len(shard.fault_nodes()) == 3
        with pytest.raises(ValueError, match="out of range"):
            shard.fault_nodes(9)

    def test_off_shard_target_is_a_noop(self):
        # A hang aimed at node 5 of a 3-node cluster slice (nodes 0-2
        # of 6) must not fire -- that node lives elsewhere.
        from repro.cluster.system import ClusterSystem
        from repro.ecommerce.workload import PoissonArrivals

        def run_shard(faults):
            shard = ClusterSystem(
                PAPER_CONFIG,
                3,
                PoissonArrivals(3 * 1.6),
                lambda: None,
                seed=5,
                first_node_index=0,
                total_nodes=6,
                faults=faults,
            )
            return shard.run(2700)

        clean = run_shard(())
        hung = run_shard((NodeHang(at_s=200.0, hang_s=60.0, node=5),))
        assert clean.avg_response_time == hung.avg_response_time
        assert clean.lost == hung.lost
