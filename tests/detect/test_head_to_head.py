"""The detector head-to-head campaign: resolution, determinism, wins.

The module-scoped campaign covers the two scenarios the acceptance
criteria name (the saturation ramp and a clean aging onset) against
the full six-policy lineup; the committed full-zoo robustness table
(``ci/detectors_robustness.csv``) is pinned separately so the numbers
the docs cite cannot drift from what the code produces.
"""

import csv
import pathlib

import pytest

from repro.detect import DETECTOR_POLICIES, head_to_head_policies
from repro.exec.backends import ProcessPoolBackend, SerialBackend
from repro.faults.campaign import (
    DEFAULT_POLICIES,
    resolve_policies,
    run_campaign,
)
from repro.faults.zoo import get_scenario

REPO = pathlib.Path(__file__).resolve().parent.parent.parent
HORIZON_S = 600.0
REPLICATIONS = 2


def _scenarios():
    return [
        get_scenario(name, HORIZON_S)
        for name in ("workload_ramp", "aging_onset")
    ]


def _run(backend):
    return run_campaign(
        scenarios=_scenarios(),
        policies=head_to_head_policies(),
        replications=REPLICATIONS,
        seed=2006,
        backend=backend,
    )


@pytest.fixture(scope="module")
def campaign():
    return _run(SerialBackend())


class TestResolution:
    def test_lineup_is_paper_trio_plus_detectors(self):
        lineup = head_to_head_policies()
        assert list(lineup) == [
            "SRAA", "SARAA", "CLTA", "ADAPTIVE", "ENTROPY", "TREND",
        ]
        assert lineup["ADAPTIVE"].name == "adaptive"
        assert lineup["ENTROPY"].name == "entropy"
        # The TREND label means the projection detector...
        assert lineup["TREND"].name == "predictor"

    def test_detector_labels_resolve_case_insensitively(self):
        resolved = resolve_policies("adaptive,Entropy,TREND")
        assert [spec.name for spec in resolved.values()] == [
            "adaptive", "entropy", "predictor",
        ]

    def test_factory_name_trend_stays_mann_kendall(self):
        # ...while the lowercase factory name keeps the Mann-Kendall
        # policy it always meant.
        resolved = resolve_policies("trend")
        assert list(resolved) == ["trend"]
        assert resolved["trend"].name == "trend"

    def test_unknown_name_lists_valid_spellings(self):
        with pytest.raises(ValueError) as error:
            resolve_policies("SRAA,bogus")
        message = str(error.value)
        for spelling in ("SRAA", "ADAPTIVE", "ENTROPY", "TREND", "sraa"):
            assert spelling in message

    def test_default_policies_unchanged(self):
        assert list(DEFAULT_POLICIES) == ["SRAA", "SARAA", "CLTA"]
        assert list(DETECTOR_POLICIES) == ["ADAPTIVE", "ENTROPY", "TREND"]


class TestDeterminism:
    def test_serial_and_pool_backends_bit_identical(self, campaign):
        pooled = _run(ProcessPoolBackend(workers=2))
        assert pooled.scores == campaign.scores
        assert pooled.runs == campaign.runs


class TestAdaptiveWins:
    def test_adaptive_clean_on_the_saturation_ramp(self, campaign):
        fa = {
            (s.scenario, s.policy): s.false_alarms_per_healthy_hour
            for s in campaign.scores
        }
        assert fa[("workload_ramp", "ADAPTIVE")] == 0.0
        assert (
            fa[("workload_ramp", "ADAPTIVE")]
            < fa[("workload_ramp", "SRAA")]
        )

    def test_nobody_misses_the_genuine_onset(self, campaign):
        for score in campaign.scores:
            if score.scenario == "aging_onset":
                assert score.missed == 0, score.policy


class TestCommittedTable:
    """The acceptance criteria, pinned against the committed artifact."""

    @pytest.fixture(scope="class")
    def table(self):
        path = REPO / "ci" / "detectors_robustness.csv"
        with open(path, newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert rows, "ci/detectors_robustness.csv must not be empty"
        return {
            (row["scenario"], row["policy"]): row for row in rows
        }

    def test_covers_full_zoo_times_six_policies(self, table):
        from repro.faults.zoo import scenario_names

        scenarios = {key[0] for key in table}
        policies = {key[1] for key in table}
        assert scenarios == set(scenario_names())
        assert policies == set(head_to_head_policies())

    def test_adaptive_beats_sraa_on_workload_scenarios(self, table):
        def fa(scenario, policy):
            return float(
                table[(scenario, policy)]["false_alarms_per_healthy_hour"]
            )

        assert fa("workload_shift", "ADAPTIVE") <= fa(
            "workload_shift", "SRAA"
        )
        assert fa("workload_ramp", "ADAPTIVE") < fa(
            "workload_ramp", "SRAA"
        )
        combined_adaptive = fa("workload_shift", "ADAPTIVE") + fa(
            "workload_ramp", "ADAPTIVE"
        )
        combined_sraa = fa("workload_shift", "SRAA") + fa(
            "workload_ramp", "SRAA"
        )
        assert combined_adaptive < combined_sraa

    def test_no_policy_misses_the_clean_onset(self, table):
        for policy in head_to_head_policies():
            assert table[("aging_onset", policy)]["missed"] == "0"
