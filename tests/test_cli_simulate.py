"""The `repro simulate` subcommand."""

import pytest

from repro.cli import main


class TestSimulate:
    def test_sraa_run(self, capsys):
        code = main(
            [
                "simulate",
                "--policy", "sraa",
                "-p", "n=2", "-p", "K=5", "-p", "D=3",
                "--load", "9",
                "--transactions", "2000",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "SRAA(n=2, K=5, D=3)" in out
        assert "avg response time" in out
        assert "rejuvenations" in out

    def test_none_policy(self, capsys):
        code = main(
            ["simulate", "--policy", "none", "--load", "1",
             "--transactions", "1000"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "no rejuvenation" in out
        assert "rejuvenations     : 0" in out

    def test_float_params(self, capsys):
        code = main(
            ["simulate", "--policy", "clta", "-p", "n=15", "-p", "z=2.33",
             "--load", "2", "--transactions", "1000"]
        )
        assert code == 0
        assert "CLTA(n=15, z=2.33)" in capsys.readouterr().out

    def test_replications_reported(self, capsys):
        code = main(
            ["simulate", "--policy", "periodic", "-p", "period=200",
             "--load", "3", "--transactions", "1000",
             "--replications", "2"]
        )
        assert code == 0
        assert "2 x 1000" in capsys.readouterr().out

    def test_bad_param_syntax(self):
        with pytest.raises(SystemExit):
            main(["simulate", "-p", "n", "--transactions", "1000"])

    def test_bad_param_value(self):
        with pytest.raises(SystemExit):
            main(["simulate", "-p", "n=abc", "--transactions", "1000"])

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            main(
                ["simulate", "--policy", "quantum",
                 "--transactions", "1000"]
            )
