"""``repro watch``: one-shot rule evaluation and live alert tailing.

Two modes, both backed by the same :class:`~repro.obs.sentinel.engine.AlertEngine`:

* :func:`watch_tick` evaluates a rule set once, offline: burn-rate
  rules replay a recorded trace (JSONL or ``.rcol``) through
  :func:`~repro.obs.sentinel.engine.replay_trace`, regression rules
  walk the run ledger's entries in append order.  Deterministic on
  fixed inputs; exits 1 when any incident is open, 0 otherwise --
  cron- and CI-friendly.
* :func:`follow_alerts` attaches to a serve process's SSE channel and
  prints incident transitions as they happen.  On disconnect it
  reconnects with exponential backoff, presenting the last ``id:`` it
  saw as ``Last-Event-ID`` so the broker's replay ring fills the gap.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Any, Callable, Dict, Iterable, List, Optional, TextIO

from repro.obs.sentinel.engine import AlertEngine, replay_trace
from repro.obs.sentinel.sinks import format_transition

__all__ = ["watch_tick", "follow_alerts"]

#: Reconnect backoff: first retry after this many seconds, doubling.
BACKOFF_INITIAL_S = 0.5

#: Backoff ceiling.
BACKOFF_MAX_S = 30.0


def watch_tick(
    rules: Iterable[Any],
    trace: Optional[str] = None,
    ledger: Any = None,
    alerts: Any = None,
    sinks: Iterable[Any] = (),
    snapshot_every: int = 500,
    slo_s: Optional[float] = None,
    json_out: bool = False,
    stream: Optional[TextIO] = None,
) -> int:
    """Evaluate the rules once over recorded inputs; returns exit code."""
    out = stream if stream is not None else sys.stdout
    engine = AlertEngine(
        rules=rules, ledger=ledger, alerts=alerts, sinks=sinks
    )
    if trace is not None:
        replay_trace(
            trace, engine, snapshot_every=snapshot_every, slo_s=slo_s
        )
    if ledger is not None:
        for entry in ledger.entries():
            engine.observe_entry(entry)
    incidents = engine.incidents()
    if json_out:
        out.write(
            json.dumps(
                {
                    "open": sum(
                        1 for i in incidents if i["status"] == "open"
                    ),
                    "incidents": incidents,
                    "rules": [rule.describe() for rule in engine.rules],
                },
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )
    else:
        if not incidents:
            out.write("no incidents\n")
        for incident in incidents:
            action = (
                "open" if incident["status"] == "open" else "close"
            )
            out.write(
                format_transition(
                    {"action": action, "incident": incident}
                )
                + "\n"
            )
    open_count = sum(1 for i in incidents if i["status"] == "open")
    return 1 if open_count else 0


# ---------------------------------------------------------------------------
# Follow mode
# ---------------------------------------------------------------------------
def _iter_sse(response: Any) -> Iterable[Dict[str, Any]]:
    """Parse one SSE response into event dicts, tolerating keepalives."""
    event: Dict[str, Any] = {}
    for raw in response:
        line = raw.decode("utf-8", "replace").rstrip("\r\n")
        if not line:
            if "event" in event:
                yield event
            event = {}
            continue
        if line.startswith(":"):
            continue  # keepalive comment
        if ":" in line:
            field, _, value = line.partition(":")
            event[field.strip()] = value.lstrip()
    if "event" in event:  # pragma: no cover - truncated final frame
        yield event


def follow_alerts(
    url: str,
    max_events: Optional[int] = None,
    timeout_s: Optional[float] = None,
    events: Iterable[str] = ("alert",),
    stream: Optional[TextIO] = None,
    sleep: Callable[[float], None] = time.sleep,
    max_retries: Optional[int] = None,
) -> int:
    """Tail a serve process's alert stream; returns events printed.

    ``url`` is the server base (or full ``/api/events`` URL).  Each
    reconnect announces the last seen ``id:`` via ``Last-Event-ID`` so
    the server's replay ring fills any gap; consecutive failures back
    off exponentially (``BACKOFF_INITIAL_S`` doubling to
    ``BACKOFF_MAX_S``) and a successful connection resets the backoff.
    ``max_events``/``timeout_s`` bound the session for tests and CI;
    ``max_retries`` caps *consecutive* failed connection attempts.
    """
    import urllib.error
    import urllib.request

    out = stream if stream is not None else sys.stdout
    base = url.rstrip("/")
    if not base.endswith("/api/events"):
        base = base + "/api/events"
    wanted = set(events)
    printed = 0
    last_seq: Optional[int] = None
    failures = 0
    deadline = (
        time.monotonic() + timeout_s if timeout_s is not None else None
    )
    while max_events is None or printed < max_events:
        if deadline is not None and time.monotonic() >= deadline:
            break
        query = []
        if max_events is not None:
            query.append(f"max_events={max_events - printed + 8}")
        if deadline is not None:
            remaining = max(0.1, deadline - time.monotonic())
            query.append(f"timeout_s={remaining:.3f}")
        target = base + ("?" + "&".join(query) if query else "")
        request = urllib.request.Request(target)
        if last_seq is not None:
            request.add_header("Last-Event-ID", str(last_seq))
        try:
            with urllib.request.urlopen(request, timeout=30.0) as response:
                failures = 0
                for event in _iter_sse(response):
                    etype = event.get("event", "")
                    if "id" in event:
                        try:
                            last_seq = int(event["id"])
                        except ValueError:
                            pass
                    if etype not in wanted:
                        continue
                    try:
                        data = json.loads(event.get("data", "{}"))
                    except json.JSONDecodeError:
                        continue
                    if etype == "alert" and "incident" in data:
                        out.write(format_transition(data) + "\n")
                    else:
                        out.write(
                            f"[{etype}] "
                            + json.dumps(data, sort_keys=True)
                            + "\n"
                        )
                    out.flush()
                    printed += 1
                    if (
                        max_events is not None
                        and printed >= max_events
                    ):
                        break
        except (urllib.error.URLError, OSError, ValueError):
            failures += 1
            if max_retries is not None and failures > max_retries:
                break
            delay = min(
                BACKOFF_INITIAL_S * (2 ** (failures - 1)), BACKOFF_MAX_S
            )
            out.write(
                f"[watch] connection lost; retry {failures} "
                f"in {delay:.1f}s\n"
            )
            out.flush()
            sleep(delay)
            continue
        else:
            # Server closed the stream (bounds hit or restart window).
            if max_events is not None and printed >= max_events:
                break
            if deadline is not None and time.monotonic() >= deadline:
                break
            sleep(BACKOFF_INITIAL_S)
    return printed
