"""Replication harness behaviour."""

import numpy as np
import pytest

from repro.core.sla import ServiceLevelObjective
from repro.core.sraa import SRAA
from repro.ecommerce.config import PAPER_CONFIG
from repro.ecommerce.runner import (
    run_once,
    run_replications,
    simulate_mmc_response_times,
)
from repro.ecommerce.workload import PoissonArrivals

SLO = ServiceLevelObjective(mean=5.0, std=5.0)


class TestRunOnce:
    def test_returns_result(self):
        result = run_once(
            PAPER_CONFIG, PoissonArrivals(1.0), None, 1_000, seed=0
        )
        assert result.completed + result.lost == 1_000


class TestRunReplications:
    def test_replication_count(self):
        replicated = run_replications(
            PAPER_CONFIG,
            arrival_factory=lambda: PoissonArrivals(1.0),
            policy_factory=lambda: None,
            n_transactions=800,
            replications=3,
            seed=1,
        )
        assert replicated.n_replications == 3

    def test_replications_are_independent(self):
        replicated = run_replications(
            PAPER_CONFIG,
            arrival_factory=lambda: PoissonArrivals(1.6),
            policy_factory=lambda: None,
            n_transactions=2_000,
            replications=3,
            seed=2,
        )
        rts = [r.avg_response_time for r in replicated.runs]
        assert len(set(rts)) == 3  # distinct draws per replication

    def test_fresh_policy_per_replication(self):
        built = []

        def factory():
            policy = SRAA(SLO, sample_size=1, n_buckets=1, depth=1)
            built.append(policy)
            return policy

        run_replications(
            PAPER_CONFIG,
            arrival_factory=lambda: PoissonArrivals(1.8),
            policy_factory=factory,
            n_transactions=500,
            replications=2,
            seed=3,
        )
        assert len(built) == 2
        assert built[0] is not built[1]

    def test_seed_controls_outcome(self):
        def run(seed):
            return run_replications(
                PAPER_CONFIG,
                arrival_factory=lambda: PoissonArrivals(1.6),
                policy_factory=lambda: None,
                n_transactions=1_000,
                replications=2,
                seed=seed,
            ).avg_response_time

        assert run(5) == run(5)
        assert run(5) != run(6)

    def test_validation(self):
        with pytest.raises(ValueError):
            run_replications(
                PAPER_CONFIG,
                arrival_factory=lambda: PoissonArrivals(1.0),
                policy_factory=lambda: None,
                n_transactions=100,
                replications=0,
            )


class TestMMcShortcut:
    def test_returns_all_response_times(self):
        rts = simulate_mmc_response_times(1.6, 2_000, seed=4)
        assert isinstance(rts, np.ndarray)
        assert rts.shape == (2_000,)

    def test_mean_matches_theory(self):
        rts = simulate_mmc_response_times(1.6, 30_000, seed=5)
        assert rts.mean() == pytest.approx(5.006, rel=0.03)

    def test_degradation_mechanisms_disabled(self):
        # No GC: no response time can reach the 60 s pause magnitude
        # at this load.
        rts = simulate_mmc_response_times(0.5, 5_000, seed=6)
        assert rts.max() < 60.0
