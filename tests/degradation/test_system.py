"""The smoothly degrading system of ref. [3]."""

import pytest

from repro.core.baselines import PeriodicRejuvenation
from repro.core.sla import ServiceLevelObjective
from repro.core.sraa import SRAA
from repro.core.trend import TrendPolicy
from repro.degradation.system import DegradableSystem
from repro.ecommerce.workload import PeriodicArrivals, PoissonArrivals


def make_system(
    degradation_rate=1 / 200.0,
    policy=None,
    rate=2.0,
    c_max=8,
    min_capacity=2,
    seed=0,
):
    return DegradableSystem(
        c_max=c_max,
        service_rate=0.5,
        degradation_rate=degradation_rate,
        min_capacity=min_capacity,
        arrivals=PoissonArrivals(rate),
        policy=policy,
        seed=seed,
    )


class TestConservation:
    def test_all_transactions_resolve(self):
        result = make_system().run(3_000)
        assert result.completed + result.lost == 3_000

    def test_no_policy_no_loss(self):
        result = make_system().run(2_000)
        assert result.lost == 0
        assert result.rejuvenations == 0

    def test_reproducible(self):
        a = make_system(seed=4).run(2_000)
        b = make_system(seed=4).run(2_000)
        assert a.avg_response_time == b.avg_response_time
        assert a.degradation_events == b.degradation_events

    def test_rerun_resets(self):
        system = make_system()
        system.run(1_000)
        result = system.run(1_000)
        assert result.arrivals == 1_000


class TestDegradationMechanics:
    def test_capacity_erodes_to_floor(self):
        # Fast degradation: the floor is reached and respected.
        result = make_system(degradation_rate=1 / 10.0).run(4_000)
        assert result.final_capacity == 2
        assert result.degradation_events == 8 - 2

    def test_no_degradation_is_plain_mmc(self):
        result = make_system(degradation_rate=0.0).run(6_000)
        assert result.degradation_events == 0
        assert result.final_capacity == 8
        # M/M/8 with rho = 0.5: mean RT slightly above 1/mu = 2.
        assert result.avg_response_time == pytest.approx(2.0, rel=0.1)

    def test_degradation_raises_response_times(self):
        healthy = make_system(degradation_rate=0.0, seed=6).run(6_000)
        degraded = make_system(degradation_rate=1 / 50.0, seed=6).run(6_000)
        assert (
            degraded.avg_response_time > 1.5 * healthy.avg_response_time
        )

    def test_in_flight_work_survives_capacity_loss(self):
        # Capacity is taken as servers free up; no transaction dies
        # from degradation alone.
        result = make_system(degradation_rate=1 / 5.0).run(2_000)
        assert result.lost == 0


class TestRejuvenation:
    def test_restores_capacity(self):
        system = make_system(
            degradation_rate=1 / 20.0,
            policy=PeriodicRejuvenation(period=500),
        )
        result = system.run(4_000)
        assert result.rejuvenations > 0
        # Without restoration, at most c_max - min_capacity = 6
        # degradation events are possible; far more were recorded, so
        # capacity must have been restored repeatedly in between.
        assert result.degradation_events > 6 * result.rejuvenations / 2

    def test_rejuvenation_controls_drift(self):
        slo = ServiceLevelObjective(mean=2.0, std=2.0)
        unmanaged = make_system(degradation_rate=1 / 100.0, seed=8).run(8_000)
        managed = make_system(
            degradation_rate=1 / 100.0,
            policy=SRAA(slo, sample_size=2, n_buckets=3, depth=3),
            seed=8,
        ).run(8_000)
        assert managed.avg_response_time < unmanaged.avg_response_time
        assert managed.lost > 0  # the price

    def test_trend_policy_catches_slow_drift(self):
        # The regime ref. [3] cares about: no abrupt stalls, just a
        # slowly rising mean -- trend detection works here.
        slo_free_policy = TrendPolicy(sample_size=10, window=10, alpha=0.05)
        result = make_system(
            degradation_rate=1 / 60.0, policy=slo_free_policy, seed=9
        ).run(8_000)
        assert result.rejuvenations > 0

    def test_periodic_traffic_supported(self):
        system = DegradableSystem(
            c_max=8,
            service_rate=0.5,
            degradation_rate=1 / 100.0,
            min_capacity=2,
            arrivals=PeriodicArrivals(2.0, amplitude=0.5, period_s=600.0),
            policy=PeriodicRejuvenation(period=1_000),
            seed=10,
        )
        result = system.run(5_000)
        assert result.completed + result.lost == 5_000


class TestValidation:
    def test_parameters(self):
        with pytest.raises(ValueError):
            make_system(c_max=0)
        with pytest.raises(ValueError):
            DegradableSystem(4, 0.0, 0.1, PoissonArrivals(1.0))
        with pytest.raises(ValueError):
            DegradableSystem(4, 1.0, -0.1, PoissonArrivals(1.0))
        with pytest.raises(ValueError):
            DegradableSystem(
                4, 1.0, 0.1, PoissonArrivals(1.0), min_capacity=5
            )
        with pytest.raises(ValueError):
            make_system().run(0)

    def test_collect_response_times(self):
        result = make_system().run(500, collect_response_times=True)
        assert result.response_times is not None
        assert len(result.response_times) == result.completed
