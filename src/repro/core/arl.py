"""Exact run-length analysis of the bucket chain (beyond the paper).

The paper evaluates SRAA/SARAA purely by simulation.  But the bucket
chain driven by i.i.d. batch means *is* an absorbing discrete-time
Markov chain on the states ``(N, d)``: each completed batch exceeds the
current bucket's target with some probability ``p_N``, and the Fig. 6
update rules are deterministic given that outcome.  This module solves
that chain exactly, giving the two numbers that explain all of
Figures 9-16:

* the **in-control ARL** -- expected batches between *false* triggers
  when the system is healthy (times ``n``, the expected transactions
  lost budget period: this is Fig. 10's low-load loss axis);
* the **out-of-control ARL** -- expected batches to detection once the
  metric has shifted (times ``n``, the detection latency behind
  Fig. 9's response-time axis).

This is the classical average-run-length machinery of the control-chart
literature (CUSUM/EWMA), applied to the paper's detector.  The
exceedance probabilities come from the exact sample-mean law
(:class:`repro.ctmc.sample_mean.SampleMeanChain`) for a healthy M/M/c
system, or from any caller-supplied law for shifted scenarios.

The i.i.d. assumption is the same one the paper's Section-4.1
autocorrelation study licenses; the Monte-Carlo cross-check lives in
the tests.
"""

from __future__ import annotations

from typing import Callable, Sequence, Union

import numpy as np

ExceedProbs = Union[float, Sequence[float]]


class BucketChainARL:
    """Exact run lengths of a ``(K, D)`` bucket chain.

    Parameters
    ----------
    n_buckets, depth:
        ``K`` and ``D`` exactly as in
        :class:`~repro.core.buckets.BucketChain`.

    Examples
    --------
    A one-bucket, depth-one chain triggered by certain exceedances
    fires after exactly ``(D+1)K = 2`` batches:

    >>> BucketChainARL(1, 1).mean_batches_to_trigger(1.0)
    2.0
    """

    def __init__(self, n_buckets: int, depth: int) -> None:
        if n_buckets < 1:
            raise ValueError("need at least one bucket (K >= 1)")
        if depth < 1:
            raise ValueError("bucket depth must be >= 1 (D >= 1)")
        self.n_buckets = int(n_buckets)
        self.depth = int(depth)

    # ------------------------------------------------------------------
    def _state_index(self, level: int, fill: int) -> int:
        return level * (self.depth + 1) + fill

    @property
    def n_states(self) -> int:
        """Transient states: K levels x (D+1) fill values."""
        return self.n_buckets * (self.depth + 1)

    def _normalise_probs(self, exceed_probs: ExceedProbs) -> np.ndarray:
        if np.isscalar(exceed_probs):
            probs = np.full(self.n_buckets, float(exceed_probs))
        else:
            probs = np.asarray(exceed_probs, dtype=float)
            if probs.shape != (self.n_buckets,):
                raise ValueError(
                    f"need one exceedance probability per bucket "
                    f"({self.n_buckets}), got shape {probs.shape}"
                )
        if np.any((probs < 0.0) | (probs > 1.0)):
            raise ValueError("probabilities must lie in [0, 1]")
        return probs

    def transition_matrix(
        self, exceed_probs: ExceedProbs
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(Q, t)``: transient-to-transient matrix and trigger vector.

        Row ``(N, d)`` encodes one batch decision under the Fig. 6
        rules with per-level exceedance probabilities ``p_N``.
        """
        probs = self._normalise_probs(exceed_probs)
        size = self.n_states
        Q = np.zeros((size, size))
        trigger = np.zeros(size)
        for level in range(self.n_buckets):
            p = probs[level]
            for fill in range(self.depth + 1):
                row = self._state_index(level, fill)
                # Exceedance: d + 1, possibly overflowing.
                if fill + 1 > self.depth:
                    if level + 1 == self.n_buckets:
                        trigger[row] += p
                    else:
                        Q[row, self._state_index(level + 1, 0)] += p
                else:
                    Q[row, self._state_index(level, fill + 1)] += p
                # Non-exceedance: d - 1, possibly underflowing.
                if fill - 1 < 0:
                    if level > 0:
                        Q[row, self._state_index(level - 1, self.depth)] += (
                            1.0 - p
                        )
                    else:
                        Q[row, self._state_index(0, 0)] += 1.0 - p
                else:
                    Q[row, self._state_index(level, fill - 1)] += 1.0 - p
        return Q, trigger

    # ------------------------------------------------------------------
    def mean_batches_to_trigger(self, exceed_probs: ExceedProbs) -> float:
        """Expected batches until the chain triggers, from a fresh start.

        Solves ``(I - Q) m = 1``; returns ``inf`` when triggering is
        impossible (some required exceedance probability is 0).
        """
        probs = self._normalise_probs(exceed_probs)
        if np.any(probs == 0.0):
            # Every level must be climbed; one with p = 0 blocks the way.
            return float("inf")
        Q, _ = self.transition_matrix(probs)
        try:
            m = np.linalg.solve(
                np.eye(self.n_states) - Q, np.ones(self.n_states)
            )
        except np.linalg.LinAlgError:  # pragma: no cover - p=0 handled above
            return float("inf")
        result = float(m[self._state_index(0, 0)])
        # With near-zero climb probabilities the true ARL exceeds what
        # double precision can resolve and the solve degrades; any
        # result below the provable minimum delay is numerical noise.
        minimum = (self.depth + 1) * self.n_buckets
        if not np.isfinite(result) or result < minimum or result > 1e15:
            return float("inf")
        return result

    def mean_observations_to_trigger(
        self, exceed_probs: ExceedProbs, sample_size: int
    ) -> float:
        """Expected raw observations until trigger (batches x n)."""
        if sample_size < 1:
            raise ValueError("sample size must be >= 1")
        return self.mean_batches_to_trigger(exceed_probs) * sample_size

    def mean_cost_to_trigger(
        self,
        exceed_probs: ExceedProbs,
        cost_per_level: Sequence[float],
    ) -> float:
        """Expected accumulated cost until trigger, with per-level costs.

        Each batch decided while the chain sits at level ``N`` costs
        ``cost_per_level[N]``.  With the cost set to the level's batch
        size this gives the expected *observations* to trigger for
        SARAA, whose acceleration schedule shrinks ``n`` as the level
        rises; with a constant cost it reduces to
        ``mean_batches_to_trigger x cost``.
        """
        probs = self._normalise_probs(exceed_probs)
        costs = np.asarray(cost_per_level, dtype=float)
        if costs.shape != (self.n_buckets,):
            raise ValueError(
                f"need one cost per bucket ({self.n_buckets}), got "
                f"shape {costs.shape}"
            )
        if np.any(costs < 0):
            raise ValueError("costs must be non-negative")
        if np.any(probs == 0.0):
            return float("inf")
        Q, _ = self.transition_matrix(probs)
        cost_vector = np.repeat(costs, self.depth + 1)
        try:
            m = np.linalg.solve(np.eye(self.n_states) - Q, cost_vector)
        except np.linalg.LinAlgError:  # pragma: no cover - p=0 handled above
            return float("inf")
        result = float(m[self._state_index(0, 0)])
        minimum = float((self.depth + 1) * costs.min()) * self.n_buckets
        if not np.isfinite(result) or result < minimum or result > 1e15:
            return float("inf")
        return result

    def trigger_probability_within(
        self, batches: int, exceed_probs: ExceedProbs
    ) -> float:
        """``P(trigger within the first `batches` batch decisions)``."""
        if batches < 0:
            raise ValueError("batch count must be non-negative")
        Q, trigger = self.transition_matrix(exceed_probs)
        state = np.zeros(self.n_states)
        state[self._state_index(0, 0)] = 1.0
        absorbed = 0.0
        for _ in range(batches):
            absorbed += float(state @ trigger)
            state = state @ Q
        return absorbed


def sraa_exceedance_probabilities(
    sf: Callable[[float], float],
    mean: float,
    std: float,
    n_buckets: int,
) -> np.ndarray:
    """Per-level exceedance probabilities for SRAA targets.

    Parameters
    ----------
    sf:
        Survival function of the *batch mean* under the scenario of
        interest (healthy: ``SampleMeanChain(model, n).sf``; shifted:
        any caller-supplied law).
    mean, std:
        The SLO's ``mu_X`` and ``sigma_X`` defining the targets
        ``mu_X + N sigma_X``.
    """
    return np.array(
        [sf(mean + level * std) for level in range(n_buckets)]
    )
