"""Statistical regression checks: z-tests, drift, the persistence filter.

Acceptance pins: an injected regression (doubled service time) is
flagged, and five same-seed reruns of the baseline spec stay quiet.
"""

from dataclasses import replace

import pytest

from repro.core.spec import PolicySpec
from repro.ecommerce.config import SystemConfig
from repro.ecommerce.runner import run_replications
from repro.ecommerce.spec import ArrivalSpec
from repro.exec.backends import SerialBackend
from repro.obs.ledger import (
    Ledger,
    relative_check,
    replicated_outcomes,
    run_check,
    welch_check,
)
from repro.obs.ledger.manifest import simulate_manifest
from repro.obs.ledger.regress import compare_outcomes

CONFIG = SystemConfig()
ARRIVAL = ArrivalSpec.poisson(1.8)
POLICY = PolicySpec.sraa(2, 5, 3)
RUN_KWARGS = dict(
    arrival=ARRIVAL,
    policy=POLICY,
    n_transactions=1500,
    replications=3,
    seed=11,
)


def record(ledger, config=CONFIG, **overrides):
    """Run the scenario and append its entry, like the CLI does."""
    kwargs = dict(RUN_KWARGS)
    kwargs.update(overrides)
    result = run_replications(
        config, backend=SerialBackend(), **kwargs
    )
    manifest = simulate_manifest(
        config=config,
        arrival=kwargs["arrival"],
        policy=kwargs["policy"],
        n_transactions=kwargs["n_transactions"],
        replications=kwargs["replications"],
        seed=kwargs["seed"],
    )
    return ledger.append(manifest, replicated_outcomes(result))


@pytest.fixture
def ledger(tmp_path):
    return Ledger(str(tmp_path / "ledger"))


class TestWelchCheck:
    def test_identical_samples_pass(self):
        check = welch_check("rt", [1.0, 2.0, 3.0], [1.0, 2.0, 3.0])
        assert check.method == "welch-z"
        assert check.statistic == 0.0
        assert not check.exceeded

    def test_clear_shift_exceeds(self):
        check = welch_check(
            "rt", [1.0, 1.1, 0.9, 1.0], [3.0, 3.1, 2.9, 3.0]
        )
        assert check.exceeded
        assert abs(check.statistic) > check.threshold

    def test_single_replication_falls_back_to_relative(self):
        check = welch_check("rt", [1.0], [1.02], tolerance=0.05)
        assert check.method == "relative"
        assert not check.exceeded
        assert welch_check("rt", [1.0], [2.0], tolerance=0.05).exceeded

    def test_zero_variance_falls_back_to_relative(self):
        same = welch_check("rt", [2.0, 2.0], [2.0, 2.0])
        assert same.method == "relative"
        assert not same.exceeded
        shifted = welch_check("rt", [2.0, 2.0], [4.0, 4.0])
        assert shifted.exceeded


class TestRelativeCheck:
    def test_within_band_passes(self):
        assert not relative_check("m", 100.0, 104.0, tolerance=0.05).exceeded

    def test_outside_band_exceeds(self):
        assert relative_check("m", 100.0, 120.0, tolerance=0.05).exceeded

    def test_both_zero_passes(self):
        assert not relative_check("m", 0.0, 0.0).exceeded


class TestCompareOutcomes:
    def test_experiment_hash_short_circuit(self):
        checks = compare_outcomes(
            "experiment",
            {"result_hash": "abc", "tables": []},
            {"result_hash": "abc", "tables": []},
        )
        assert [c.method for c in checks] == ["hash"]
        assert not checks[0].exceeded

    def test_experiment_series_compared_on_hash_mismatch(self):
        baseline = {
            "result_hash": "abc",
            "tables": [
                {
                    "title": "T",
                    "series": [{"label": "A", "mean": 10.0}],
                }
            ],
        }
        candidate = {
            "result_hash": "xyz",
            "tables": [
                {
                    "title": "T",
                    "series": [{"label": "A", "mean": 13.0}],
                }
            ],
        }
        (check,) = compare_outcomes("experiment", baseline, candidate)
        assert check.metric == "T/A:mean"
        assert check.exceeded

    def test_faults_scores_matched_by_cell(self):
        base = {
            "scores": [
                {
                    "scenario": "s",
                    "policy": "SRAA",
                    "missed_rate": 0.0,
                    "mean_response_time_s": 5.0,
                }
            ]
        }
        cand = {
            "scores": [
                {
                    "scenario": "s",
                    "policy": "SRAA",
                    "missed_rate": 0.0,
                    "mean_response_time_s": 11.0,
                }
            ]
        }
        checks = compare_outcomes("faults", base, cand)
        by_metric = {c.metric: c for c in checks}
        assert not by_metric["s/SRAA:missed_rate"].exceeded
        assert by_metric["s/SRAA:mean_response_time_s"].exceeded

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown run kind"):
            compare_outcomes("mystery", {}, {})


class TestRunCheck:
    def test_same_seed_reruns_stay_quiet(self, ledger):
        baseline = record(ledger)
        for _ in range(5):
            candidate = record(ledger)
            report = run_check(ledger, baseline, candidate)
            assert report.manifest_match
            assert not report.exceeded
            assert report.streak == 0
            assert report.exit_code == 0

    def test_doubled_service_time_flags(self, ledger):
        baseline = record(ledger)
        # The injected regression: every transaction takes twice as
        # long (halved service rate).
        slowed = record(ledger, config=replace(CONFIG, service_rate=0.1))
        report = run_check(ledger, baseline, slowed)
        assert not report.manifest_match
        assert any("service_rate" in path for path in report.drift)
        assert report.exceeded
        rt = next(
            c for c in report.checks if c.metric == "avg_response_time"
        )
        assert rt.exceeded
        assert rt.candidate > rt.baseline

    def test_persistence_filter_flags_on_streak(self, ledger):
        baseline = record(ledger)
        slowed = record(ledger, config=replace(CONFIG, service_rate=0.1))
        first = run_check(ledger, baseline, slowed, persistence=2)
        assert first.exceeded and not first.flagged
        assert first.exit_code == 1
        second = run_check(ledger, baseline, slowed, persistence=2)
        assert second.flagged
        assert second.exit_code == 2

    def test_clean_check_resets_streak(self, ledger):
        baseline = record(ledger)
        slowed = record(ledger, config=replace(CONFIG, service_rate=0.1))
        run_check(ledger, baseline, slowed)
        healthy = record(ledger)
        report = run_check(ledger, baseline, healthy)
        assert report.streak == 0
        after = run_check(ledger, baseline, slowed, persistence=2)
        assert after.streak == 1  # the earlier streak was reset

    def test_kind_mismatch_is_drift(self, ledger):
        baseline = record(ledger)
        other = {**baseline, "kind": "faults", "id": "fau-9999-00000000"}
        report = run_check(ledger, baseline, other)
        assert "manifest.kind" in report.drift
        assert report.checks == []

    def test_persistence_must_be_positive(self, ledger):
        baseline = record(ledger)
        with pytest.raises(ValueError, match="persistence"):
            run_check(ledger, baseline, baseline, persistence=0)

    def test_state_not_written_when_disabled(self, ledger):
        baseline = record(ledger)
        run_check(ledger, baseline, baseline, update_state=False)
        assert ledger.check_state() == {}
