"""Result containers for cluster runs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class NodeStats:
    """Per-node outcome of a cluster run."""

    name: str
    dispatched: int
    completed: int
    lost: int
    avg_response_time: float
    rejuvenations: int
    gc_count: int

    @property
    def loss_fraction(self) -> float:
        """Lost over dispatched for this node (0 for an idle node)."""
        if self.dispatched == 0:
            return 0.0
        return self.lost / self.dispatched


@dataclass(frozen=True)
class ClusterResult:
    """Aggregate outcome of a cluster run."""

    arrivals: int
    completed: int
    lost: int
    refused: int
    avg_response_time: float
    rt_std: float
    loss_fraction: float
    rejuvenations: int
    gc_count: int
    sim_duration_s: float
    nodes: Tuple[NodeStats, ...]

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    def imbalance(self) -> float:
        """Max/min ratio of per-node dispatched counts (1.0 = perfect).

        Returns ``inf`` if any node received nothing while others did.
        """
        counts = [node.dispatched for node in self.nodes]
        low, high = min(counts), max(counts)
        if high == 0:
            return 1.0
        if low == 0:
            return float("inf")
        return high / low
