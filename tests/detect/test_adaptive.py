"""The adaptive threshold: recalibration vs triggering."""

import pickle

import pytest

from repro.core.base import DecisionListener
from repro.core.sla import PAPER_SLO
from repro.detect.adaptive import AdaptiveThresholdPolicy


def make_policy(**kw):
    defaults = dict(
        sample_size=1, window=16, k_sigmas=3.0, patience=4, warmup=8
    )
    defaults.update(kw)
    return AdaptiveThresholdPolicy(PAPER_SLO, **defaults)


class Recorder(DecisionListener):
    def __init__(self):
        self.causes = []
        self.transitions = []
        self.resets = 0

    def on_trigger_cause(self, policy, cause):
        self.causes.append(dict(cause))

    def on_transition(self, policy, kind, index, count, threshold):
        self.transitions.append((kind, index))

    def on_reset(self, policy):
        self.resets += 1


class TestWarmup:
    def test_never_triggers_during_warmup(self):
        policy = make_policy(warmup=32)
        assert policy.observe_many([500.0] * 31) == []

    def test_prewarmup_threshold_uses_offline_slo(self):
        policy = make_policy(sample_size=4, warmup=100)
        mean, std = policy.baseline_stats()
        assert mean == PAPER_SLO.mean
        # Batch means of n=4 have sigma/sqrt(4), clamped to the floor.
        assert std == pytest.approx(
            max(PAPER_SLO.std / 2.0, policy.std_floor)
        )

    def test_baseline_takes_over_after_warmup(self):
        policy = make_policy(warmup=8)
        policy.observe_many([10.0] * 8)
        mean, std = policy.baseline_stats()
        assert mean == pytest.approx(10.0)
        # Constant series: learned std collapses onto the clamp floor.
        assert std == pytest.approx(policy.std_floor)


class TestDiscriminator:
    def test_plateau_shift_recalibrates_instead_of_triggering(self):
        policy = make_policy()
        listener = Recorder()
        policy.set_listener(listener)
        policy.observe_many([5.0] * 8)
        # Step to a flat plateau far above threshold: a workload shift.
        assert policy.observe_many([40.0] * 4) == []
        assert policy.recalibrations == 1
        assert ("recalibrate", 1) in listener.transitions
        assert listener.causes == []
        # The plateau is now the baseline: more of it stays healthy.
        assert policy.observe_many([40.0] * 20) == []

    def test_growing_exceedance_triggers(self):
        policy = make_policy()
        listener = Recorder()
        policy.set_listener(listener)
        policy.observe_many([5.0] * 8)
        ramp = [40.0, 60.0, 80.0, 100.0]
        triggers = policy.observe_many(ramp)
        assert len(triggers) == 1
        assert policy.recalibrations == 0
        (cause,) = listener.causes
        assert cause["kind"] == "adaptive-threshold"
        assert cause["growth"] > cause["grow_limit"]
        assert cause["batch_mean"] > cause["threshold"]

    def test_single_blip_is_absorbed(self):
        policy = make_policy()
        policy.observe_many([5.0] * 8)
        assert policy.observe(60.0) is False
        assert policy.streak == 1
        assert policy.observe(5.0) is False
        assert policy.streak == 0


class TestLifecycle:
    def test_reset_keeps_learned_baseline(self):
        policy = make_policy()
        listener = Recorder()
        policy.set_listener(listener)
        policy.observe_many([10.0] * 12)
        before = policy.baseline_stats()
        policy.observe(300.0)  # open a streak
        policy.reset()
        assert policy.streak == 0
        assert policy.baseline_stats() == before
        assert listener.resets == 1

    def test_deterministic_after_reset(self):
        trace = [5.0] * 8 + [40.0, 60.0, 80.0, 100.0]
        one = make_policy()
        one.observe_many(trace)
        one.reset()
        two = make_policy()
        two.observe_many(trace)
        two.reset()
        assert one.observe_many(trace) == two.observe_many(trace)

    def test_picklable_mid_stream(self):
        policy = make_policy()
        policy.observe_many([5.0] * 10 + [40.0, 41.0])
        clone = pickle.loads(pickle.dumps(policy))
        tail = [60.0, 80.0, 100.0, 120.0, 140.0]
        assert clone.observe_many(tail) == policy.observe_many(tail)

    def test_describe_mentions_parameters(self):
        text = make_policy().describe()
        assert "Adaptive" in text and "patience=4" in text


class TestValidation:
    @pytest.mark.parametrize(
        "kw",
        [
            {"window": 1},
            {"k_sigmas": 0.0},
            {"patience": 0},
            {"grow_limit_sigmas": 0.0},
            {"warmup": 1},
        ],
    )
    def test_rejects_bad_parameters(self, kw):
        with pytest.raises(ValueError):
            make_policy(**kw)

    def test_std_cap_must_dominate_floor(self):
        with pytest.raises(ValueError):
            make_policy(std_floor=2.0, std_cap=1.0)
