"""M/M/c/K and Erlang-B against textbook identities."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queueing.mmc import MMcModel
from repro.queueing.mmck import MMcKModel, erlang_b


def erlang_b_reference(a: float, c: int) -> float:
    top = a**c / math.factorial(c)
    bottom = sum(a**k / math.factorial(k) for k in range(c + 1))
    return top / bottom


class TestErlangB:
    @pytest.mark.parametrize("a, c", [(8.0, 16), (1.0, 1), (5.0, 3), (0.1, 4)])
    def test_matches_reference(self, a, c):
        assert erlang_b(a, c) == pytest.approx(
            erlang_b_reference(a, c), rel=1e-12
        )

    def test_zero_load(self):
        assert erlang_b(0.0, 4) == 0.0

    def test_monotone_in_load(self):
        values = [erlang_b(a, 8) for a in (1.0, 4.0, 8.0, 16.0)]
        assert values == sorted(values)

    def test_monotone_in_servers(self):
        values = [erlang_b(8.0, c) for c in (4, 8, 16, 32)]
        assert values == sorted(values, reverse=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            erlang_b(-1.0, 4)
        with pytest.raises(ValueError):
            erlang_b(1.0, 0)


class TestMMcK:
    def test_loss_system_matches_erlang_b(self):
        model = MMcKModel.loss_system(1.6, 0.2, 16)
        assert model.blocking_probability() == pytest.approx(
            erlang_b(8.0, 16), rel=1e-12
        )

    def test_mm1k_closed_form(self):
        # M/M/1/K: p_K = (1-rho) rho^K / (1 - rho^(K+1)).
        lam, mu, K = 0.5, 1.0, 5
        model = MMcKModel(lam, mu, servers=1, capacity=K)
        rho = lam / mu
        expected = (1 - rho) * rho**K / (1 - rho ** (K + 1))
        assert model.blocking_probability() == pytest.approx(expected)

    def test_probabilities_sum_to_one(self):
        model = MMcKModel(1.6, 0.2, 16, capacity=40)
        total = sum(
            model.state_probability(k) for k in range(model.capacity + 1)
        )
        assert total == pytest.approx(1.0)

    def test_large_capacity_approaches_mmc(self):
        infinite = MMcModel(1.6, 0.2, 16)
        finite = MMcKModel(1.6, 0.2, 16, capacity=300)
        assert finite.blocking_probability() < 1e-10
        assert finite.response_time_mean() == pytest.approx(
            infinite.response_time_mean(), rel=1e-6
        )
        assert finite.mean_jobs_in_system() == pytest.approx(
            infinite.mean_jobs_in_system(), rel=1e-6
        )

    def test_overload_is_still_stable(self):
        # rho > 1 would blow up M/M/c; the finite buffer caps it.
        model = MMcKModel(10.0, 0.2, 16, capacity=50)
        assert model.blocking_probability() > 0.5
        assert model.mean_jobs_in_system() <= 50.0

    def test_effective_rate_and_throughput(self):
        model = MMcKModel(10.0, 0.2, 16, capacity=20)
        blocked = model.blocking_probability()
        assert model.effective_arrival_rate() == pytest.approx(
            10.0 * (1 - blocked)
        )
        assert model.throughput() == model.effective_arrival_rate()
        # Flow balance: throughput can never exceed total service capacity.
        assert model.throughput() <= 16 * 0.2 + 1e-9

    def test_zero_arrivals(self):
        model = MMcKModel(0.0, 0.2, 16, capacity=20)
        assert model.blocking_probability() == 0.0
        assert model.response_time_mean() == pytest.approx(5.0)

    def test_state_probability_bounds(self):
        model = MMcKModel(1.0, 0.2, 16, capacity=20)
        with pytest.raises(ValueError):
            model.state_probability(-1)
        with pytest.raises(ValueError):
            model.state_probability(21)

    def test_validation(self):
        with pytest.raises(ValueError):
            MMcKModel(1.0, 0.2, 16, capacity=15)
        with pytest.raises(ValueError):
            MMcKModel(-1.0, 0.2, 16, capacity=16)

    @given(
        st.floats(min_value=0.1, max_value=5.0),
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=0, max_value=30),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_blocking_decreases_with_capacity(self, lam, c, extra):
        tight = MMcKModel(lam, 0.2, c, capacity=c)
        roomy = MMcKModel(lam, 0.2, c, capacity=c + extra)
        assert roomy.blocking_probability() <= tight.blocking_probability() + 1e-12

    @given(
        st.floats(min_value=0.1, max_value=5.0),
        st.integers(min_value=1, max_value=20),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_little_law_consistency(self, lam, c):
        model = MMcKModel(lam, 0.2, c, capacity=c + 10)
        lhs = model.mean_jobs_in_system()
        rhs = model.effective_arrival_rate() * model.response_time_mean()
        assert lhs == pytest.approx(rhs, rel=1e-9)
