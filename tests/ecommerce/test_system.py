"""The Section-3 simulation model: conservation, mechanisms, semantics."""

import dataclasses

import pytest

from repro.core.baselines import PeriodicRejuvenation
from repro.core.sla import ServiceLevelObjective
from repro.core.sraa import SRAA
from repro.ecommerce.config import PAPER_CONFIG, SystemConfig
from repro.ecommerce.system import ECommerceSystem
from repro.ecommerce.workload import PoissonArrivals, TraceArrivals

SLO = ServiceLevelObjective(mean=5.0, std=5.0)


def run_system(config, rate=1.6, policy=None, n=2_000, seed=0, **kwargs):
    system = ECommerceSystem(
        config, PoissonArrivals(rate), policy=policy, seed=seed
    )
    return system, system.run(n, **kwargs)


class TestConservation:
    def test_all_transactions_resolve(self):
        _, result = run_system(PAPER_CONFIG, rate=1.8, n=3_000)
        assert result.completed + result.lost == 3_000

    def test_no_policy_no_loss(self):
        _, result = run_system(PAPER_CONFIG, rate=1.8, n=2_000)
        assert result.lost == 0
        assert result.rejuvenations == 0

    def test_with_policy_conservation_holds(self):
        policy = SRAA(SLO, sample_size=2, n_buckets=1, depth=1)
        _, result = run_system(PAPER_CONFIG, rate=1.8, policy=policy, n=3_000)
        assert result.completed + result.lost == 3_000
        assert result.rejuvenations > 0

    def test_same_seed_reproduces_exactly(self):
        def once():
            policy = SRAA(SLO, sample_size=2, n_buckets=2, depth=2)
            _, result = run_system(
                PAPER_CONFIG, rate=1.8, policy=policy, n=2_000, seed=7
            )
            return result

        a, b = once(), once()
        assert a.avg_response_time == b.avg_response_time
        assert a.lost == b.lost
        assert a.rejuvenations == b.rejuvenations

    def test_heap_accounting_restored_after_drain(self):
        system, _ = run_system(PAPER_CONFIG, rate=0.5, n=500)
        # All jobs done: nothing live; garbage is whatever the last GC
        # left behind, bounded by the heap.
        assert system.node.live_mb == pytest.approx(0.0)
        assert 0.0 <= system.node.garbage_mb <= PAPER_CONFIG.heap_mb


class TestMMcReduction:
    def test_matches_analytical_mean(self):
        config = PAPER_CONFIG.without_degradation()
        _, result = run_system(config, rate=1.6, n=40_000, seed=3)
        # Theory: 5.0056 s at lambda = 1.6.
        assert result.avg_response_time == pytest.approx(5.006, rel=0.03)
        assert result.rt_std == pytest.approx(5.001, rel=0.05)

    def test_no_gc_events(self):
        config = PAPER_CONFIG.without_degradation()
        _, result = run_system(config, rate=1.6, n=5_000)
        assert result.gc_count == 0

    def test_low_load_mean_is_service_time(self):
        config = PAPER_CONFIG.without_degradation()
        _, result = run_system(config, rate=0.1, n=20_000, seed=4)
        assert result.avg_response_time == pytest.approx(5.0, rel=0.05)


class TestGarbageCollection:
    def test_gc_frequency_matches_heap_arithmetic(self):
        # Free heap falls below 100 MB after ~297 allocations of 10 MB
        # on a 3072 MB heap, so about one GC per ~298 transactions.
        _, result = run_system(PAPER_CONFIG, rate=0.5, n=3_000, seed=5)
        expected = 3_000 / 298
        assert result.gc_count == pytest.approx(expected, abs=2)

    def test_gc_pause_inflates_response_times(self):
        with_gc = PAPER_CONFIG
        without = dataclasses.replace(PAPER_CONFIG, enable_gc=False)
        _, degraded = run_system(with_gc, rate=1.6, n=5_000, seed=6)
        _, clean = run_system(without, rate=1.6, n=5_000, seed=6)
        assert degraded.avg_response_time > clean.avg_response_time + 0.2
        assert degraded.max_response_time >= 60.0

    def test_no_gc_when_heap_huge(self):
        config = dataclasses.replace(PAPER_CONFIG, heap_mb=1e9)
        _, result = run_system(config, rate=1.6, n=3_000)
        assert result.gc_count == 0

    def test_zero_pause_gc_still_reclaims(self):
        config = dataclasses.replace(PAPER_CONFIG, gc_pause_s=0.0)
        _, result = run_system(config, rate=1.6, n=3_000, seed=7)
        assert result.gc_count > 0
        assert result.max_response_time < 60.0


class TestKernelOverhead:
    def test_overhead_slows_service_under_backlog(self):
        # 200 simultaneous arrivals keep the system above the 50-thread
        # threshold for most of the drain, so doubled service times
        # dominate the response times.
        base = dataclasses.replace(
            PAPER_CONFIG, enable_gc=False, enable_overhead=True
        )
        off = dataclasses.replace(base, enable_overhead=False)

        def mean_rt(config, seed=8):
            system = ECommerceSystem(
                config, TraceArrivals([0.0] * 200), seed=seed
            )
            return system.run(200).avg_response_time

        assert mean_rt(base) > 1.5 * mean_rt(off)

    def test_no_overhead_below_threshold(self):
        # 40 simultaneous arrivals stay under the 50-thread threshold.
        base = dataclasses.replace(PAPER_CONFIG, enable_gc=False)
        off = dataclasses.replace(base, enable_overhead=False)

        def mean_rt(config):
            system = ECommerceSystem(
                config, TraceArrivals([0.0] * 40), seed=9
            )
            return system.run(40).avg_response_time

        assert mean_rt(base) == pytest.approx(mean_rt(off))


class TestRejuvenationSemantics:
    def test_rejuvenation_releases_memory(self):
        policy = PeriodicRejuvenation(period=100)
        system, result = run_system(
            PAPER_CONFIG, rate=1.6, policy=policy, n=3_000, seed=10
        )
        # Rejuvenating every 100 transactions keeps the heap fresh: the
        # ~300-transaction GC clock never expires.
        assert result.gc_count == 0
        assert result.rejuvenations > 20

    def test_executing_threads_lost(self):
        policy = PeriodicRejuvenation(period=50)
        _, result = run_system(
            PAPER_CONFIG, rate=1.8, policy=policy, n=2_000, seed=11
        )
        assert result.lost > 0

    def test_queued_transactions_survive_by_default(self):
        # A 200-job flash crowd with a trigger at the 50th completion:
        # by default only the 16 executing jobs die per trigger; with
        # rejuvenation_kills_queued the whole backlog goes too.
        def lost_with(kills_queued: bool) -> int:
            config = dataclasses.replace(
                PAPER_CONFIG, rejuvenation_kills_queued=kills_queued
            )
            system = ECommerceSystem(
                config,
                TraceArrivals([0.0] * 200),
                policy=PeriodicRejuvenation(period=50),
                seed=12,
            )
            return system.run(200).lost

        assert lost_with(True) > 2 * lost_with(False)

    def test_downtime_refuses_arrivals(self):
        config = dataclasses.replace(
            PAPER_CONFIG, rejuvenation_downtime_s=120.0
        )
        system = ECommerceSystem(
            config,
            PoissonArrivals(1.6),
            policy=PeriodicRejuvenation(period=100),
            seed=13,
        )
        result = system.run(2_000)
        # Lost = executing at triggers + arrivals during downtime; with
        # lambda = 1.6 and 120 s windows the downtime dominates.
        assert result.loss_fraction > 0.2

    def test_policy_state_cleared_on_trigger(self):
        policy = SRAA(SLO, sample_size=1, n_buckets=1, depth=1)
        system, result = run_system(
            PAPER_CONFIG, rate=1.8, policy=policy, n=2_000, seed=14
        )
        assert result.rejuvenations > 0
        assert policy.level == 0


class TestWarmup:
    def test_warmup_excluded_from_statistics(self):
        config = PAPER_CONFIG.without_degradation()
        system = ECommerceSystem(config, PoissonArrivals(1.6), seed=15)
        full = system.run(10_000, collect_response_times=True)
        system2 = ECommerceSystem(config, PoissonArrivals(1.6), seed=15)
        trimmed = system2.run(10_000, warmup=2_000)
        # Same draws, different measurement windows.
        assert trimmed.completed == full.completed
        assert trimmed.avg_response_time != full.avg_response_time

    def test_warmup_validation(self):
        system = ECommerceSystem(PAPER_CONFIG, PoissonArrivals(1.0))
        with pytest.raises(ValueError):
            system.run(100, warmup=100)
        with pytest.raises(ValueError):
            system.run(0)

    def test_collect_response_times(self):
        config = PAPER_CONFIG.without_degradation()
        system = ECommerceSystem(config, PoissonArrivals(1.6), seed=16)
        result = system.run(500, collect_response_times=True)
        assert result.response_times is not None
        assert len(result.response_times) == result.completed
        assert all(rt >= 0 for rt in result.response_times)

    def test_rerun_resets_everything(self):
        system = ECommerceSystem(PAPER_CONFIG, PoissonArrivals(1.6), seed=17)
        first = system.run(1_000)
        second = system.run(1_000)
        # Fresh state, but the RNG streams continue: counts match.
        assert second.completed + second.lost == 1_000
        assert first.arrivals == second.arrivals == 1_000


class TestGCPauseModel:
    def test_proportional_pause_scales_with_garbage(self):
        # The GC fires when garbage is ~2972 MB of 3072 MB, so the
        # proportional pause is ~58 s -- nearly the fixed 60 s.  With a
        # *small* heap the proportional pause shrinks accordingly.
        small_heap = dataclasses.replace(
            PAPER_CONFIG,
            heap_mb=400.0,
            gc_threshold_mb=100.0,
            gc_pause_model="proportional",
        )
        fixed_small = dataclasses.replace(
            small_heap, gc_pause_model="fixed"
        )
        _, proportional = run_system(small_heap, rate=1.6, n=4_000, seed=21)
        _, fixed = run_system(fixed_small, rate=1.6, n=4_000, seed=21)
        assert proportional.gc_count > 0
        # Pause ~ 60 * 300/400 = 45 s vs fixed 60 s: less RT damage.
        assert (
            proportional.avg_response_time < fixed.avg_response_time
        )

    def test_proportional_with_full_heap_matches_fixed(self):
        proportional = dataclasses.replace(
            PAPER_CONFIG, gc_pause_model="proportional"
        )
        _, a = run_system(proportional, rate=1.6, n=4_000, seed=22)
        _, b = run_system(PAPER_CONFIG, rate=1.6, n=4_000, seed=22)
        # Garbage at collection is ~97 % of the heap, so the two models
        # almost coincide on the paper's configuration.
        assert a.avg_response_time == pytest.approx(
            b.avg_response_time, rel=0.15
        )

    def test_invalid_model_rejected(self):
        with pytest.raises(ValueError):
            dataclasses.replace(PAPER_CONFIG, gc_pause_model="magic")
