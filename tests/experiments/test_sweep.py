"""The load-sweep harness."""

import pytest

from repro.experiments.scale import Scale
from repro.experiments.sweep import sraa_config, sweep_policies

TINY = Scale(transactions=600, replications=1, loads=(0.5, 9.0), label="tiny")


class TestSweep:
    def test_structure(self):
        configs = [sraa_config(1, 1, 1), sraa_config(2, 2, 1)]
        sweep = sweep_policies(configs, TINY, seed=0)
        assert set(sweep.results) == {
            "(n=1, K=1, D=1)",
            "(n=2, K=2, D=1)",
        }
        for by_load in sweep.results.values():
            assert set(by_load) == {0.5, 9.0}

    def test_tables_extracted(self):
        sweep = sweep_policies([sraa_config(1, 1, 1)], TINY, seed=0)
        rt = sweep.response_time_table("rt")
        loss = sweep.loss_table("loss")
        assert rt.get_series("(n=1, K=1, D=1)").xs() == [0.5, 9.0]
        assert loss.get_series("(n=1, K=1, D=1)").xs() == [0.5, 9.0]
        for value in loss.get_series("(n=1, K=1, D=1)").points.values():
            assert 0.0 <= value <= 1.0

    def test_common_random_numbers(self):
        # Same (load, replication) seeds across configurations.
        first = sweep_policies([sraa_config(1, 1, 1)], TINY, seed=3)
        second = sweep_policies([sraa_config(1, 1, 1)], TINY, seed=3)
        assert (
            first.results["(n=1, K=1, D=1)"][0.5].avg_response_time
            == second.results["(n=1, K=1, D=1)"][0.5].avg_response_time
        )

    def test_config_label_format(self):
        assert sraa_config(2, 5, 3).label == "(n=2, K=5, D=3)"
