"""Field-by-field comparison of two ledger entries (``repro runs diff``).

Entries are flattened to dotted paths (``manifest.spec.config.memory_max``,
``outcomes.response_time.mean`` ...) and compared value-by-value; numeric
differences carry a relative delta so a reader can tell a 0.1% wobble
from a 2x regression at a glance.  The diff is purely structural -- the
statistical judgement of whether a difference *matters* lives in
:mod:`repro.obs.ledger.regress`.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

#: Entry sections compared by default (timing is noise; ids/timestamps
#: differ by construction).
DEFAULT_SECTIONS = ("manifest", "outcomes")

#: Per-entry keys that are never meaningful to diff.
_SKIPPED_MANIFEST_KEYS = {"environment", "execution"}


def flatten(obj: Any, prefix: str = "") -> Dict[str, Any]:
    """Flatten nested dicts/lists into ``{dotted.path: leaf}``."""
    out: Dict[str, Any] = {}
    if isinstance(obj, Mapping):
        for key in sorted(obj, key=str):
            path = f"{prefix}.{key}" if prefix else str(key)
            out.update(flatten(obj[key], path))
    elif isinstance(obj, (list, tuple)):
        for index, item in enumerate(obj):
            path = f"{prefix}[{index}]"
            out.update(flatten(item, path))
    else:
        out[prefix] = obj
    return out


def _relative_delta(a: Any, b: Any) -> Optional[float]:
    if isinstance(a, bool) or isinstance(b, bool):
        return None
    if not isinstance(a, (int, float)) or not isinstance(b, (int, float)):
        return None
    denom = max(abs(float(a)), abs(float(b)))
    if denom == 0.0:
        return 0.0
    return (float(b) - float(a)) / denom


def diff_flat(
    left: Mapping[str, Any], right: Mapping[str, Any]
) -> List[Dict[str, Any]]:
    """Differences between two flattened views, sorted by path."""
    out: List[Dict[str, Any]] = []
    for path in sorted(set(left) | set(right)):
        a = left.get(path, "<absent>")
        b = right.get(path, "<absent>")
        if a == b and type(a) is type(b):
            continue
        record: Dict[str, Any] = {"path": path, "left": a, "right": b}
        rel = _relative_delta(a, b)
        if rel is not None:
            record["relative_delta"] = rel
        out.append(record)
    return out


def diff_entries(
    left: Mapping[str, Any],
    right: Mapping[str, Any],
    sections: Iterable[str] = DEFAULT_SECTIONS,
) -> List[Dict[str, Any]]:
    """Compare two full ledger entries over the deterministic sections.

    The manifest's environment/execution blocks are skipped: differing
    machines or worker counts are expected between comparable runs and
    would drown the signal.  ``manifest_hash`` itself stays in, so spec
    drift is always the first line of the diff.
    """
    out: List[Dict[str, Any]] = []
    for section in sections:
        a = dict(left.get(section) or {})
        b = dict(right.get(section) or {})
        if section == "manifest":
            for key in _SKIPPED_MANIFEST_KEYS:
                a.pop(key, None)
                b.pop(key, None)
        out.extend(
            diff_flat(
                flatten(a, prefix=section), flatten(b, prefix=section)
            )
        )
    return out


def spec_drift(
    left: Mapping[str, Any], right: Mapping[str, Any]
) -> List[str]:
    """Paths where the two entries' hashed identities disagree."""
    paths: List[str] = []
    for section in ("kind", "spec", "seed_protocol"):
        a = flatten(left["manifest"].get(section), prefix=section)
        b = flatten(right["manifest"].get(section), prefix=section)
        paths.extend(d["path"] for d in diff_flat(a, b))
    return paths


def format_diff(
    differences: List[Dict[str, Any]], limit: int = 0
) -> List[Tuple[str, str]]:
    """Render differences as ``(path, description)`` display rows."""
    rows: List[Tuple[str, str]] = []
    shown = differences if limit <= 0 else differences[:limit]
    for record in shown:
        text = f"{record['left']!r} -> {record['right']!r}"
        rel = record.get("relative_delta")
        if rel is not None and rel != 0.0:
            text += f" ({rel:+.2%})"
        rows.append((record["path"], text))
    if limit > 0 and len(differences) > limit:
        rows.append(("...", f"{len(differences) - limit} more"))
    return rows
