"""JSONL, Chrome trace_event, and Prometheus file outputs."""

import json

import pytest

from repro.obs.exporters import (
    chrome_trace_records,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
    write_prometheus,
)
from repro.obs.metrics import MetricsRegistry


RECORDS = [
    {
        "run": 0,
        "tag": ["replication", 0],
        "seed": 7,
        "ts": 0.0,
        "type": "run.meta",
        "source": "session",
        "data": {"completed": 2},
    },
    {
        "run": 0,
        "ts": 10.0,
        "type": "request.complete",
        "source": "system",
        "data": {"index": 0, "response_time": 4.0},
    },
    {
        "run": 0,
        "ts": 12.0,
        "type": "policy.trigger",
        "source": "policy:SRAA",
        "data": {"level": 2, "batch_mean": 21.0, "threshold": 15.0},
    },
]


class TestJsonl:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        assert write_jsonl(path, RECORDS) == len(RECORDS)
        assert read_jsonl(path) == RECORDS

    def test_bad_line_reports_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(ValueError, match=r"bad\.jsonl:2"):
            read_jsonl(str(path))

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "gaps.jsonl"
        path.write_text('{"a": 1}\n\n{"b": 2}\n')
        assert read_jsonl(str(path)) == [{"a": 1}, {"b": 2}]


class TestChromeTrace:
    def test_required_keys_on_every_record(self):
        for record in chrome_trace_records(RECORDS):
            for key in ("name", "ph", "ts", "pid", "tid"):
                assert key in record, f"{key} missing from {record}"

    def test_completion_becomes_complete_slice(self):
        slices = [
            r for r in chrome_trace_records(RECORDS) if r["ph"] == "X"
        ]
        (request,) = slices
        # ts is the service-entry instant; the slice spans the response.
        assert request["ts"] == pytest.approx((10.0 - 4.0) * 1e6)
        assert request["dur"] == pytest.approx(4.0 * 1e6)
        assert request["name"] == "request"

    def test_run_meta_becomes_process_name_metadata(self):
        metadata = [
            r for r in chrome_trace_records(RECORDS) if r["ph"] == "M"
        ]
        (record,) = metadata
        assert record["name"] == "process_name"
        assert record["pid"] == 0

    def test_written_file_is_a_json_array(self, tmp_path):
        path = str(tmp_path / "chrome.json")
        count = write_chrome_trace(path, RECORDS)
        with open(path) as handle:
            loaded = json.load(handle)
        assert isinstance(loaded, list)
        assert len(loaded) == count
        for record in loaded:
            assert {"name", "ph", "ts", "pid", "tid"} <= set(record)

    def test_distinct_sources_get_distinct_tids(self):
        records = chrome_trace_records(RECORDS)
        tids = {
            r["tid"] for r in records if r["ph"] != "M"
        }
        assert len(tids) == 2  # system and policy:SRAA


class TestPrometheusFile:
    def test_write(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("repro_completed_total").inc(5)
        path = str(tmp_path / "metrics.prom")
        write_prometheus(path, registry)
        content = open(path).read()
        assert "repro_completed_total 5" in content
        assert content.endswith("\n")
