"""Policy zoo (integration study, beyond the paper)."""

from conftest import assertions_enabled, regenerate

HIGH = 9.0
LOW = 0.5


def test_policy_zoo(benchmark):
    result = regenerate(benchmark, "zoo")
    if not assertions_enabled():
        return
    rt, loss = result.tables
    # The unmanaged system melts down at high load.
    never_rt = rt.get_series("never").value_at(HIGH)
    assert never_rt > 50.0
    # The paper's three algorithms all control it.
    for label in ("SRAA(2,5,3)", "SARAA(2,5,3)", "CLTA(30,z=1.96)"):
        assert rt.get_series(label).value_at(HIGH) < never_rt / 3
        assert 0.0 < loss.get_series(label).value_at(HIGH) < 0.25
    # The naive threshold is burst-fragile: it loses measurably at low
    # load, where the multi-bucket rules lose nothing.
    assert loss.get_series("threshold(>20s)").value_at(LOW) > 0.0
    assert loss.get_series("SRAA(2,5,3)").value_at(LOW) == 0.0
    # Requiring threshold AND bucket agreement cuts the low-load loss
    # relative to the bare threshold.
    assert (
        loss.get_series("threshold AND sraa").value_at(LOW)
        <= loss.get_series("threshold(>20s)").value_at(LOW)
    )
    # The composed rule still controls the high-load melt-down.
    assert rt.get_series("threshold AND sraa").value_at(HIGH) < never_rt / 3
