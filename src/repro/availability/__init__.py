"""Analytical availability models of software rejuvenation.

The paper's reference [9] (Huang, Kintala, Kolettis & Fulton, FTCS
1995) introduced the continuous-time Markov model that started the
rejuvenation literature: a process moves from a *robust* state into a
*failure-probable* (aged) state, from which it either crashes (long
repair) or is proactively rejuvenated (short, scheduled outage).  The
model answers the planning question the simulation-based policies of
this paper refine: *at what rate should one rejuvenate at all, and when
is rejuvenation worth it?*

:class:`~repro.availability.huang.HuangRejuvenationModel` implements
the model on :class:`repro.ctmc.CTMC`, with steady-state availability,
expected downtime cost, and the optimal rejuvenation rate.
"""

from repro.availability.huang import HuangRejuvenationModel

__all__ = ["HuangRejuvenationModel"]
