"""Time-series instrumentation of the simulated system.

The industrial motivation for the paper is observability: the field
fault went unnoticed because the wrong signals were watched.  The
``Telemetry`` probe samples the simulator's internal signals (free heap,
active threads, queue length, counters) on a fixed simulated-time grid,
so that examples and tests can *see* aging build up between garbage
collections, and so resource-driven policies have a realistic signal.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, fields
from typing import Iterable, List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class TelemetrySample:
    """One snapshot of the system state."""

    time_s: float
    free_heap_mb: float
    live_mb: float
    garbage_mb: float
    active_threads: int
    in_service: int
    queue_length: int
    completed: int
    lost: int
    rejuvenations: int
    gc_count: int


#: The canonical telemetry column order -- the CSV header, and the
#: vocabulary the metrics snapshot reuses (a counter column ``completed``
#: becomes the metric ``repro_completed_total``; see
#: :data:`repro.obs.metrics.TELEMETRY_COUNTER_COLUMNS`).
TELEMETRY_COLUMNS: Tuple[str, ...] = tuple(
    f.name for f in fields(TelemetrySample)
)


def write_telemetry_csv(
    path: str,
    samples_per_run: Iterable[Sequence[TelemetrySample]],
) -> int:
    """Write one CSV over many replications; returns rows written.

    The header is ``replication`` followed by
    :data:`TELEMETRY_COLUMNS`, so single-run and multi-replication
    exports share one schema.  ``samples_per_run`` must be in job
    submission order (both execution backends guarantee it), which
    keeps the file bit-identical between serial and process-pool runs.
    """
    rows = 0
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(("replication",) + TELEMETRY_COLUMNS)
        for replication, samples in enumerate(samples_per_run):
            for sample in samples:
                writer.writerow(
                    (replication,)
                    + tuple(getattr(sample, n) for n in TELEMETRY_COLUMNS)
                )
                rows += 1
    return rows


class Telemetry:
    """A fixed-interval probe of system state.

    Parameters
    ----------
    interval_s:
        Simulated seconds between samples.

    Examples
    --------
    >>> from repro.ecommerce import ECommerceSystem, PAPER_CONFIG
    >>> from repro.ecommerce import PoissonArrivals
    >>> probe = Telemetry(interval_s=100.0)
    >>> system = ECommerceSystem(
    ...     PAPER_CONFIG, PoissonArrivals(1.0), seed=1, telemetry=probe
    ... )
    >>> _ = system.run(2_000)
    >>> probe.samples[0].time_s
    0.0
    """

    def __init__(self, interval_s: float) -> None:
        if interval_s <= 0:
            raise ValueError("sampling interval must be positive")
        self.interval_s = float(interval_s)
        self.samples: List[TelemetrySample] = []

    def record(self, sample: TelemetrySample) -> None:
        """Append one snapshot (called by the simulator's probe event)."""
        self.samples.append(sample)

    def clear(self) -> None:
        """Drop all samples (a fresh run starts clean)."""
        self.samples.clear()

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def column(self, name: str) -> np.ndarray:
        """One signal as an array, e.g. ``column("free_heap_mb")``."""
        if not self.samples:
            return np.empty(0)
        if name not in {f.name for f in fields(TelemetrySample)}:
            raise KeyError(f"unknown telemetry column {name!r}")
        return np.array([getattr(s, name) for s in self.samples])

    def times(self) -> np.ndarray:
        """The sampling grid."""
        return self.column("time_s")

    def __len__(self) -> int:
        return len(self.samples)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_csv(self, path: str) -> None:
        """Write all samples as CSV with a header row."""
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(TELEMETRY_COLUMNS)
            for sample in self.samples:
                writer.writerow(
                    [getattr(sample, n) for n in TELEMETRY_COLUMNS]
                )

    def to_rows(self) -> List[Sequence[float]]:
        """All samples as plain tuples (for programmatic consumers)."""
        return [
            tuple(getattr(sample, n) for n in TELEMETRY_COLUMNS)
            for sample in self.samples
        ]
