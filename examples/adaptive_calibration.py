"""Calibrating the SLO from measured data, then monitoring with SARAA.

The paper assumes an SLA hands the algorithms (mu_X, sigma_X); its
conclusion lists on-line statistical estimation as future work.  This
example shows the estimation half the library provides:

1. collect response times from a known-healthy period of the simulated
   system;
2. estimate the SLO classically and robustly (the healthy window is
   then contaminated with degraded samples to show the difference);
3. run SARAA against the calibrated SLO and verify it behaves like one
   built from the analytical truth.

Run:  python examples/adaptive_calibration.py
"""

import numpy as np

from repro import (
    PAPER_SLO,
    SARAA,
    RejuvenationMonitor,
    calibrate_slo,
    robust_calibrate_slo,
    simulate_mmc_response_times,
)


def main() -> None:
    print("Collecting 20,000 healthy response times (M/M/16, lambda=1.0)...")
    healthy = simulate_mmc_response_times(1.0, 20_000, seed=3)
    slo = calibrate_slo(healthy, warmup=2_000)
    print(
        f"  calibrated SLO: mean {slo.mean:.3f} s, std {slo.std:.3f} s "
        f"(analytical truth: {PAPER_SLO.mean:.0f} / {PAPER_SLO.std:.0f})"
    )

    print("\nContaminating the window with 5 % degraded samples ...")
    rng = np.random.default_rng(4)
    contaminated = healthy.copy()
    bad = rng.choice(contaminated.size, size=contaminated.size // 20)
    contaminated[bad] = rng.exponential(80.0, size=bad.size)
    naive = calibrate_slo(contaminated, warmup=2_000)
    robust = robust_calibrate_slo(contaminated, warmup=2_000)
    print(f"  classical estimate: mean {naive.mean:.2f}, std {naive.std:.2f}")
    print(f"  robust estimate   : mean {robust.mean:.2f}, std {robust.std:.2f}")
    print(
        "  (the classical std is blown up by the contamination, which "
        "would desensitise every policy)"
    )

    print("\nMonitoring a degrading stream with SARAA on the clean SLO ...")
    policy = SARAA(slo, sample_size=10, n_buckets=3, depth=2)
    monitor = RejuvenationMonitor(policy)
    stream_rng = np.random.default_rng(5)
    detected_at = None
    for i in range(5_000):
        mean = slo.mean if i < 2_000 else slo.mean * 4.0  # aging at i=2000
        if monitor.feed(stream_rng.exponential(mean)) and detected_at is None:
            detected_at = i
    assert detected_at is not None and detected_at >= 2_000
    print(
        f"  degradation began at observation 2000; first trigger at "
        f"{detected_at} (detection delay {detected_at - 2_000} observations)"
    )
    print(f"  total triggers during the degraded phase: {monitor.triggers}")


if __name__ == "__main__":
    main()
