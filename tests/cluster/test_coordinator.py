"""Rolling-restart coordination."""

import pytest

from repro.cluster.coordinator import (
    RollingCoordinator,
    UnrestrictedCoordinator,
)


class TestMinimumGap:
    def test_enforced(self):
        coordinator = RollingCoordinator(min_gap_s=60.0)
        assert coordinator.request(0, now=0.0, downtime_s=0.0)
        assert not coordinator.request(1, now=59.9, downtime_s=0.0)
        assert coordinator.request(1, now=60.0, downtime_s=0.0)

    def test_denials_do_not_push_the_window(self):
        coordinator = RollingCoordinator(min_gap_s=60.0)
        coordinator.request(0, now=0.0, downtime_s=0.0)
        coordinator.request(1, now=30.0, downtime_s=0.0)  # denied
        # The gap still counts from the last *grant*.
        assert coordinator.request(1, now=60.0, downtime_s=0.0)

    def test_counters(self):
        coordinator = RollingCoordinator(min_gap_s=10.0)
        coordinator.request(0, now=0.0, downtime_s=0.0)
        coordinator.request(1, now=1.0, downtime_s=0.0)
        assert coordinator.granted == 1
        assert coordinator.denied == 1


class TestMaxNodesDown:
    def test_enforced_with_downtime(self):
        coordinator = RollingCoordinator(min_gap_s=0.0, max_nodes_down=1)
        assert coordinator.request(0, now=0.0, downtime_s=100.0)
        assert not coordinator.request(1, now=50.0, downtime_s=100.0)
        # Node 0 is back up at t=100.
        assert coordinator.request(1, now=101.0, downtime_s=100.0)

    def test_two_allowed(self):
        coordinator = RollingCoordinator(min_gap_s=0.0, max_nodes_down=2)
        assert coordinator.request(0, now=0.0, downtime_s=100.0)
        assert coordinator.request(1, now=1.0, downtime_s=100.0)
        assert not coordinator.request(2, now=2.0, downtime_s=100.0)

    def test_not_binding_without_downtime(self):
        coordinator = RollingCoordinator(min_gap_s=0.0, max_nodes_down=1)
        for i in range(5):
            assert coordinator.request(i, now=float(i), downtime_s=0.0)

    def test_nodes_down_expires(self):
        coordinator = RollingCoordinator(max_nodes_down=1)
        coordinator.request(0, now=0.0, downtime_s=10.0)
        assert coordinator.nodes_down(5.0) == 1
        assert coordinator.nodes_down(10.1) == 0


class TestSimultaneousRequests:
    """A burst of triggers at one instant (aging is correlated, so
    whole-cluster simultaneous requests are the common case)."""

    def test_cap_holds_under_simultaneous_triggers(self):
        coordinator = RollingCoordinator(min_gap_s=0.0, max_nodes_down=2)
        grants = [
            coordinator.request(node, now=500.0, downtime_s=60.0)
            for node in range(8)
        ]
        assert grants == [True, True] + [False] * 6
        assert coordinator.granted == 2
        assert coordinator.denied == 6
        assert coordinator.nodes_down(500.0) == 2

    def test_window_reopens_only_after_downtime(self):
        coordinator = RollingCoordinator(min_gap_s=0.0, max_nodes_down=2)
        for node in range(8):
            coordinator.request(node, now=500.0, downtime_s=60.0)
        assert not coordinator.request(5, now=559.9, downtime_s=60.0)
        assert coordinator.request(5, now=560.1, downtime_s=60.0)
        assert coordinator.nodes_down(560.1) == 1

    def test_gap_serialises_a_simultaneous_burst(self):
        coordinator = RollingCoordinator(min_gap_s=30.0, max_nodes_down=8)
        grants = [
            coordinator.request(node, now=100.0, downtime_s=0.0)
            for node in range(4)
        ]
        assert grants == [True, False, False, False]


class TestLifecycle:
    def test_reset(self):
        coordinator = RollingCoordinator(min_gap_s=60.0)
        coordinator.request(0, now=0.0, downtime_s=100.0)
        coordinator.reset()
        assert coordinator.request(1, now=1.0, downtime_s=0.0)
        assert coordinator.granted == 1
        assert coordinator.nodes_down(1.0) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            RollingCoordinator(min_gap_s=-1.0)
        with pytest.raises(ValueError):
            RollingCoordinator(max_nodes_down=0)

    def test_unrestricted_grants_everything(self):
        coordinator = UnrestrictedCoordinator()
        for i in range(20):
            assert coordinator.request(i % 3, now=0.0, downtime_s=1e6)
