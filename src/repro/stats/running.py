"""Welford's online algorithm for running moments.

Used wherever the library needs a mean/variance over a stream without
keeping the stream: simulator metric accounting, SLA calibration, and the
experiment harness.  Welford's update is numerically stable even for
millions of nearly-equal observations, unlike the naive
``sum of squares - square of sum`` formula.
"""

from __future__ import annotations

import math
from typing import Iterable


class OnlineMoments:
    """Running count, mean and variance of a stream of numbers.

    Examples
    --------
    >>> m = OnlineMoments()
    >>> for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]:
    ...     m.push(x)
    >>> m.mean
    5.0
    >>> m.population_variance
    4.0
    """

    __slots__ = ("count", "mean", "_m2", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def push(self, value: float) -> None:
        """Fold one observation into the moments."""
        value = float(value)
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def extend(self, values: Iterable[float]) -> None:
        """Fold many observations."""
        for value in values:
            self.push(value)

    @property
    def variance(self) -> float:
        """Unbiased (n-1) sample variance; 0.0 when fewer than 2 samples."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def population_variance(self) -> float:
        """Biased (n) variance; 0.0 when empty."""
        if self.count == 0:
            return 0.0
        return self._m2 / self.count

    @property
    def std(self) -> float:
        """Unbiased sample standard deviation."""
        return math.sqrt(self.variance)

    def merge(self, other: "OnlineMoments") -> "OnlineMoments":
        """Combine two streams' moments (Chan et al. parallel update)."""
        merged = OnlineMoments()
        total = self.count + other.count
        if total == 0:
            return merged
        delta = other.mean - self.mean
        merged.count = total
        merged.mean = self.mean + delta * other.count / total
        merged._m2 = (
            self._m2
            + other._m2
            + delta * delta * self.count * other.count / total
        )
        merged.minimum = min(self.minimum, other.minimum)
        merged.maximum = max(self.maximum, other.maximum)
        return merged

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OnlineMoments(count={self.count}, mean={self.mean:.6g}, "
            f"std={self.std:.6g})"
        )
