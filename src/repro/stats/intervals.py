"""Confidence intervals for replication means.

Simulation experiments in this library follow the paper's design of a few
independent replications; reporting uses the classical Student-t interval
over the replication means.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np
from scipy.stats import t as student_t


def mean_confidence_interval(
    values: Sequence[float], confidence: float = 0.95
) -> Tuple[float, float, float]:
    """Return ``(mean, low, high)`` for a t-based confidence interval.

    With a single replication the interval degenerates to the point
    estimate, which keeps small smoke-test runs usable.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must lie in (0, 1)")
    data = np.asarray(values, dtype=float)
    if data.size == 0:
        raise ValueError("need at least one replication")
    mean = float(data.mean())
    if data.size == 1:
        return mean, mean, mean
    sem = float(data.std(ddof=1)) / math.sqrt(data.size)
    critical = float(student_t.ppf(0.5 + confidence / 2.0, df=data.size - 1))
    half_width = critical * sem
    return mean, mean - half_width, mean + half_width
