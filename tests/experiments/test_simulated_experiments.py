"""Smoke-level integration runs of the simulated experiments.

These use a tiny custom scale so the whole file stays fast; the shape
assertions (who wins where) are in the benchmarks, which run at a larger
scale.
"""

import pytest

from repro.experiments.ablations import run_ablations
from repro.experiments.autocorr import run_autocorrelation
from repro.experiments.comparison import run_fig16
from repro.experiments.saraa_fig import run_fig15
from repro.experiments.scale import Scale
from repro.experiments.sraa_figs import (
    CONFIGS_BUCKETS_DOUBLED,
    CONFIGS_DEPTH_DOUBLED,
    CONFIGS_NKD15,
    CONFIGS_SAMPLE_DOUBLED,
    run_fig09_10,
)

TINY = Scale(transactions=800, replications=1, loads=(0.5, 9.0), label="tiny")


class TestConfigFamilies:
    def test_products_match_sections(self):
        assert all(n * k * d == 15 for n, k, d in CONFIGS_NKD15)
        for family in (
            CONFIGS_SAMPLE_DOUBLED,
            CONFIGS_DEPTH_DOUBLED,
            CONFIGS_BUCKETS_DOUBLED,
        ):
            assert all(n * k * d == 30 for n, k, d in family)

    def test_doubling_relations(self):
        # Section 5.2 doubles n, Section 5.3 doubles D, relative to 5.1.
        doubled_n = {(2 * n, k, d) for n, k, d in CONFIGS_NKD15}
        assert set(CONFIGS_SAMPLE_DOUBLED) <= doubled_n
        doubled_d = {(n, k, 2 * d) for n, k, d in CONFIGS_NKD15}
        assert len(set(CONFIGS_DEPTH_DOUBLED) & doubled_d) >= 6


class TestFig0910:
    def test_produces_rt_and_loss_tables(self):
        result = run_fig09_10(TINY, seed=0)
        assert len(result.tables) == 2
        rt, loss = result.tables
        assert len(rt.series) == 7
        assert len(loss.series) == 7

    def test_loss_fractions_valid(self):
        result = run_fig09_10(TINY, seed=0)
        for series in result.tables[1].series:
            assert all(0.0 <= v <= 1.0 for v in series.points.values())


class TestFig15:
    def test_contains_both_algorithms(self):
        result = run_fig15(TINY, seed=0)
        labels = [s.label for s in result.tables[0].series]
        assert any(label.startswith("SARAA") for label in labels)
        assert any(label.startswith("(n=") for label in labels)


class TestFig16:
    def test_three_contenders(self):
        result = run_fig16(TINY, seed=0)
        labels = {s.label for s in result.tables[0].series}
        assert labels == {
            "CLTA (n=30, K=1, D=1)",
            "SRAA (n=2, K=5, D=3)",
            "SARAA (n=2, K=5, D=3)",
        }

    def test_low_load_loss_ordering(self):
        # The paper's crispest claim: at 0.5 CPUs CLTA loses a
        # measurable fraction, SRAA/SARAA essentially none.
        scale = Scale(
            transactions=6_000, replications=1, loads=(0.5,), label="tiny"
        )
        result = run_fig16(scale, seed=1)
        loss = result.tables[1]
        clta = loss.get_series("CLTA (n=30, K=1, D=1)").value_at(0.5)
        sraa = loss.get_series("SRAA (n=2, K=5, D=3)").value_at(0.5)
        saraa = loss.get_series("SARAA (n=2, K=5, D=3)").value_at(0.5)
        assert clta > 0.0
        assert sraa == pytest.approx(0.0, abs=1e-4)
        assert saraa == pytest.approx(0.0, abs=1e-4)


class TestAutocorrelation:
    def test_runs_at_reduced_scale(self):
        scale = Scale(
            transactions=4_000, replications=5, loads=(8.0,), label="tiny"
        )
        result = run_autocorrelation(scale, seed=0)
        gamma = result.tables[0].get_series("gamma_hat")
        assert len(gamma.points) == 5
        assert all(abs(v) < 0.2 for v in gamma.points.values())


class TestAblations:
    def test_produces_five_tables(self):
        result = run_ablations(TINY, seed=0)
        assert len(result.tables) == 5
        for table in result.tables:
            assert table.series
