"""E3 -- Section 4.1: lag-1 autocorrelation of simulated M/M/16 RTs."""

from conftest import assertions_enabled, regenerate


def test_autocorrelation_study(benchmark):
    result = regenerate(benchmark, "autocorr")
    if not assertions_enabled():
        return
    gamma = result.tables[0].get_series("gamma_hat")
    threshold = result.tables[0].get_series("threshold 1.96/sqrt(N)")
    # Paper: at most 1 of 5 replications significant -- first-order
    # correlation plays a minor role even at the maximum load.
    significant = sum(
        abs(g) > threshold.value_at(rep)
        for rep, g in gamma.points.items()
    )
    assert significant <= len(gamma.points) // 2
    # The coefficients themselves are tiny.
    assert all(abs(g) < 0.05 for g in gamma.points.values())
