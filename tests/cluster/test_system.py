"""The cluster deployment end to end."""

import dataclasses

import pytest

from repro.cluster.balancer import JoinShortestQueue, RoundRobin
from repro.cluster.coordinator import RollingCoordinator
from repro.cluster.system import ClusterSystem
from repro.core.sla import PAPER_SLO
from repro.core.sraa import SRAA
from repro.ecommerce.config import PAPER_CONFIG
from repro.ecommerce.workload import PoissonArrivals


def make_cluster(
    n_nodes=4,
    rate_per_node=1.6,
    policy_factory=lambda: SRAA(PAPER_SLO, 2, 5, 3),
    config=PAPER_CONFIG,
    seed=0,
    **kwargs,
):
    return ClusterSystem(
        config,
        n_nodes,
        PoissonArrivals(n_nodes * rate_per_node),
        policy_factory,
        seed=seed,
        **kwargs,
    )


class TestConservation:
    def test_all_transactions_resolve(self):
        result = make_cluster().run(4_000)
        assert result.completed + result.lost == 4_000
        assert result.arrivals == 4_000

    def test_per_node_counts_sum_to_totals(self):
        result = make_cluster().run(4_000)
        assert sum(n.dispatched for n in result.nodes) == 4_000
        assert sum(n.completed for n in result.nodes) == result.completed
        assert sum(n.lost for n in result.nodes) == result.lost

    def test_reproducible(self):
        a = make_cluster(seed=3).run(2_000)
        b = make_cluster(seed=3).run(2_000)
        assert a.avg_response_time == b.avg_response_time
        assert a.lost == b.lost

    def test_rerun_resets_state(self):
        cluster = make_cluster()
        first = cluster.run(2_000)
        second = cluster.run(2_000)
        assert second.arrivals == 2_000
        assert second.completed + second.lost == 2_000
        assert first.sim_duration_s > 0


class TestDispatching:
    def test_round_robin_balances_perfectly(self):
        result = make_cluster(balancer=RoundRobin()).run(4_000)
        assert result.imbalance() == pytest.approx(1.0, abs=0.01)

    def test_single_node_cluster_behaves_like_single_server(self):
        # A 1-node cluster is the Section-3 system; at a low load with
        # a policy it stays near the healthy 5 s baseline.
        result = make_cluster(n_nodes=1, rate_per_node=0.5).run(6_000)
        assert result.n_nodes == 1
        assert result.avg_response_time < 10.0
        assert result.gc_count > 0  # the aging mechanism is active

    def test_jsq_no_worse_than_round_robin_under_load(self):
        rr = make_cluster(rate_per_node=1.8, seed=5).run(8_000)
        jsq = make_cluster(
            rate_per_node=1.8, seed=5, balancer=JoinShortestQueue()
        ).run(8_000)
        assert jsq.avg_response_time <= rr.avg_response_time * 1.2

    def test_more_nodes_absorb_more_load(self):
        # Same per-node load; the larger cluster should look the same
        # per node (scalability sanity).
        small = make_cluster(n_nodes=2, seed=7).run(4_000)
        large = make_cluster(n_nodes=6, seed=7).run(4_000)
        assert large.avg_response_time < 3 * max(
            small.avg_response_time, 5.0
        )


class TestRejuvenation:
    def test_nodes_rejuvenate_independently(self):
        result = make_cluster(rate_per_node=1.8).run(8_000)
        assert result.rejuvenations > 0
        rejuvenating_nodes = [
            n.name for n in result.nodes if n.rejuvenations > 0
        ]
        assert len(rejuvenating_nodes) >= 2

    def test_rejuvenation_controls_response_time(self):
        managed = make_cluster(rate_per_node=1.8, seed=9).run(8_000)
        unmanaged = make_cluster(
            rate_per_node=1.8, policy_factory=lambda: None, seed=9
        ).run(8_000)
        assert managed.avg_response_time < unmanaged.avg_response_time
        assert unmanaged.lost == 0

    def test_coordinator_limits_trigger_rate(self):
        open_cluster = make_cluster(rate_per_node=1.8, seed=11).run(8_000)
        throttled = make_cluster(
            rate_per_node=1.8,
            seed=11,
            coordinator=RollingCoordinator(min_gap_s=600.0),
        )
        throttled_result = throttled.run(8_000)
        assert throttled_result.rejuvenations < open_cluster.rejuvenations
        assert throttled.coordinator.denied > 0

    def test_downtime_refuses_arrivals_when_all_down(self):
        config = dataclasses.replace(
            PAPER_CONFIG, rejuvenation_downtime_s=400.0
        )
        cluster = make_cluster(
            n_nodes=1,
            rate_per_node=1.8,
            config=config,
            seed=13,
        )
        result = cluster.run(4_000)
        assert result.refused > 0
        assert result.completed + result.lost == 4_000


class _AlwaysTrigger:
    """A policy that fires on every completion (worst-case flapping)."""

    name = "always"

    def observe(self, value):
        return True

    def reset(self):
        pass

    def set_listener(self, listener):
        pass


class TestWholeClusterDowntime:
    """Lost-transaction accounting when every node is in rejuvenation
    downtime at once (no coordinator to stagger the restarts)."""

    def run_all_down(self, n_nodes=3):
        config = dataclasses.replace(
            PAPER_CONFIG, rejuvenation_downtime_s=500.0
        )
        cluster = make_cluster(
            n_nodes=n_nodes,
            rate_per_node=1.8,
            policy_factory=_AlwaysTrigger,
            config=config,
            seed=17,
        )
        return cluster, cluster.run(3_000)

    def test_refusals_counted_and_conserved(self):
        cluster, result = self.run_all_down()
        assert result.refused > 0
        assert result.completed + result.lost == 3_000
        assert result.arrivals == 3_000

    def test_refusals_are_cluster_level_losses(self):
        # A refusal happens before dispatch, so it belongs to no node:
        # total lost = per-node (in-flight) losses + refused arrivals.
        cluster, result = self.run_all_down()
        per_node_lost = sum(n.lost for n in result.nodes)
        assert result.lost == per_node_lost + result.refused
        assert sum(n.dispatched for n in result.nodes) == (
            3_000 - result.refused
        )

    def test_loss_fraction_includes_refusals(self):
        cluster, result = self.run_all_down()
        assert result.loss_fraction == pytest.approx(result.lost / 3_000)
        assert result.loss_fraction > 0

    def test_every_node_simultaneously_down(self):
        cluster, result = self.run_all_down()
        # With every node down the eligibility fast path must report
        # an empty set, not fall back to "all nodes".
        assert any(
            acc.down_until > 0 for acc in cluster._accounting
        )
        assert result.rejuvenations >= cluster.n_nodes


class TestValidationAndMetrics:
    def test_needs_a_node(self):
        with pytest.raises(ValueError):
            make_cluster(n_nodes=0)

    def test_run_validation(self):
        cluster = make_cluster()
        with pytest.raises(ValueError):
            cluster.run(0)
        with pytest.raises(ValueError):
            cluster.run(100, warmup=100)

    def test_node_stats_loss_fraction(self):
        result = make_cluster(rate_per_node=1.8).run(4_000)
        for node in result.nodes:
            assert 0.0 <= node.loss_fraction <= 1.0

    def test_imbalance_of_idle_cluster(self):
        from repro.cluster.metrics import ClusterResult, NodeStats

        nodes = tuple(
            NodeStats(f"n{i}", 0, 0, 0, 0.0, 0, 0) for i in range(2)
        )
        result = ClusterResult(
            arrivals=0, completed=0, lost=0, refused=0,
            avg_response_time=0.0, rt_std=0.0, loss_fraction=0.0,
            rejuvenations=0, gc_count=0, sim_duration_s=0.0, nodes=nodes,
        )
        assert result.imbalance() == 1.0


class TestHeterogeneousClusters:
    def test_per_node_configs_accepted(self):
        small_heap = dataclasses.replace(PAPER_CONFIG, heap_mb=500.0)
        cluster = ClusterSystem(
            [PAPER_CONFIG, small_heap],
            n_nodes=2,
            arrivals=PoissonArrivals(2 * 1.6),
            policy_factory=lambda: None,
            seed=31,
        )
        result = cluster.run(6_000)
        # The small-heap node collects garbage ~6x more often.
        big, small = result.nodes
        assert small.gc_count > 3 * big.gc_count

    def test_config_count_must_match(self):
        with pytest.raises(ValueError):
            ClusterSystem(
                [PAPER_CONFIG],
                n_nodes=2,
                arrivals=PoissonArrivals(1.0),
                policy_factory=lambda: None,
            )

    def test_weighted_dispatch_matches_capacity(self):
        from repro.cluster.balancer import WeightedRoundRobin

        # A node with half the CPUs gets half the traffic.
        half = dataclasses.replace(PAPER_CONFIG, cpus=8)
        cluster = ClusterSystem(
            [PAPER_CONFIG, half],
            n_nodes=2,
            arrivals=PoissonArrivals(1.5),
            policy_factory=lambda: None,
            balancer=WeightedRoundRobin([2.0, 1.0]),
            seed=32,
        )
        result = cluster.run(3_000)
        big, small = result.nodes
        assert big.dispatched == pytest.approx(2 * small.dispatched, rel=0.01)

    def test_per_node_downtime_honoured(self):
        from repro.core.baselines import PeriodicRejuvenation

        down_config = dataclasses.replace(
            PAPER_CONFIG, rejuvenation_downtime_s=200.0
        )
        cluster = ClusterSystem(
            [down_config, PAPER_CONFIG],
            n_nodes=2,
            arrivals=PoissonArrivals(2 * 1.6),
            policy_factory=lambda: PeriodicRejuvenation(period=200),
            seed=33,
        )
        result = cluster.run(4_000)
        # Node 0 spends time down, so node 1 receives more traffic.
        assert result.nodes[1].dispatched > result.nodes[0].dispatched
