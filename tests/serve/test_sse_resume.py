"""SSE resume: Last-Event-ID replays what the ring still holds.

A follower that reconnects after missing events presents the last
``id:`` it saw; the broker prefills everything newer from its replay
ring, so a server-side publish burst between connections is not lost.
"""

import json
import urllib.error
import urllib.request

from repro.serve.broker import REPLAY_BUFFER_SIZE, EventBroker


def publish_burst(broker, count, start=0):
    for index in range(start, start + count):
        broker.publish("tick", {"n": index})


class TestBrokerReplay:
    def test_subscribe_after_seq_prefills_the_gap(self):
        broker = EventBroker()
        publish_burst(broker, 5)
        live = broker.subscribe()
        assert live.replayed == 0  # plain subscription: nothing replayed
        resumed = broker.subscribe(after_seq=2)
        assert resumed.replayed == 3
        replayed = [resumed.get(timeout=1.0) for _ in range(3)]
        assert [e["seq"] for e in replayed] == [3, 4, 5]
        assert [e["data"]["n"] for e in replayed] == [2, 3, 4]
        live.close()
        resumed.close()

    def test_after_the_latest_seq_replays_nothing(self):
        broker = EventBroker()
        publish_burst(broker, 3)
        subscription = broker.subscribe(after_seq=broker.latest_seq)
        assert subscription.replayed == 0
        subscription.close()

    def test_ring_is_bounded(self):
        broker = EventBroker()
        publish_burst(broker, REPLAY_BUFFER_SIZE + 50)
        subscription = broker.subscribe(after_seq=0)
        assert subscription.replayed == REPLAY_BUFFER_SIZE
        first = subscription.get(timeout=1.0)
        assert first["seq"] == 51  # oldest 50 fell off the ring
        subscription.close()

    def test_no_replay_race_with_concurrent_publishes(self):
        # Prefill happens under the broker lock: an event is either in
        # the prefill or delivered live, never both, never neither.
        broker = EventBroker()
        publish_burst(broker, 10)
        subscription = broker.subscribe(after_seq=4)
        publish_burst(broker, 5, start=10)
        seen = [subscription.get(timeout=1.0) for _ in range(11)]
        assert [e["seq"] for e in seen] == list(range(5, 16))
        subscription.close()


class TestHttpResume:
    def test_query_param_resume(self, served):
        for index in range(4):
            served.server.broker.publish("tick", {"n": index})
        events = served.sse_events(max_events=0, timeout_s=0.2)
        assert events[0]["data"]["replayed"] == 0

        path = (
            "/api/events?last_event_id=2&max_events=2&timeout_s=5"
        )
        resumed = served.sse_events_from(path)
        assert resumed[0]["event"] == "sse.hello"
        assert resumed[0]["data"]["replayed"] == 2
        assert [e["seq"] for e in resumed[1:]] == [3, 4]
        assert [e["data"]["n"] for e in resumed[1:]] == [2, 3]

    def test_last_event_id_header_resume(self, served):
        for index in range(3):
            served.server.broker.publish("tick", {"n": index})
        request = urllib.request.Request(
            served.url + "/api/events?max_events=2&timeout_s=5",
            headers={"Last-Event-ID": "1"},
        )
        lines = []
        with urllib.request.urlopen(request, timeout=15.0) as response:
            for raw in response:
                lines.append(raw.decode("utf-8").rstrip("\n"))
        hello = next(
            line for line in lines if line.startswith("data")
        )
        assert json.loads(hello.partition(": ")[2])["replayed"] == 2
        ids = [
            int(line.partition(": ")[2])
            for line in lines
            if line.startswith("id")
        ]
        assert ids == [2, 3]

    def test_bad_last_event_id_is_a_400(self, served):
        status, payload = served.get("/api/events?last_event_id=abc")
        assert status == 400
        request = urllib.request.Request(
            served.url + "/api/events?max_events=0&timeout_s=1",
            headers={"Last-Event-ID": "not-a-number"},
        )
        try:
            urllib.request.urlopen(request, timeout=15.0)
        except urllib.error.HTTPError as error:
            assert error.code == 400
        else:  # pragma: no cover
            raise AssertionError("expected a 400")
