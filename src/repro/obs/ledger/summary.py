"""Machine-readable run listings, shared by the CLI and the serve API.

``repro runs list --json`` and ``GET /api/runs`` must never drift
apart, so both go through :func:`runs_payload`: one function that
filters, paginates, and summarises ledger entries into plain JSON-safe
data.  The round trip is pinned by ``tests/serve/test_serve_api.py``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

#: Payload schema version (bumped on shape changes).
LIST_SCHEMA_VERSION = 1


def entry_summary(
    entry: Dict[str, Any],
    pinned: Optional[Dict[str, str]] = None,
) -> Dict[str, Any]:
    """One run's listing row: identity, provenance, timing.

    ``pinned`` maps entry id -> baseline label (see
    :meth:`~repro.obs.ledger.store.Ledger.baselines`).
    """
    manifest = entry.get("manifest", {})
    timing = entry.get("timing") or {}
    return {
        "id": entry.get("id"),
        "created_utc": entry.get("created_utc"),
        "kind": entry.get("kind"),
        "label": entry.get("label"),
        "manifest_hash": manifest.get("manifest_hash"),
        "baseline": (pinned or {}).get(entry.get("id")),
        "wall_clock_s": timing.get("wall_clock_s"),
    }


def runs_payload(
    entries: Sequence[Dict[str, Any]],
    baselines: Optional[Dict[str, Dict[str, Any]]] = None,
    kind: Optional[str] = None,
    limit: Optional[int] = None,
    offset: int = 0,
) -> Dict[str, Any]:
    """The paginated listing payload over ``entries`` (oldest first).

    ``kind`` filters before pagination; ``offset`` skips that many
    filtered entries from the start and ``limit`` caps what remains
    (plain forward pagination -- the CLI's ``--last N`` maps to
    ``offset = total - N``).  ``total`` always reports the filtered
    count so clients can page without a second request.
    """
    pinned = {
        pin["id"]: label for label, pin in (baselines or {}).items()
    }
    filtered: List[Dict[str, Any]] = [
        entry
        for entry in entries
        if kind is None or entry.get("kind") == kind
    ]
    offset = max(0, int(offset))
    window = filtered[offset:]
    if limit is not None:
        window = window[: max(0, int(limit))]
    return {
        "schema_version": LIST_SCHEMA_VERSION,
        "total": len(filtered),
        "offset": offset,
        "count": len(window),
        "runs": [entry_summary(entry, pinned) for entry in window],
    }
