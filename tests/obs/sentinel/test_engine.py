"""The alert engine: transitions, provenance, deterministic replay.

Acceptance pins for the tentpole: replaying the synthetic campaign
trace (scripted aging in ``[0.4 h, 0.7 h]``) opens exactly one burn
incident per run inside the degraded window and closes it on recovery,
with **zero** incidents over the healthy prefix of the same trace --
and the whole incident table is byte-identical across replays.
"""

import pytest

from repro.obs.columnar.query import RecordsQuery
from repro.obs.columnar.synth import synth_campaign_trace
from repro.obs.sentinel import AlertEngine, AlertLedger, BurnRateRule
from repro.obs.sentinel.engine import replay_trace

from .test_rules import (
    BASELINE,
    DEGRADED,
    FakeLedger,
    burn_rule,
    entry,
    snap,
)

HORIZON = 3600.0
INJECT_TS = 0.4 * HORIZON  # 1440 s
CLEAR_TS = 0.7 * HORIZON  # 2520 s


def fresh_engine(**kwargs):
    kwargs.setdefault("rules", [burn_rule()])
    return AlertEngine(**kwargs)


class TestTransitions:
    def test_open_refresh_close(self):
        engine = fresh_engine()
        engine.observe_snapshot(snap(10.0, 10, 0))
        assert engine.open_count == 0
        engine.observe_snapshot(snap(20.0, 20, 20))  # fires
        assert engine.open_count == 1
        (incident,) = engine.incidents()
        assert incident["id"] == "inc-0001"
        assert incident["status"] == "open"
        assert incident["opened_ts"] == 20.0
        engine.observe_snapshot(snap(30.0, 30, 30))  # still firing
        assert engine.open_count == 1  # refreshed, not duplicated
        (incident,) = engine.incidents()
        assert incident["updates"] == 1
        engine.observe_snapshot(snap(140.0, 140, 30))  # recovered
        assert engine.open_count == 0
        (incident,) = engine.incidents()
        assert incident["status"] == "closed"
        assert incident["close_reason"] == "resolved"
        assert incident["closed_ts"] == 140.0

    def test_incident_ids_are_sequential(self):
        engine = fresh_engine()
        engine.observe_snapshot(snap(20.0, 20, 20, run="a"))
        engine.observe_snapshot(snap(20.0, 20, 20, run="b"))
        assert [i["id"] for i in engine.incidents()] == [
            "inc-0001",
            "inc-0002",
        ]

    def test_resolve_target_closes_as_run_ended(self):
        engine = fresh_engine()
        engine.observe_snapshot(snap(20.0, 20, 20))
        engine.resolve_target("r1", reason="run_ended")
        (incident,) = engine.incidents()
        assert incident["status"] == "closed"
        assert incident["close_reason"] == "run_ended"
        assert incident["closed_ts"] == 20.0  # last observation, no clock
        # Burn state for the finished tag was forgotten too.
        assert engine.rules[0]._windows == {}

    def test_payload_counts(self):
        engine = fresh_engine()
        engine.observe_snapshot(snap(20.0, 20, 20, run="a"))
        engine.observe_snapshot(snap(20.0, 20, 20, run="b"))
        engine.resolve_target("a")
        payload = engine.to_payload()
        assert payload["open"] == 1
        assert payload["closed"] == 1
        assert payload["rules"][0]["kind"] == "burn_rate"

    def test_incident_carries_provenance(self):
        engine = fresh_engine()
        engine.observe_snapshot(snap(20.0, 20, 20))
        (incident,) = engine.incidents()
        assert incident["runs"] == ["r1"]
        assert incident["evidence"][0]["record"] == "event"
        assert incident["rule"] == "slo"
        assert incident["rule_kind"] == "burn_rate"


class TestEventRouting:
    class _Ledger(FakeLedger):
        def __init__(self, entries):
            super().__init__()
            self._entries = {e["id"]: e for e in entries}

        def get(self, ref):
            if ref not in self._entries:
                raise LookupError(ref)
            return self._entries[ref]

    def test_job_finished_feeds_regression_and_resolves_burn(self):
        from repro.obs.sentinel import RegressionRule

        degraded = entry("sim-0002", DEGRADED)
        ledger = self._Ledger([BASELINE, degraded])
        engine = AlertEngine(
            rules=[
                burn_rule(),
                RegressionRule("regress", baseline="prod", persistence=1),
            ],
            ledger=ledger,
        )
        engine.observe_event(
            {"event": "live.snapshot", "data": snap(20.0, 20, 20)}
        )
        assert engine.open_count == 1
        engine.observe_event(
            {
                "event": "job.finished",
                "data": {"job": "r1", "entry_id": "sim-0002"},
            }
        )
        incidents = engine.incidents()
        burn = next(i for i in incidents if i["rule"] == "slo")
        regress = next(i for i in incidents if i["rule"] == "regress")
        assert burn["status"] == "closed"
        assert burn["close_reason"] == "run_ended"
        assert regress["status"] == "open"
        assert "sim-0002" in regress["runs"]

    def test_each_ledger_entry_is_evaluated_once(self):
        from repro.obs.sentinel import RegressionRule

        rule = RegressionRule("regress", baseline="prod", persistence=99)
        engine = AlertEngine(
            rules=[rule], ledger=self._Ledger([BASELINE])
        )
        candidate = entry("sim-0002", DEGRADED)
        engine.observe_entry(candidate)
        engine.observe_entry(candidate)
        assert rule._streak == 1  # not double-counted

    def test_cancelled_jobs_carry_no_entry(self):
        engine = fresh_engine()
        engine.observe_event(
            {
                "event": "job.finished",
                "data": {"job": "r1", "entry_id": None},
            }
        )  # must not raise; nothing recorded
        assert engine.incidents() == []


class TestAlertLedgerRecording:
    def test_transitions_are_appended_with_envelopes(self, tmp_path):
        alerts = AlertLedger(str(tmp_path / "alerts"))
        engine = fresh_engine(alerts=alerts)
        engine.observe_snapshot(snap(20.0, 20, 20))
        engine.observe_snapshot(snap(140.0, 140, 20))
        records = alerts.records()
        assert [r["action"] for r in records] == ["open", "close"]
        assert [r["seq"] for r in records] == [1, 2]
        assert all("created_utc" in r for r in records)
        # Replaying the log yields the incident's final state.
        (incident,) = alerts.incidents()
        assert incident["status"] == "closed"
        assert alerts.open_incidents() == []
        assert incident == engine.incidents()[0]

    def test_broken_sink_never_breaks_the_engine(self):
        class Exploding:
            def emit(self, record):
                raise RuntimeError("sink down")

        engine = fresh_engine(sinks=[Exploding()])
        engine.observe_snapshot(snap(20.0, 20, 20))
        assert engine.open_count == 1


class TestReplayTrace:
    @pytest.fixture(scope="class")
    def trace(self):
        return synth_campaign_trace(
            runs=2, events_per_run=4000, horizon_s=HORIZON, seed=7
        )

    def replay(self, source):
        engine = AlertEngine(
            rules=[
                BurnRateRule(
                    "slo",
                    slo_s=0.2,
                    objective=0.95,
                    factor=4.0,
                    long_window_s=600.0,
                    short_window_s=120.0,
                    min_count=50,
                )
            ]
        )
        labels = replay_trace(source, engine, snapshot_every=200)
        return labels, engine.incidents()

    def test_seeded_aging_opens_one_incident_per_run(self, trace):
        labels, incidents = self.replay(trace)
        assert labels == [
            "faults/synthetic/SRAA/0",
            "faults/synthetic/SARAA/0",
        ]
        assert [i["id"] for i in incidents] == ["inc-0001", "inc-0002"]
        assert sorted(i["target"] for i in incidents) == sorted(labels)
        for incident in incidents:
            # Opened inside the scripted degraded window (plus the lag
            # of filling the long window), resolved after the clear.
            assert INJECT_TS < incident["opened_ts"] < CLEAR_TS
            assert incident["status"] == "closed"
            assert incident["close_reason"] == "resolved"
            assert CLEAR_TS < incident["closed_ts"] < HORIZON

    def test_replay_is_deterministic(self, trace):
        first = self.replay(trace)
        second = self.replay(trace)
        assert first == second

    def test_healthy_prefix_is_quiet(self, trace):
        healthy = RecordsQuery(
            [
                record
                for record in trace.iter_records()
                if record["ts"] < INJECT_TS
            ]
        )
        labels, incidents = self.replay(healthy)
        assert len(labels) == 2
        assert incidents == []  # zero false alarms on healthy traffic

    def test_replay_without_an_slo_raises(self, trace):
        engine = AlertEngine(
            rules=[BurnRateRule("no-slo", slo_s=None)]
        )
        with pytest.raises(ValueError, match="SLO"):
            replay_trace(trace, engine)
