"""Cluster-wide coordination of rejuvenation events.

With several nodes, uncoordinated triggers can restart half the cluster
in the same minute and crater its capacity.  The coordinator arbitrates
trigger *requests*: a node whose policy fires asks for permission, and
the coordinator enforces rolling-restart discipline:

* at most ``max_nodes_down`` nodes may be inside their rejuvenation
  downtime simultaneously;
* consecutive rejuvenations (cluster-wide) are spaced at least
  ``min_gap_s`` apart.

A denied request is simply dropped: the node's policy has already reset
itself, so if the degradation is real the evidence re-accumulates and
the node asks again once the window opens -- which is exactly the
behaviour an operator wants from a flapping detector.
"""

from __future__ import annotations

from typing import List


class RollingCoordinator:
    """Arbitrates rejuvenation requests across a cluster.

    Parameters
    ----------
    min_gap_s:
        Minimum simulated time between any two granted rejuvenations.
    max_nodes_down:
        Maximum number of nodes simultaneously inside rejuvenation
        downtime (only binding when the system config has a positive
        ``rejuvenation_downtime_s``).

    Examples
    --------
    >>> coordinator = RollingCoordinator(min_gap_s=60.0)
    >>> coordinator.request(node=0, now=0.0, downtime_s=0.0)
    True
    >>> coordinator.request(node=1, now=30.0, downtime_s=0.0)
    False
    >>> coordinator.request(node=1, now=61.0, downtime_s=0.0)
    True
    """

    def __init__(self, min_gap_s: float = 0.0, max_nodes_down: int = 1):
        if min_gap_s < 0:
            raise ValueError("minimum gap must be non-negative")
        if max_nodes_down < 1:
            raise ValueError("at least one node must be allowed down")
        self.min_gap_s = float(min_gap_s)
        self.max_nodes_down = int(max_nodes_down)
        self._last_grant: float = -float("inf")
        self._down_until: List[float] = []
        self.granted = 0
        self.denied = 0

    def reset(self) -> None:
        """Forget history between runs."""
        self._last_grant = -float("inf")
        self._down_until = []
        self.granted = 0
        self.denied = 0

    def nodes_down(self, now: float) -> int:
        """Nodes currently inside their rejuvenation downtime."""
        self._down_until = [t for t in self._down_until if t > now]
        return len(self._down_until)

    def request(self, node: int, now: float, downtime_s: float) -> bool:
        """May ``node`` rejuvenate at time ``now``?

        Grants update the coordinator's history; denials do not.
        """
        if now - self._last_grant < self.min_gap_s:
            self.denied += 1
            return False
        if downtime_s > 0.0 and self.nodes_down(now) >= self.max_nodes_down:
            self.denied += 1
            return False
        self._last_grant = now
        if downtime_s > 0.0:
            self._down_until.append(now + downtime_s)
        self.granted += 1
        return True


class UnrestrictedCoordinator(RollingCoordinator):
    """Grant every request (independent per-node rejuvenation)."""

    def __init__(self) -> None:
        super().__init__(min_gap_s=0.0, max_nodes_down=10**9)
