"""Deterministic run manifests: the identity of a run as plain data.

A :class:`RunManifest` answers "what exactly ran?" for the three
invocation families of the CLI -- one-off simulations, registry
experiments (including the figure sweeps), and fault campaigns.  The
**hashed** portion is the deterministic identity: kind, canonical spec,
and the CRN seed protocol.  Execution details (backend, workers) and
provenance (git SHA, python, platform) ride alongside but are *never*
hashed -- by the repo's bit-identical-across-backends contract they do
not change outcomes, so a serial and a process-pool run of the same
spec share one manifest hash (pinned by
``tests/obs/test_ledger_manifest.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Sequence

from repro.obs.ledger.canonical import canonical_hash, to_plain
from repro.obs.ledger.provenance import environment_info

#: Schema version stamped into every manifest dict.
MANIFEST_SCHEMA_VERSION = 1

#: The replication-harness seed rule (see ``ecommerce/runner.py``).
REPLICATION_RULE = "seed + i"
#: The sweep-grid seed rule (see ``experiments/sweep.py``).
SWEEP_RULE = "seed + 1000 * load_index + i"
#: The campaign seed rule (see ``faults/campaign.py``).
CAMPAIGN_RULE = "seed + 1000 * scenario_index + i"
#: The fleet shard seed rule (see ``systems/fleet.py``).
FLEET_RULE = "fleet shard i: seed + 104729 * (i + 1)"


def _execution_info(backend: Any) -> Dict[str, Any]:
    """A plain execution block from a backend (or backend-ish dict)."""
    if backend is None:
        return {"backend": None, "workers": None}
    describe = getattr(backend, "describe", None)
    if callable(describe):
        return dict(describe())
    if isinstance(backend, Mapping):
        return dict(backend)
    return {
        "backend": getattr(backend, "name", str(backend)),
        "workers": getattr(backend, "workers", 1),
    }


@dataclass(frozen=True)
class RunManifest:
    """The identity and provenance of one recorded run.

    ``spec`` and ``seed_protocol`` must already be plain data (the
    builders below pass everything through
    :func:`~repro.obs.ledger.canonical.to_plain`).
    """

    kind: str
    label: str
    spec: Dict[str, Any]
    seed_protocol: Dict[str, Any]
    environment: Dict[str, Any] = field(default_factory=environment_info)
    execution: Dict[str, Any] = field(default_factory=dict)

    @property
    def manifest_hash(self) -> str:
        """SHA-256 over the deterministic identity only.

        Environment and execution are excluded on purpose: the same
        spec+seed must hash identically on every machine, backend and
        worker count.
        """
        return canonical_hash(
            {
                "kind": self.kind,
                "spec": self.spec,
                "seed_protocol": self.seed_protocol,
            }
        )

    def to_dict(self) -> Dict[str, Any]:
        """The ledger-entry representation (hash precomputed)."""
        return {
            "schema_version": MANIFEST_SCHEMA_VERSION,
            "kind": self.kind,
            "label": self.label,
            "manifest_hash": self.manifest_hash,
            "spec": self.spec,
            "seed_protocol": self.seed_protocol,
            "environment": dict(self.environment),
            "execution": dict(self.execution),
        }


# ---------------------------------------------------------------------------
# Builders, one per invocation family
# ---------------------------------------------------------------------------
def manifest_from_jobs(
    kind: str,
    label: str,
    jobs: Sequence[Any],
    master_seed: int,
    rule: str = REPLICATION_RULE,
    backend: Any = None,
) -> RunManifest:
    """A manifest from the actual job list that ran.

    The shared spec comes from the first job's
    :meth:`~repro.exec.jobs.ReplicationJob.manifest_dict` (all
    replications of one scenario share config/arrival/policy); the
    per-job CRN seeds are recorded verbatim so the manifest describes
    exactly the streams that were drawn, not just the rule.
    """
    if not jobs:
        raise ValueError("need at least one job")
    shared = jobs[0].manifest_dict()
    seeds = [job.seed for job in jobs]
    spec = {key: value for key, value in shared.items() if key != "seed"}
    return RunManifest(
        kind=kind,
        label=label,
        spec=spec,
        seed_protocol={"master": master_seed, "rule": rule, "seeds": seeds},
        execution=_execution_info(backend),
    )


def simulate_manifest(
    config: Any,
    arrival: Any,
    policy: Any,
    n_transactions: int,
    replications: int,
    seed: int,
    warmup: int = 0,
    backend: Any = None,
    label: Optional[str] = None,
) -> RunManifest:
    """The ``repro simulate`` manifest (seed rule: ``seed + i``)."""
    if label is None:
        name = getattr(policy, "name", None) or "none"
        label = f"simulate:{name}"
    spec = {
        "config": to_plain(config),
        "arrival": to_plain(arrival),
        "policy": to_plain(policy) if policy is not None else None,
        "n_transactions": int(n_transactions),
        "replications": int(replications),
        "warmup": int(warmup),
    }
    seeds = [seed + i for i in range(replications)]
    return RunManifest(
        kind="simulate",
        label=label,
        spec=spec,
        seed_protocol={
            "master": seed,
            "rule": REPLICATION_RULE,
            "seeds": seeds,
        },
        execution=_execution_info(backend),
    )


def experiment_manifest(
    experiment_id: str,
    scale: Any,
    seed: int,
    backend: Any = None,
) -> RunManifest:
    """A registry-experiment manifest (covers the figure sweeps too)."""
    from repro.experiments.registry import experiment_spec

    spec = experiment_spec(experiment_id, scale)
    return RunManifest(
        kind="experiment",
        label=f"experiment:{spec['experiment']}",
        spec=spec,
        seed_protocol={"master": seed, "rule": SWEEP_RULE},
        execution=_execution_info(backend),
    )


def campaign_manifest(
    scenarios: Sequence[Any],
    policies: Mapping[str, Any],
    replications: int,
    seed: int,
    backend: Any = None,
    system: Any = None,
) -> RunManifest:
    """The ``repro faults run`` manifest (CRN seeds shared per cell).

    ``system`` is the substrate the campaign ran against.  The default
    single node adds nothing to the spec -- every pre-protocol campaign
    hash (including committed CI baselines) stays stable -- while a
    cluster or fleet records its resolved spec (kind, topology,
    scheduler) in the hashed identity: the same scenarios on a
    different substrate are a different run.
    """
    spec = {
        "scenarios": [to_plain(scenario) for scenario in scenarios],
        "policies": {
            label: to_plain(policy) for label, policy in policies.items()
        },
        "replications": int(replications),
    }
    if system is not None:
        from repro.systems import resolve_system

        spec["system"] = to_plain(resolve_system(system).to_dict())
    names = ",".join(
        getattr(scenario, "name", "?") for scenario in scenarios
    )
    return RunManifest(
        kind="faults",
        label=f"faults:{names[:60]}",
        spec=spec,
        seed_protocol={"master": seed, "rule": CAMPAIGN_RULE},
        execution=_execution_info(backend),
    )
