"""The streaming monitor that connects a metric source to a policy."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.core.base import RejuvenationPolicy
from repro.stats.running import OnlineMoments


@dataclass
class MonitorReport:
    """Summary of a monitoring session."""

    observations: int
    triggers: int
    trigger_times: List[float]
    metric_mean: float
    metric_std: float

    @property
    def mean_time_between_triggers(self) -> float:
        """Average gap between consecutive triggers (inf when < 2)."""
        if len(self.trigger_times) < 2:
            return float("inf")
        gaps = [
            b - a
            for a, b in zip(self.trigger_times, self.trigger_times[1:])
        ]
        return sum(gaps) / len(gaps)


@dataclass
class _TriggerRecord:
    time: float
    observation_index: int


class RejuvenationMonitor:
    """Feeds metric observations to a policy and fires rejuvenation.

    Parameters
    ----------
    policy:
        Any :class:`~repro.core.base.RejuvenationPolicy`.
    on_rejuvenate:
        Callback invoked (with the trigger time) when the policy fires;
        the e-commerce simulator passes its capacity-restoration routine
        here.  May be ``None`` for offline analysis.
    tracer:
        Optional :class:`repro.obs.tracer.Tracer`; with ``decisions``
        on, the monitor emits ``monitor.trigger`` / ``monitor.reset``
        events (the *relay* layer, complementing the policy's own
        decision events).

    Examples
    --------
    >>> from repro.core import CLTA, PAPER_SLO
    >>> monitor = RejuvenationMonitor(CLTA(PAPER_SLO, sample_size=2, z=1.96))
    >>> monitor.feed(100.0, time=1.0); monitor.feed(100.0, time=2.0)
    False
    True
    >>> monitor.triggers
    1
    """

    def __init__(
        self,
        policy: RejuvenationPolicy,
        on_rejuvenate: Optional[Callable[[float], None]] = None,
        tracer: Optional[object] = None,
    ) -> None:
        self.policy = policy
        self.on_rejuvenate = on_rejuvenate
        self._tracer = (
            tracer if tracer is not None and tracer.decisions else None
        )
        self.moments = OnlineMoments()
        self._records: List[_TriggerRecord] = []
        self._observations = 0

    # ------------------------------------------------------------------
    @property
    def observations(self) -> int:
        """Observations consumed so far."""
        return self._observations

    @property
    def triggers(self) -> int:
        """Rejuvenations fired so far."""
        return len(self._records)

    @property
    def trigger_times(self) -> List[float]:
        """Times at which rejuvenation fired."""
        return [record.time for record in self._records]

    def feed(self, value: float, time: Optional[float] = None) -> bool:
        """Consume one observation; return whether rejuvenation fired.

        ``time`` defaults to the observation index, which keeps purely
        count-based analyses working without a clock.

        Non-finite metric values are rejected loudly: a NaN from a
        broken probe would otherwise poison the running statistics and
        silently disable averaging policies.
        """
        if not math.isfinite(value):
            raise ValueError(
                f"metric observation must be finite, got {value!r}"
            )
        self._observations += 1
        self.moments.push(value)
        if not self.policy.observe(value):
            return False
        when = float(time) if time is not None else float(self._observations)
        self._records.append(
            _TriggerRecord(time=when, observation_index=self._observations)
        )
        if self._tracer is not None:
            self._tracer.emit(
                when,
                "monitor.trigger",
                "monitor",
                observation=self._observations,
                trigger=len(self._records),
                metric_mean=self.moments.mean,
            )
        if self.on_rejuvenate is not None:
            self.on_rejuvenate(when)
        return True

    def notify_external_rejuvenation(self) -> None:
        """Tell the policy the system was rejuvenated by someone else.

        Clears detection state so stale evidence does not cause an
        immediate re-trigger after an operator-initiated restart.
        """
        if self._tracer is not None:
            self._tracer.emit(
                float(self._observations),
                "monitor.reset",
                "monitor",
                observation=self._observations,
            )
        self.policy.reset()

    def report(self) -> MonitorReport:
        """Summarise the session so far."""
        return MonitorReport(
            observations=self._observations,
            triggers=self.triggers,
            trigger_times=self.trigger_times,
            metric_mean=self.moments.mean,
            metric_std=self.moments.std,
        )

    def snapshot(self) -> Dict[str, Any]:
        """The live state as one JSON-serialisable dict.

        The dashboard view of :meth:`report`: cheap to take mid-stream
        (no list copies beyond the last trigger), stable keys, and the
        policy's own ``describe()`` parameters inlined -- what a
        ``repro top``-style display or a metrics scraper wants between
        observations.
        """
        moments = self.moments
        return {
            "observations": self._observations,
            "triggers": len(self._records),
            "last_trigger_ts": (
                self._records[-1].time if self._records else None
            ),
            "metric_mean": moments.mean if moments.count else 0.0,
            "metric_std": moments.std,
            "metric_min": moments.minimum if moments.count else 0.0,
            "metric_max": moments.maximum if moments.count else 0.0,
            "policy": self.policy.describe(),
        }
