"""Composable, picklable fault injections driven by the DES clock.

Each injection is a frozen dataclass of plain data -- times, rates,
factors -- so it crosses process boundaries inside a
:class:`~repro.exec.jobs.ReplicationJob`.  Nothing live is captured at
construction time: :meth:`FaultInjection.arm` is called by
:class:`~repro.ecommerce.system.ECommerceSystem` at the start of every
run, *after* the model has been reset, and only then are the simulator
events (closures over the system under test) scheduled.

Every injection announces itself through
``ECommerceSystem.emit_fault`` -- a ``fault.injected`` event when it
takes effect and a ``fault.cleared`` event when a transient one ends --
so a ``--trace`` run records the scripted adversary next to the
policy's decisions and ``repro explain`` can narrate both.

The catalogue (see ``docs/faults.md``):

=====================  ====================================================
injection              models
=====================  ====================================================
WorkloadShift          a step change of the arrival process (rate step or
                       MMPP regime flip) -- *not* aging
WorkloadRamp           a gradual drift of the arrival rate
TrafficSurge           a transient arrival-rate burst (flash crowd)
ServiceSlowdown        capacity erosion: every service time scaled by a
                       factor -- the campaign's canonical aging signal
HeavyTailContamination occasional very long services (Pareto tail)
NodeCrash              abrupt failure: all in-flight work lost, restart
                       downtime refuses arrivals
NodeHang               a transient full stall ("false aging" blip) that a
                       robust detector must NOT fire on
AgingAcceleration      correlated garbage growth at a fixed MB/s, driving
                       GC pressure independent of per-transaction leaks
=====================  ====================================================
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Dict, Optional, Type

from repro.ecommerce.spec import ArrivalSpec
from repro.ecommerce.workload import PoissonArrivals, ScaledArrivals
from repro.exec.jobs import build_arrival


class FaultInjection(abc.ABC):
    """One scripted fault: plain data plus an :meth:`arm` hook."""

    @abc.abstractmethod
    def arm(self, system: Any) -> None:
        """Schedule this injection's events on ``system.sim``.

        Called at the start of every run against a freshly reset
        system; implementations must not keep state of their own
        (frozen dataclasses), so the same scenario object can be armed
        on any number of replications.
        """

    def describe(self) -> str:
        """Human-readable one-liner (default: the dataclass repr)."""
        return repr(self)


def _check_time(name: str, value: float) -> None:
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")


def _target_nodes(system: Any, node: Optional[int]) -> list:
    """The processing nodes a targeted injection should touch.

    Resolved through the system's ``fault_nodes`` surface (see
    :mod:`repro.systems`): ``None`` means every node; a global node
    index means that one node -- which may be *no* node on a fleet
    shard that does not own the index, in which case the injection
    silently does nothing there (the owning shard fires it).  Systems
    predating the protocol fall back to their single ``node``.
    """
    fault_nodes = getattr(system, "fault_nodes", None)
    if fault_nodes is not None:
        return fault_nodes(node)
    if node is not None and node != 0:
        raise ValueError(
            f"node index {node} out of range for a single-node system"
        )
    return [system.node]


@dataclass(frozen=True)
class WorkloadShift(FaultInjection):
    """Step change of the arrival process at ``at_s``.

    ``arrival`` is an :class:`~repro.ecommerce.spec.ArrivalSpec` (or any
    object with a ``build()`` method): a *fresh* process is built when
    the shift fires, so replications never share arrival state.  A
    shift is a legitimate operating-point change, not aging -- the
    scenarios use it to check that detectors do not mistake one for the
    other (the workload-shift regime of Moura et al.).
    """

    at_s: float
    arrival: Any

    def __post_init__(self) -> None:
        _check_time("at_s", self.at_s)

    @classmethod
    def step(cls, at_s: float, rate: float) -> "WorkloadShift":
        """Step to homogeneous Poisson arrivals at ``rate``/s."""
        return cls(at_s=at_s, arrival=ArrivalSpec.poisson(rate))

    def arm(self, system: Any) -> None:
        def fire() -> None:
            process = build_arrival(self.arrival)
            process.reset()
            system.set_arrivals(process)
            system.emit_fault(
                "workload_shift", new_rate=process.mean_rate()
            )

        system.sim.schedule_at(self.at_s, fire, kind="fault")


@dataclass(frozen=True)
class WorkloadRamp(FaultInjection):
    """Linear drift of the Poisson arrival rate over ``[start_s, end_s]``.

    Realised as ``steps`` equal rate steps (piecewise-constant), which
    keeps the arrival stream's draw order well-defined.
    """

    start_s: float
    end_s: float
    from_rate: float
    to_rate: float
    steps: int = 10

    def __post_init__(self) -> None:
        _check_time("start_s", self.start_s)
        if self.end_s <= self.start_s:
            raise ValueError("end_s must be after start_s")
        if min(self.from_rate, self.to_rate) <= 0:
            raise ValueError("ramp rates must be positive")
        if self.steps < 1:
            raise ValueError("need at least one ramp step")

    def arm(self, system: Any) -> None:
        span = self.end_s - self.start_s
        delta = self.to_rate - self.from_rate

        def step_at(k: int) -> None:
            fraction = k / self.steps
            rate = self.from_rate + delta * fraction
            system.set_arrivals(PoissonArrivals(rate))
            if k == 1:
                system.emit_fault(
                    "workload_ramp",
                    from_rate=self.from_rate,
                    to_rate=self.to_rate,
                    duration_s=span,
                )
            if k == self.steps:
                system.emit_fault(
                    "workload_ramp", cleared=True, rate=self.to_rate
                )

        for k in range(1, self.steps + 1):
            at = self.start_s + span * k / self.steps
            system.sim.schedule_at(
                at, lambda k=k: step_at(k), kind="fault"
            )


@dataclass(frozen=True)
class TrafficSurge(FaultInjection):
    """Transient arrival burst: rate x ``factor`` for ``duration_s``.

    The live arrival process is wrapped in
    :class:`~repro.ecommerce.workload.ScaledArrivals` at surge start --
    preserving its internal state (MMPP phase, periodic clock) -- and
    the original process is restored when the surge ends.  A burst is
    load, not aging: burst-tolerant detectors (the multi-bucket design
    intent) should ride it out.
    """

    at_s: float
    factor: float
    duration_s: float

    def __post_init__(self) -> None:
        _check_time("at_s", self.at_s)
        if self.factor <= 0:
            raise ValueError("surge factor must be positive")
        if self.duration_s <= 0:
            raise ValueError("surge duration must be positive")

    def arm(self, system: Any) -> None:
        def start() -> None:
            inner = system.arrivals
            system.set_arrivals(ScaledArrivals(inner, self.factor))
            system.emit_fault(
                "surge", factor=self.factor, duration_s=self.duration_s
            )

            def stop() -> None:
                system.set_arrivals(inner)
                system.emit_fault("surge", cleared=True)

            system.sim.schedule(self.duration_s, stop, kind="fault")

        system.sim.schedule_at(self.at_s, start, kind="fault")


@dataclass(frozen=True)
class ServiceSlowdown(FaultInjection):
    """Capacity erosion: every service draw scaled by ``factor``.

    The canonical aging signal of the scenario zoo: a factor large
    enough to push the offered load past capacity makes response times
    grow without bound until a rejuvenation restores the node.
    Multiplicative, so overlapping slowdowns compose; ``duration_s``
    ``None`` means the slowdown persists to the end of the run (true
    aging is only cured by rejuvenation -- which in this model restores
    *capacity* but not the injected slowdown, modelling a fault the
    paper's policies can only keep suppressing, not remove).

    ``node`` targets one global node index on multi-node substrates
    (``None`` degrades every node alike).
    """

    at_s: float
    factor: float
    duration_s: Optional[float] = None
    node: Optional[int] = None

    def __post_init__(self) -> None:
        _check_time("at_s", self.at_s)
        if self.factor <= 0:
            raise ValueError("slowdown factor must be positive")
        if self.duration_s is not None and self.duration_s <= 0:
            raise ValueError("slowdown duration must be positive")

    def arm(self, system: Any) -> None:
        def start() -> None:
            targets = _target_nodes(system, self.node)
            if not targets:
                return
            for target in targets:
                target.service_scale *= self.factor
            system.emit_fault("slowdown", factor=self.factor)
            if self.duration_s is not None:

                def stop() -> None:
                    for target in targets:
                        target.service_scale /= self.factor
                    system.emit_fault("slowdown", cleared=True)

                system.sim.schedule(self.duration_s, stop, kind="fault")

        system.sim.schedule_at(self.at_s, start, kind="fault")


@dataclass(frozen=True)
class HeavyTailContamination(FaultInjection):
    """Occasional very long services: a Pareto tail on top of the law.

    With probability ``prob`` a completed service draw gains
    ``scale_s * Pareto(alpha)`` extra seconds.  ``alpha <= 1`` gives an
    infinite-mean tail; the zoo uses ``alpha = 1.5`` (mean extra time
    ``prob * scale_s / (alpha - 1)`` per transaction).
    """

    at_s: float
    prob: float
    alpha: float
    scale_s: float
    duration_s: Optional[float] = None
    node: Optional[int] = None

    def __post_init__(self) -> None:
        _check_time("at_s", self.at_s)
        if not 0.0 < self.prob <= 1.0:
            raise ValueError("contamination probability must be in (0, 1]")
        if self.alpha <= 0:
            raise ValueError("Pareto alpha must be positive")
        if self.scale_s <= 0:
            raise ValueError("contamination scale must be positive")
        if self.duration_s is not None and self.duration_s <= 0:
            raise ValueError("contamination duration must be positive")

    def arm(self, system: Any) -> None:
        def start() -> None:
            targets = _target_nodes(system, self.node)
            if not targets:
                return
            for target in targets:
                target.contamination = (self.prob, self.alpha, self.scale_s)
            system.emit_fault(
                "contamination",
                prob=self.prob,
                alpha=self.alpha,
                scale_s=self.scale_s,
            )
            if self.duration_s is not None:

                def stop() -> None:
                    for target in targets:
                        target.contamination = None
                    system.emit_fault("contamination", cleared=True)

                system.sim.schedule(self.duration_s, stop, kind="fault")

        system.sim.schedule_at(self.at_s, start, kind="fault")


@dataclass(frozen=True)
class NodeCrash(FaultInjection):
    """Abrupt node failure at ``at_s``, restarting after ``restart_s``.

    All in-flight transactions (executing *and* queued) are lost and
    arrivals during the restart window are refused.  Unlike a
    rejuvenation, a crash is not a policy trigger: it never appears in
    ``RunResult.rejuvenation_times``, and the policy's detection state
    is wiped (a restarted monitor starts from scratch).

    ``node`` crashes one global node index on multi-node substrates
    (``None`` crashes every node -- a correlated outage).
    """

    at_s: float
    restart_s: float = 0.0
    node: Optional[int] = None

    def __post_init__(self) -> None:
        _check_time("at_s", self.at_s)
        _check_time("restart_s", self.restart_s)

    def arm(self, system: Any) -> None:
        def fire() -> None:
            if not _target_nodes(system, self.node):
                return
            lost = system.inject_crash(self.restart_s, node=self.node)
            system.emit_fault(
                "crash", lost=lost, restart_s=self.restart_s
            )
            if self.restart_s > 0.0:
                system.sim.schedule(
                    self.restart_s,
                    lambda: system.emit_fault("crash", cleared=True),
                    kind="fault",
                )

        system.sim.schedule_at(self.at_s, fire, kind="fault")


@dataclass(frozen=True)
class NodeHang(FaultInjection):
    """Transient full stall of ``hang_s`` seconds -- a false-aging blip.

    Every executing thread is delayed exactly like a GC pause (a lock
    convoy, a paging storm), but nothing is leaked and nothing is
    reclaimed: the system is healthy before and after.  A robust
    detector must not rejuvenate on it; the false-alarm-rate column of
    the robustness score counts the detectors that do.
    """

    at_s: float
    hang_s: float
    node: Optional[int] = None

    def __post_init__(self) -> None:
        _check_time("at_s", self.at_s)
        if self.hang_s <= 0:
            raise ValueError("hang duration must be positive")

    def arm(self, system: Any) -> None:
        def fire() -> None:
            targets = _target_nodes(system, self.node)
            if not targets:
                return
            stalled = sum(
                target.stall(self.hang_s) for target in targets
            )
            system.emit_fault(
                "hang", hang_s=self.hang_s, stalled=stalled
            )
            system.sim.schedule(
                self.hang_s,
                lambda: system.emit_fault("hang", cleared=True),
                kind="fault",
            )

        system.sim.schedule_at(self.at_s, fire, kind="fault")


@dataclass(frozen=True)
class AgingAcceleration(FaultInjection):
    """Correlated garbage growth at ``rate_mb_s`` from ``start_s`` on.

    Injects ``rate_mb_s * interval_s`` MB of garbage every
    ``interval_s`` simulated seconds -- aging pressure decoupled from
    the per-transaction leak, so GC thrash can be scripted even with
    ``alloc_mb = 0``.  The tick re-arms only while other events are
    pending, so it never keeps a finished run alive.
    """

    start_s: float
    rate_mb_s: float
    interval_s: float = 10.0
    end_s: Optional[float] = None
    node: Optional[int] = None

    def __post_init__(self) -> None:
        _check_time("start_s", self.start_s)
        if self.rate_mb_s <= 0:
            raise ValueError("garbage rate must be positive")
        if self.interval_s <= 0:
            raise ValueError("injection interval must be positive")
        if self.end_s is not None and self.end_s <= self.start_s:
            raise ValueError("end_s must be after start_s")

    def arm(self, system: Any) -> None:
        def tick() -> None:
            if self.end_s is not None and system.sim.now >= self.end_s:
                system.emit_fault("aging", cleared=True)
                return
            for target in _target_nodes(system, self.node):
                target.inject_garbage(self.rate_mb_s * self.interval_s)
            if system.sim.queue:
                system.sim.schedule(self.interval_s, tick, kind="fault")

        def start() -> None:
            if not _target_nodes(system, self.node):
                return
            system.emit_fault(
                "aging", rate_mb_s=self.rate_mb_s, interval_s=self.interval_s
            )
            tick()

        system.sim.schedule_at(self.start_s, start, kind="fault")


#: Scenario-schema type name -> injection class (see docs/faults.md).
INJECTION_TYPES: Dict[str, Type[FaultInjection]] = {
    "workload_shift": WorkloadShift,
    "workload_ramp": WorkloadRamp,
    "surge": TrafficSurge,
    "slowdown": ServiceSlowdown,
    "contamination": HeavyTailContamination,
    "crash": NodeCrash,
    "hang": NodeHang,
    "aging": AgingAcceleration,
}

#: Injection class -> scenario-schema type name.
INJECTION_NAMES: Dict[Type[FaultInjection], str] = {
    cls: name for name, cls in INJECTION_TYPES.items()
}
