"""The FCFS M/M/c queueing model (Section 4.1 of the paper).

The paper abstracts the e-commerce system from its garbage-collection and
kernel-overhead mechanisms, leaving an FCFS queue with ``c = 16`` parallel
exponential servers fed by Poisson arrivals.  Gross & Harris give the
steady-state response-time distribution (the paper's equation 1); the
paper derives the mean (eq. 2) and variance (eq. 3) by recognising it as a
phase-type law -- a ``W_c : (1 - W_c)`` mixture of an ``Exp(mu)`` and an
``Exp(mu) -> Exp(c mu - lambda)`` hypoexponential (Fig. 2).

All quantities here are exact and validated in the tests against numerical
integration and simulation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.queueing.distributions import PhaseType


@dataclass(frozen=True)
class MMcModel:
    """An ``M/M/c`` queue.

    Parameters
    ----------
    arrival_rate:
        Poisson arrival rate ``lambda`` (transactions/second).
    service_rate:
        Per-server exponential service rate ``mu``.
    servers:
        Number of parallel servers ``c``.

    Examples
    --------
    The paper's system at its maximum load of interest:

    >>> model = MMcModel(arrival_rate=1.6, service_rate=0.2, servers=16)
    >>> round(model.response_time_mean(), 4)      # eq. (2); approx 5
    5.0089
    >>> round(model.response_time_std(), 4)       # sqrt of eq. (3)
    5.0025
    """

    arrival_rate: float
    service_rate: float
    servers: int

    def __post_init__(self) -> None:
        if self.arrival_rate < 0:
            raise ValueError("arrival rate must be non-negative")
        if self.service_rate <= 0:
            raise ValueError("service rate must be positive")
        if self.servers < 1:
            raise ValueError("at least one server is required")

    # ------------------------------------------------------------------
    # Load measures
    # ------------------------------------------------------------------
    @property
    def traffic_intensity(self) -> float:
        """``rho = lambda / (c mu)``; the queue is stable iff ``rho < 1``."""
        return self.arrival_rate / (self.servers * self.service_rate)

    @property
    def offered_load_cpus(self) -> float:
        """``lambda / mu`` -- the paper's x-axis, 'offered load (CPUs)'."""
        return self.arrival_rate / self.service_rate

    @property
    def is_stable(self) -> bool:
        """Whether a steady state exists."""
        return self.traffic_intensity < 1.0

    def _require_stable(self) -> None:
        if not self.is_stable:
            raise ValueError(
                "steady-state quantities require rho < 1 "
                f"(rho = {self.traffic_intensity:.4g})"
            )

    # ------------------------------------------------------------------
    # State probabilities
    # ------------------------------------------------------------------
    def erlang_c(self) -> float:
        """Erlang-C: steady-state probability that an arrival must queue.

        Equals ``1 - W_c`` in the paper's notation.  Computed with a
        numerically stable running-term accumulation (no explicit
        factorials), valid for hundreds of servers.
        """
        self._require_stable()
        a = self.offered_load_cpus  # c * rho
        c = self.servers
        if a == 0.0:
            return 0.0
        # sum_{k=0}^{c-1} a^k/k! and a^c/c!, built incrementally.
        term = 1.0
        partial_sum = 1.0
        for k in range(1, c):
            term *= a / k
            partial_sum += term
        term *= a / c  # now a^c / c!
        tail = term / (1.0 - self.traffic_intensity)
        return tail / (partial_sum + tail)

    def wc(self) -> float:
        """``W_c``: probability that fewer than ``c`` jobs are present.

        An arriving job then starts service immediately (PASTA).
        """
        return 1.0 - self.erlang_c()

    def state_probability(self, k: int) -> float:
        """Steady-state probability of exactly ``k`` jobs in the system."""
        if k < 0:
            raise ValueError("state index must be non-negative")
        self._require_stable()
        a = self.offered_load_cpus
        c = self.servers
        if a == 0.0:
            return 1.0 if k == 0 else 0.0
        # p0 from normalisation.
        term = 1.0
        partial_sum = 1.0
        for i in range(1, c):
            term *= a / i
            partial_sum += term
        term *= a / c
        p0 = 1.0 / (partial_sum + term / (1.0 - self.traffic_intensity))
        if k < c:
            return p0 * a**k / math.factorial(k)
        return (
            p0
            * a**c
            / math.factorial(c)
            * self.traffic_intensity ** (k - c)
        )

    def mean_jobs_in_system(self) -> float:
        """Expected number of jobs in the system (Little: ``lambda E[RT]``)."""
        return self.arrival_rate * self.response_time_mean()

    # ------------------------------------------------------------------
    # Response-time law (equations 1-3)
    # ------------------------------------------------------------------
    def response_time_phase_type(self) -> PhaseType:
        """The PH representation of the response time (paper Fig. 2/3).

        Two transient states: state 1 (service-like phase, exit rate
        ``mu``) absorbs directly with rate ``mu W_c`` or moves to state 2
        with rate ``mu (1 - W_c)``; state 2 absorbs with rate
        ``c mu - lambda``.  The time to absorption has cdf (1), mean (2)
        and variance (3).
        """
        self._require_stable()
        mu = self.service_rate
        drain = self.servers * mu - self.arrival_rate
        wc = self.wc()
        T = np.array([[-mu, mu * (1.0 - wc)], [0.0, -drain]])
        return PhaseType([1.0, 0.0], T)

    def response_time_mean(self) -> float:
        """Equation (2): ``1/mu + (1 - W_c)/(c mu - lambda)``."""
        self._require_stable()
        drain = self.servers * self.service_rate - self.arrival_rate
        return 1.0 / self.service_rate + (1.0 - self.wc()) / drain

    def response_time_var(self) -> float:
        """Equation (3): ``1/mu^2 + (1 - W_c^2)/(c mu - lambda)^2``."""
        self._require_stable()
        drain = self.servers * self.service_rate - self.arrival_rate
        wc = self.wc()
        return 1.0 / self.service_rate**2 + (1.0 - wc * wc) / drain**2

    def response_time_std(self) -> float:
        """Standard deviation of the response time."""
        return math.sqrt(self.response_time_var())

    def response_time_cdf(self, x: float) -> float:
        """Equation (1): the Gross & Harris response-time cdf.

        The closed form has a removable singularity at
        ``lambda = (c - 1) mu``; near it we fall back to the equivalent
        phase-type evaluation, which is singularity-free.
        """
        if x < 0:
            return 0.0
        self._require_stable()
        mu = self.service_rate
        lam = self.arrival_rate
        c = self.servers
        wc = self.wc()
        denominator = (c - 1) * mu - lam
        if abs(denominator) < 1e-9 * mu:
            return self.response_time_phase_type().cdf(x)
        drain = c * mu - lam
        return float(
            wc * (1.0 - math.exp(-mu * x))
            + (1.0 - wc)
            * (
                drain / denominator * (1.0 - math.exp(-mu * x))
                - mu / denominator * (1.0 - math.exp(-drain * x))
            )
        )

    def response_time_pdf(self, x: float) -> float:
        """Density of the response time at ``x >= 0``."""
        if x < 0:
            return 0.0
        return self.response_time_phase_type().pdf(x)

    def response_time_quantile(self, q: float) -> float:
        """Inverse cdf by bisection (the cdf is strictly increasing)."""
        if not 0.0 < q < 1.0:
            raise ValueError("quantile level must lie in (0, 1)")
        self._require_stable()
        low, high = 0.0, 1.0
        while self.response_time_cdf(high) < q:
            high *= 2.0
            if high > 1e12:  # pragma: no cover - defensive
                raise ArithmeticError("quantile search failed to bracket")
        for _ in range(200):
            mid = 0.5 * (low + high)
            if self.response_time_cdf(mid) < q:
                low = mid
            else:
                high = mid
            if high - low <= 1e-12 * max(1.0, high):
                break
        return 0.5 * (low + high)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    @classmethod
    def from_offered_load(
        cls, load_cpus: float, service_rate: float, servers: int
    ) -> "MMcModel":
        """Build a model from the paper's load axis (``lambda/mu`` in CPUs)."""
        if load_cpus < 0:
            raise ValueError("offered load must be non-negative")
        return cls(
            arrival_rate=load_cpus * service_rate,
            service_rate=service_rate,
            servers=servers,
        )
