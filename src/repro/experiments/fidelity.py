"""Fidelity report: every number the paper quotes vs this reproduction.

Runs exactly the scenarios behind the Section-5 quoted values
(:mod:`repro.experiments.paper_values`) and prints paper value, measured
value, and their ratio.  Documented divergences are flagged rather than
hidden.  This is EXPERIMENTS.md's headline table, regenerated live.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.spec import PolicySpec
from repro.ecommerce.config import PAPER_CONFIG
from repro.ecommerce.runner import run_replications
from repro.ecommerce.spec import ArrivalSpec
from repro.experiments.paper_values import QUOTED_VALUES, QuotedValue
from repro.experiments.scale import Scale
from repro.experiments.tables import ExperimentResult, Series, Table


def _policy_spec(quoted: QuotedValue) -> PolicySpec:
    if quoted.algorithm == "sraa":
        return PolicySpec.sraa(quoted.n, quoted.K, quoted.D)
    if quoted.algorithm == "saraa":
        return PolicySpec.saraa(quoted.n, quoted.K, quoted.D)
    if quoted.algorithm == "clta":
        return PolicySpec.clta(quoted.n, z=1.96)
    raise ValueError(f"unknown algorithm {quoted.algorithm!r}")


def _scenario_key(quoted: QuotedValue) -> Tuple[str, int, int, int, float]:
    return (quoted.algorithm, quoted.n, quoted.K, quoted.D, quoted.load_cpus)


def run_fidelity(scale: Scale, seed: int = 0) -> ExperimentResult:
    """Measure every quoted scenario and report ratios."""
    # One simulation per distinct (policy, load) scenario; several
    # quotes can share one run.
    measured: Dict[Tuple, Tuple[float, float]] = {}
    for quoted in QUOTED_VALUES:
        key = _scenario_key(quoted)
        if key in measured:
            continue
        rate = PAPER_CONFIG.arrival_rate_for_load(quoted.load_cpus)
        replicated = run_replications(
            PAPER_CONFIG,
            arrival=ArrivalSpec.poisson(rate),
            policy=_policy_spec(quoted),
            n_transactions=scale.transactions,
            replications=scale.replications,
            seed=seed,
        )
        measured[key] = (
            replicated.avg_response_time,
            replicated.loss_fraction,
        )
    table = Table(
        title="Fidelity: paper-quoted values vs this reproduction",
        x_label="quote_index",
        y_label="value",
    )
    paper_series = Series(label="paper")
    measured_series = Series(label="measured")
    ratio_series = Series(label="measured/paper")
    notes = []
    for index, quoted in enumerate(QUOTED_VALUES):
        rt, loss = measured[_scenario_key(quoted)]
        value = rt if quoted.metric == "avg_rt_s" else loss
        paper_series.add(index, quoted.value)
        measured_series.add(index, value)
        ratio = value / quoted.value if quoted.value else float("nan")
        ratio_series.add(index, ratio)
        flag = "  [documented divergence D1]" if quoted.diverges else ""
        notes.append(
            f"index {index}: {quoted.key} ({quoted.metric}, "
            f"section {quoted.section}){flag}"
        )
    table.add_series(paper_series)
    table.add_series(measured_series)
    table.add_series(ratio_series)
    table.notes.extend(notes)
    return ExperimentResult(
        experiment_id="fidelity",
        description=(
            "Every Section-5 quoted number, measured live against the "
            "paper"
        ),
        tables=[table],
        paper_expectations=[
            "response-time quotes should land within a small factor "
            "(EXPERIMENTS.md targets ~0.3-3x at quick scale); the CLTA "
            "high-load response time is the documented divergence D1",
            "loss quotes are order-of-magnitude comparisons (tiny "
            "probabilities at finite replication counts)",
        ],
    )
