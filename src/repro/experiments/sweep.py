"""Load sweeps over (configuration x offered load), the Section-5 design.

Every Section-5 figure is produced the same way: for each policy
configuration and each offered load, run ``replications`` independent
simulations of ``transactions`` transactions and plot the mean response
time (or mean loss fraction) against the load.  ``sweep_policies``
performs exactly that and returns both metrics so that figure pairs
(9/10, 12/13) share one simulation pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.base import RejuvenationPolicy
from repro.core.sla import PAPER_SLO, ServiceLevelObjective
from repro.core.sraa import SRAA
from repro.ecommerce.config import PAPER_CONFIG, SystemConfig
from repro.ecommerce.metrics import ReplicatedResult
from repro.ecommerce.runner import run_replications
from repro.ecommerce.workload import PoissonArrivals
from repro.experiments.scale import Scale
from repro.experiments.tables import Series, Table

PolicyFactory = Callable[[], Optional[RejuvenationPolicy]]


@dataclass(frozen=True)
class PolicyConfig:
    """A labelled policy factory, e.g. ``(n=2, K=5, D=3)`` for SRAA."""

    label: str
    factory: PolicyFactory


def sraa_config(
    n: int, K: int, D: int, slo: ServiceLevelObjective = PAPER_SLO
) -> PolicyConfig:
    """An SRAA configuration labelled the way the paper labels curves."""
    return PolicyConfig(
        label=f"(n={n}, K={K}, D={D})",
        factory=lambda: SRAA(slo, sample_size=n, n_buckets=K, depth=D),
    )


@dataclass
class SweepResult:
    """Results of one (configurations x loads) sweep."""

    results: Dict[str, Dict[float, ReplicatedResult]]
    loads: Tuple[float, ...]

    def response_time_table(self, title: str) -> Table:
        """The figure's 'Average Response Time' panel."""
        table = Table(
            title=title,
            x_label="load_cpus",
            y_label="avg_response_time_s",
        )
        for label, by_load in self.results.items():
            series = Series(label=label)
            for load, replicated in by_load.items():
                series.add(load, replicated.avg_response_time)
            table.add_series(series)
        return table

    def loss_table(self, title: str) -> Table:
        """The figure's 'Average Fraction of Transaction Loss' panel."""
        table = Table(
            title=title,
            x_label="load_cpus",
            y_label="loss_fraction",
        )
        for label, by_load in self.results.items():
            series = Series(label=label)
            for load, replicated in by_load.items():
                series.add(load, replicated.loss_fraction)
            table.add_series(series)
        return table


def sweep_policies(
    configs: Sequence[PolicyConfig],
    scale: Scale,
    system_config: SystemConfig = PAPER_CONFIG,
    seed: int = 0,
    warmup: int = 0,
) -> SweepResult:
    """Run every configuration at every load of the scale.

    Seeds are common across configurations at the same (load,
    replication) pair -- common random numbers, so that curve differences
    reflect the policies and not the draws.
    """
    results: Dict[str, Dict[float, ReplicatedResult]] = {}
    for config in configs:
        by_load: Dict[float, ReplicatedResult] = {}
        for load_index, load in enumerate(scale.loads):
            arrival_rate = system_config.arrival_rate_for_load(load)
            by_load[load] = run_replications(
                system_config,
                arrival_factory=lambda rate=arrival_rate: PoissonArrivals(rate),
                policy_factory=config.factory,
                n_transactions=scale.transactions,
                replications=scale.replications,
                seed=seed + 1_000 * load_index,
                warmup=warmup,
            )
        results[config.label] = by_load
    return SweepResult(results=results, loads=tuple(scale.loads))
