"""Cross-module integration: simulation against exact theory.

These tests connect independently implemented subsystems -- the DES
simulator, the closed-form M/M/c model, the CTMC sample-mean chain and
the decision rules -- and check that they tell one consistent story.
They are the reproduction's strongest internal evidence: the simulator
was written against the paper's prose, the analytics against its
formulas, and here they must meet.
"""

import numpy as np
import pytest

from repro.core.clta import CLTA
from repro.core.sla import PAPER_SLO
from repro.ctmc.sample_mean import SampleMeanChain
from repro.ecommerce.runner import simulate_mmc_response_times
from repro.queueing.mmc import MMcModel


@pytest.fixture(scope="module")
def rts_16() -> np.ndarray:
    """60,000 simulated M/M/16 response times at lambda = 1.6."""
    return simulate_mmc_response_times(1.6, 60_000, seed=1234)


@pytest.fixture(scope="module")
def model_16() -> MMcModel:
    return MMcModel(1.6, 0.2, 16)


class TestSimulatorVsClosedForm:
    def test_mean_matches_equation_2(self, rts_16, model_16):
        expected = model_16.response_time_mean()
        # Standard error of the mean over 60k nearly-iid samples.
        tolerance = 4 * model_16.response_time_std() / np.sqrt(60_000)
        assert abs(rts_16.mean() - expected) < tolerance + 0.02

    def test_std_matches_equation_3(self, rts_16, model_16):
        assert rts_16.std() == pytest.approx(
            model_16.response_time_std(), rel=0.03
        )

    @pytest.mark.parametrize("x", [2.0, 5.0, 10.0, 20.0])
    def test_cdf_matches_equation_1(self, rts_16, model_16, x):
        empirical = float((rts_16 <= x).mean())
        assert empirical == pytest.approx(
            model_16.response_time_cdf(x), abs=0.01
        )

    @pytest.mark.parametrize("load", [0.5, 4.0, 9.0])
    def test_other_loads(self, load):
        model = MMcModel.from_offered_load(load, 0.2, 16)
        rts = simulate_mmc_response_times(
            model.arrival_rate, 30_000, seed=int(load * 100)
        )
        assert rts.mean() == pytest.approx(
            model.response_time_mean(), rel=0.05
        )


class TestSampleMeanChainVsSimulation:
    def test_batch_mean_distribution(self, rts_16, model_16):
        # The mean of every 15 simulated RTs against the exact Fig. 4
        # absorption law.
        n = 15
        chain = SampleMeanChain(model_16, n)
        batches = rts_16[: (rts_16.size // n) * n].reshape(-1, n).mean(axis=1)
        for x in (4.0, 5.0, 6.5, 8.0):
            empirical = float((batches <= x).mean())
            assert empirical == pytest.approx(chain.cdf(x), abs=0.02)

    def test_clta_trigger_rate_matches_exact_false_alarm(
        self, rts_16, model_16
    ):
        # Feed a healthy RT stream to CLTA: its per-batch trigger rate
        # must match the exact eq.-4 tail probability (3.4 % at n=30),
        # which is the paper's whole Section-4.1 argument in one test.
        n = 30
        policy = CLTA(PAPER_SLO, sample_size=n, z=1.96)
        triggers = len(policy.observe_many(rts_16))
        batches = rts_16.size // n
        exact = SampleMeanChain(model_16, n).false_alarm_probability()
        # Note: PAPER_SLO rounds mu/sigma to 5.0; the exact model mean
        # is 5.0056, so tolerate a modest relative band.
        assert triggers / batches == pytest.approx(exact, rel=0.3)

    def test_larger_batches_trigger_less(self, rts_16):
        small = CLTA(PAPER_SLO, sample_size=15, z=1.96)
        large = CLTA(PAPER_SLO, sample_size=60, z=1.96)
        rate_small = len(small.observe_many(rts_16)) / (rts_16.size // 15)
        rate_large = len(large.observe_many(rts_16)) / (rts_16.size // 60)
        assert rate_large < rate_small


class TestEndToEndWorkflow:
    def test_calibrate_then_monitor_then_simulate(self):
        """The full user journey of the README."""
        from repro import (
            ECommerceSystem,
            PAPER_CONFIG,
            PoissonArrivals,
            SRAA,
            calibrate_slo,
        )

        # 1. Calibrate the SLO from a healthy period.
        healthy = simulate_mmc_response_times(1.0, 15_000, seed=77)
        slo = calibrate_slo(healthy, warmup=1_000)
        assert slo.mean == pytest.approx(5.0, abs=0.3)
        # 2. Deploy SRAA with the calibrated SLO on the aging system.
        system = ECommerceSystem(
            PAPER_CONFIG,
            PoissonArrivals(1.8),
            policy=SRAA(slo, sample_size=2, n_buckets=5, depth=3),
            seed=78,
        )
        managed = system.run(12_000)
        # 3. Compare with the unmanaged system.
        unmanaged = ECommerceSystem(
            PAPER_CONFIG, PoissonArrivals(1.8), seed=78
        ).run(12_000)
        assert managed.avg_response_time < unmanaged.avg_response_time / 3
        assert 0.0 < managed.loss_fraction < 0.2

    def test_advisor_tradeoff_depends_on_loss_penalty(self):
        """Tuning round trip: the winner tracks the operator's weights.

        With low-load loss priced harshly (losing healthy-traffic
        transactions is unacceptable), the balanced zero-loss (2,5,3)
        wins, as the paper concludes; priced cheaply, the trigger-happy
        (30,1,1) with its better high-load RT wins in this substrate.
        """
        from repro import ParameterAdvisor, PAPER_CONFIG, PAPER_SLO

        def winner(loss_penalty):
            advisor = ParameterAdvisor(
                PAPER_CONFIG,
                PAPER_SLO,
                transactions=2_000,
                replications=1,
                seed=7,
                loss_penalty=loss_penalty,
            )
            best = advisor.recommend([(2, 5, 3), (30, 1, 1)])
            return (best.n, best.K, best.D)

        assert winner(loss_penalty=10_000.0) == (2, 5, 3)
        assert winner(loss_penalty=0.0) == (30, 1, 1)
