"""Configuration of the Section-3 e-commerce system model.

The paper's subject is a multi-tier Java e-commerce system: 16 CPUs, a
3 GB JVM heap, 10 s maximum acceptable response time, up to 1.6
transactions/second.  Its simulation model has two degradation
mechanisms: a kernel overhead that doubles processing time above 50
concurrent threads, and stop-the-world full garbage collections (60 s on
a 3 GB heap) whenever free heap drops under 100 MB, each transaction
allocating 10 MB.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class SystemConfig:
    """Parameters of the simulated e-commerce system.

    All defaults are the paper's values (Section 3).  The boolean
    switches implement the paper's "abstracting from ..." reductions:
    Section 4.1 re-runs the model with kernel overhead (step 4), memory
    leaks (steps 5-6) and rejuvenation (step 8) removed, leaving a plain
    M/M/c queue.
    """

    #: Number of parallel CPUs (``c``).
    cpus: int = 16
    #: Exponential service rate per CPU, transactions/second (``mu``).
    service_rate: float = 0.2
    #: Service-time law (paper: "exponential"); other same-mean laws
    #: exist to probe the memorylessness-dependence of the results
    #: (EXPERIMENTS.md divergence D1).  See
    #: :data:`repro.ecommerce.service_times.SERVICE_DISTRIBUTIONS`.
    service_distribution: str = "exponential"
    #: Coefficient of variation for the laws that take one
    #: ("lognormal": any cv > 0; "hyperexponential": cv > 1).
    service_cv: float = 1.0
    #: JVM heap size in MB (3 GB).
    heap_mb: float = 3072.0
    #: Memory allocated by each transaction when it obtains a CPU, in MB.
    alloc_mb: float = 10.0
    #: Free-heap threshold under which a full GC is forced, in MB.
    gc_threshold_mb: float = 100.0
    #: Stop-the-world duration of a full GC, in seconds.
    gc_pause_s: float = 60.0
    #: How the pause scales: "fixed" (the paper: 60 s regardless) or
    #: "proportional" (pause = gc_pause_s * garbage/heap -- a
    #: mark-sweep whose cost tracks the amount reclaimed; ablation).
    gc_pause_model: str = "fixed"
    #: Thread count above which kernel overhead kicks in.
    overhead_threshold: int = 50
    #: Multiplier applied to processing time when over the threshold.
    overhead_factor: float = 2.0
    #: Enable the kernel-overhead mechanism (step 4).
    enable_overhead: bool = True
    #: Enable the memory-leak / garbage-collection mechanism (steps 5-6).
    enable_gc: bool = True
    #: Downtime of a rejuvenation during which arrivals are lost, seconds.
    #: The paper treats rejuvenation as instantaneous (its only cost is
    #: the transactions dropped from the queues), hence 0 by default;
    #: kept configurable for the ablation study.
    rejuvenation_downtime_s: float = 0.0
    #: Whether threads that seize a CPU while a GC is in progress stall
    #: until the GC finishes.  The paper's step 6 delays "all running
    #: threads" -- threads that start *after* the GC began are not
    #: delayed -- so the faithful default is ``False``; ``True`` models a
    #: fully stop-the-world collector (ablation).
    gc_freezes_new_threads: bool = False
    #: Whether rejuvenation also drops transactions still waiting for a
    #: CPU.  Step 8 of the paper terminates "all threads in execution";
    #: whether the *queued* (not yet executing) transactions survive is
    #: ambiguous in the text.  ``False`` (only executing threads are
    #: killed, the queue survives the JVM restart, e.g. because it lives
    #: in a front-end tier) reproduces the paper's Fig. 16 ordering and
    #: low-load loss magnitudes closely, so it is the default; the
    #: alternative reading is kept for the ablation study.
    rejuvenation_kills_queued: bool = False

    def __post_init__(self) -> None:
        # Imported here to avoid a module cycle (service_times is a leaf).
        from repro.ecommerce.service_times import SERVICE_DISTRIBUTIONS

        if self.cpus < 1:
            raise ValueError("need at least one CPU")
        if self.service_rate <= 0:
            raise ValueError("service rate must be positive")
        if self.service_distribution not in SERVICE_DISTRIBUTIONS:
            raise ValueError(
                f"unknown service distribution "
                f"{self.service_distribution!r}; expected one of "
                f"{SERVICE_DISTRIBUTIONS}"
            )
        if self.service_cv < 0:
            raise ValueError("service cv must be non-negative")
        if self.heap_mb <= 0:
            raise ValueError("heap size must be positive")
        if self.alloc_mb < 0:
            raise ValueError("allocation size must be non-negative")
        if self.gc_threshold_mb < 0:
            raise ValueError("GC threshold must be non-negative")
        if self.gc_pause_s < 0:
            raise ValueError("GC pause must be non-negative")
        if self.gc_pause_model not in ("fixed", "proportional"):
            raise ValueError(
                "gc_pause_model must be 'fixed' or 'proportional', got "
                f"{self.gc_pause_model!r}"
            )
        if self.overhead_threshold < 0:
            raise ValueError("overhead threshold must be non-negative")
        if self.overhead_factor < 1.0:
            raise ValueError("overhead factor must be >= 1")
        if self.rejuvenation_downtime_s < 0:
            raise ValueError("rejuvenation downtime must be non-negative")

    def without_degradation(self) -> "SystemConfig":
        """The Section-4.1 reduction: a pure M/M/c queue.

        Disables kernel overhead and garbage collection, leaving only
        Poisson arrivals and exponential service on ``cpus`` servers.
        """
        return replace(self, enable_overhead=False, enable_gc=False)

    def arrival_rate_for_load(self, load_cpus: float) -> float:
        """``lambda`` for an offered load expressed in CPUs (``lambda/mu``)."""
        if load_cpus < 0:
            raise ValueError("offered load must be non-negative")
        return load_cpus * self.service_rate


#: The configuration used throughout the paper's evaluation.
PAPER_CONFIG = SystemConfig()
