"""E9 -- Figure 14: SRAA with the number of buckets doubled."""

from conftest import (
    BENCH_SEED,
    assertions_enabled,
    bench_scale,
    high_loads,
    low_loads,
    regenerate,
    series_mean,
)
from repro.experiments.registry import run_experiment

#: (Fig. 9 base, K-doubled) configuration pairs from Section 5.4.
PAIRS = [
    ("(n=15, K=1, D=1)", "(n=15, K=2, D=1)"),
    ("(n=3, K=5, D=1)", "(n=3, K=10, D=1)"),
    ("(n=5, K=3, D=1)", "(n=5, K=6, D=1)"),
    ("(n=1, K=3, D=5)", "(n=1, K=6, D=5)"),
    ("(n=1, K=5, D=3)", "(n=1, K=10, D=3)"),
]


def test_fig14_buckets_doubled(benchmark):
    result = regenerate(benchmark, "fig14")
    if not assertions_enabled():
        return
    rt, loss = result.tables
    base = run_experiment("fig09_10", bench_scale(), seed=BENCH_SEED)
    base_rt = base.tables[0]
    highs = high_loads(rt)
    # Doubling K worsens high-load RT for a clear majority of pairs.
    worse = sum(
        series_mean(rt.get_series(after), highs)
        > series_mean(base_rt.get_series(before), highs)
        for before, after in PAIRS
    )
    assert worse >= len(PAIRS) - 1
    # Section 5.4: (3,2,5) is the best trade-off -- negligible loss at
    # low loads with a reasonable high-load RT.
    best = "(n=3, K=2, D=5)"
    assert series_mean(loss.get_series(best), low_loads(loss)) < 0.002
    assert series_mean(rt.get_series(best), highs) < series_mean(
        rt.get_series("(n=3, K=10, D=1)"), highs
    )
