"""CLI behaviour through the public main() entry point."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig16" in out
        assert "fig09_10" in out

    def test_lists_policies(self, capsys):
        assert main(["policies"]) == 0
        out = capsys.readouterr().out
        for name in ("sraa", "saraa", "clta"):
            assert name in out


class TestMMc:
    def test_prints_analytics(self, capsys):
        assert main(["mmc", "--load", "8"]) == 0
        out = capsys.readouterr().out
        assert "5.0056" in out  # eq. 2 at lambda = 1.6
        assert "W_c" in out

    def test_unstable_load_fails(self, capsys):
        assert main(["mmc", "--load", "16"]) == 1
        assert "unstable" in capsys.readouterr().out


class TestRun:
    def test_runs_analytical_experiment(self, capsys):
        assert main(["run", "false_alarm", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "false_alarm" in out
        assert "Paper expectations" in out

    def test_runs_simulated_experiment(self, capsys):
        assert main(["run", "fig16", "--scale", "smoke", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "CLTA" in out
        assert "SARAA" in out

    def test_unknown_experiment(self):
        with pytest.raises(ValueError):
            main(["run", "fig99", "--scale", "smoke"])

    def test_scale_env_fallback(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert main(["run", "mmc_baseline"]) == 0


class TestParser:
    def test_no_command_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_bad_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig16", "--scale", "galactic"])
