"""Every number the paper's Section 5 quotes, as structured data.

The evaluation section states a handful of exact values in prose (most
results are only plotted).  This module records all of them so the
``fidelity`` experiment can put paper-vs-measured ratios in one
machine-checkable table, and EXPERIMENTS.md stays honest by
construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class QuotedValue:
    """One number quoted in the paper's text."""

    key: str               #: short identifier used in tables
    section: str           #: where the paper states it
    algorithm: str         #: "sraa" | "saraa" | "clta"
    n: int
    K: int
    D: int
    load_cpus: float       #: offered load of the quote
    metric: str            #: "avg_rt_s" | "loss_fraction"
    value: float           #: the paper's number
    diverges: bool = False  #: documented divergence (EXPERIMENTS.md)


#: All values quoted in Sections 5.2-5.6.
QUOTED_VALUES: Tuple[QuotedValue, ...] = (
    # Section 5.2 -- impact of sample-size doubling at 9.0 CPUs.
    QuotedValue("sraa-15-1-1@9", "5.2", "sraa", 15, 1, 1, 9.0, "avg_rt_s", 6.2),
    QuotedValue("sraa-30-1-1@9", "5.2", "sraa", 30, 1, 1, 9.0, "avg_rt_s", 9.9),
    QuotedValue("sraa-3-5-1@9", "5.2", "sraa", 3, 5, 1, 9.0, "avg_rt_s", 10.45),
    QuotedValue("sraa-6-5-1@9", "5.2", "sraa", 6, 5, 1, 9.0, "avg_rt_s", 14.3),
    # Section 5.4 -- impact of bucket doubling; best trade-off config.
    QuotedValue("sraa-15-2-1@9", "5.4", "sraa", 15, 2, 1, 9.0, "avg_rt_s", 11.05),
    QuotedValue("sraa-3-10-1@9", "5.4", "sraa", 3, 10, 1, 9.0, "avg_rt_s", 14.9),
    QuotedValue("sraa-3-2-5@9", "5.4", "sraa", 3, 2, 5, 9.0, "avg_rt_s", 10.3),
    QuotedValue(
        "sraa-3-2-5@0.5-loss", "5.4", "sraa", 3, 2, 5, 0.5,
        "loss_fraction", 0.000026,
    ),
    QuotedValue("sraa-5-2-3@9", "5.4", "sraa", 5, 2, 3, 9.0, "avg_rt_s", 10.4),
    # Section 5.5 -- SARAA improvements at 9.0 CPUs.
    QuotedValue("saraa-2-5-3@9", "5.5", "saraa", 2, 5, 3, 9.0, "avg_rt_s", 10.5),
    QuotedValue("saraa-2-3-5@9", "5.5", "saraa", 2, 3, 5, 9.0, "avg_rt_s", 9.8),
    QuotedValue("saraa-6-5-1@9", "5.5", "saraa", 6, 5, 1, 9.0, "avg_rt_s", 11.0),
    QuotedValue("sraa-2-5-3@9", "5.5", "sraa", 2, 5, 3, 9.0, "avg_rt_s", 11.94),
    QuotedValue("sraa-2-3-5@9", "5.5", "sraa", 2, 3, 5, 9.0, "avg_rt_s", 11.05),
    # Section 5.6 -- the head-to-head comparison.
    QuotedValue(
        "clta-30@9", "5.6", "clta", 30, 1, 1, 9.0, "avg_rt_s", 12.8,
        diverges=True,
    ),
    QuotedValue(
        "clta-30@0.5-loss", "5.6", "clta", 30, 1, 1, 0.5,
        "loss_fraction", 0.001406,
    ),
)


def quoted_by_key(key: str) -> QuotedValue:
    """Lookup by identifier."""
    for quoted in QUOTED_VALUES:
        if quoted.key == key:
            return quoted
    raise KeyError(f"no quoted value {key!r}")
