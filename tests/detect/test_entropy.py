"""The windowed-entropy shift detector."""

import math
import pickle

import pytest

from repro.core.base import DecisionListener
from repro.core.sla import PAPER_SLO
from repro.detect.entropy import EntropyPolicy, shannon_entropy


def make_policy(**kw):
    defaults = dict(window=16, bins=4, patience=4, warmup=16, adapt=0.0)
    defaults.update(kw)
    return EntropyPolicy(PAPER_SLO, **defaults)


class Recorder(DecisionListener):
    def __init__(self):
        self.causes = []

    def on_trigger_cause(self, policy, cause):
        self.causes.append(dict(cause))


class TestShannonEntropy:
    def test_empty_histogram_is_zero(self):
        assert shannon_entropy([], 0) == 0.0

    def test_point_mass_is_zero(self):
        assert shannon_entropy([8, 0, 0], 8) == 0.0

    def test_uniform_is_log_k(self):
        assert shannon_entropy([4, 4, 4, 4], 16) == pytest.approx(
            math.log(4)
        )


class TestDetection:
    def spread(self):
        # One observation per bucket, cycling: maximal-entropy traffic.
        width = make_policy().bin_width
        return [width * (i % 4) + width / 2 for i in range(16)]

    def test_healthy_traffic_never_triggers(self):
        policy = make_policy()
        assert policy.observe_many(self.spread() * 8) == []

    def test_collapse_to_overflow_bucket_triggers(self):
        policy = make_policy()
        listener = Recorder()
        policy.set_listener(listener)
        policy.observe_many(self.spread() * 2)  # warm up, freeze ref
        slow = [1000.0] * 32  # all mass in the overflow bucket
        assert policy.observe_many(slow)
        (cause,) = listener.causes
        assert cause["kind"] == "entropy-shift"
        assert "batch_mean" not in cause  # exercises the explain fallback
        assert cause["deviation"] == pytest.approx(
            cause["entropy"] - cause["reference"]
        )
        assert abs(cause["deviation"]) >= cause["drift"]

    def test_nothing_triggers_before_warmup(self):
        policy = make_policy(warmup=64)
        assert policy.observe_many([1000.0] * 63) == []

    def test_negative_values_clamp_to_first_bucket(self):
        assert make_policy()._bucket(-3.0) == 0

    def test_reference_tracks_when_adapt_enabled(self):
        policy = make_policy(adapt=0.1, drift=10.0)
        policy.observe_many(self.spread() * 2)
        frozen = policy.reference
        policy.observe_many([1000.0] * 16)  # deviates, but inside drift
        assert policy.reference != frozen


class TestLifecycle:
    def test_reset_keeps_reference(self):
        policy = make_policy()
        policy.observe_many(
            [make_policy().bin_width * (i % 4) for i in range(16)]
        )
        reference = policy.reference
        policy.observe_many([1000.0] * 3)
        policy.reset()
        assert policy.streak == 0
        assert len(policy._indices) == 0
        assert policy.reference == reference

    def test_picklable_mid_stream(self):
        policy = make_policy()
        policy.observe_many([1.0, 7.0, 3.0] * 6)
        clone = pickle.loads(pickle.dumps(policy))
        tail = [1000.0] * 40
        assert clone.observe_many(tail) == policy.observe_many(tail)


class TestValidation:
    @pytest.mark.parametrize(
        "kw",
        [
            {"window": 4},
            {"bins": 1},
            {"drift": 0.0},
            {"patience": 0},
            {"warmup": 8},
            {"adapt": 1.0},
            {"bin_width": 0.0},
        ],
    )
    def test_rejects_bad_parameters(self, kw):
        with pytest.raises(ValueError):
            make_policy(**kw)
