"""Benchmark trajectory files: BENCH_<name>.json append/validate."""

import json

import pytest

from repro.obs.ledger.bench import (
    list_trajectories,
    load_trajectory,
    record_bench_point,
    trajectory_path,
    validate_trajectory,
)


@pytest.fixture
def bench_dir(tmp_path, monkeypatch):
    directory = tmp_path / "bench"
    monkeypatch.setenv("REPRO_BENCH_DIR", str(directory))
    monkeypatch.setenv("REPRO_BENCH_TIMESTAMP", "2026-08-05T00:00:00Z")
    return directory


class TestRecording:
    def test_point_layout(self, bench_dir):
        point = record_bench_point("mmc_baseline_smoke", 0.25, seed=123)
        assert point == {
            "value": 0.25,
            "units": "s",
            "seed": 123,
            "git_sha": point["git_sha"],
            "timestamp": "2026-08-05T00:00:00Z",
        }

    def test_appending_grows_trajectory(self, bench_dir):
        record_bench_point("fig16_smoke", 1.0, seed=1)
        record_bench_point("fig16_smoke", 1.1, seed=1)
        trajectory = load_trajectory("fig16_smoke")
        assert trajectory["name"] == "fig16_smoke"
        assert [p["value"] for p in trajectory["points"]] == [1.0, 1.1]

    def test_filename_is_slugged(self, bench_dir):
        import os

        record_bench_point("weird name/with:stuff", 1.0)
        path = trajectory_path("weird name/with:stuff")
        filename = os.path.basename(path)
        assert filename == "BENCH_weird_name_with_stuff.json"
        assert os.path.exists(path)

    def test_file_is_plain_json(self, bench_dir):
        record_bench_point("fig05_smoke", 0.5)
        with open(trajectory_path("fig05_smoke")) as handle:
            payload = json.load(handle)
        assert payload["schema_version"] == 1


class TestValidation:
    def test_recorded_trajectories_validate(self, bench_dir):
        for name in ("mmc_baseline_smoke", "false_alarm_smoke", "fig05_smoke"):
            record_bench_point(name, 0.1, seed=7)
        names = list_trajectories()
        assert names == [
            "false_alarm_smoke",
            "fig05_smoke",
            "mmc_baseline_smoke",
        ]
        for name in names:
            assert validate_trajectory(load_trajectory(name)) == []

    def test_bad_schema_version_reported(self, bench_dir):
        record_bench_point("x", 1.0)
        trajectory = load_trajectory("x")
        trajectory["schema_version"] = 99
        assert any(
            "schema" in problem for problem in validate_trajectory(trajectory)
        )

    def test_negative_value_reported(self):
        trajectory = {
            "schema_version": 1,
            "name": "x",
            "points": [
                {
                    "value": -1.0,
                    "units": "s",
                    "seed": 0,
                    "git_sha": "",
                    "timestamp": "t",
                }
            ],
        }
        assert any(
            "value" in problem for problem in validate_trajectory(trajectory)
        )

    def test_empty_points_reported(self):
        trajectory = {"schema_version": 1, "name": "x", "points": []}
        assert validate_trajectory(trajectory)

    def test_missing_point_keys_reported(self):
        trajectory = {
            "schema_version": 1,
            "name": "x",
            "points": [{"value": 1.0}],
        }
        assert validate_trajectory(trajectory)

    def test_list_trajectories_empty_dir(self, bench_dir):
        assert list_trajectories() == []


class TestBenchmarkSuiteIntegration:
    """The benchmark suite itself emits trajectory points (acceptance)."""

    def test_suite_emits_points_for_each_benchmark(self, tmp_path):
        import os
        import subprocess
        import sys

        bench_dir = tmp_path / "bench"
        env = dict(os.environ)
        env.update(
            REPRO_BENCH_DIR=str(bench_dir),
            REPRO_SCALE="smoke",
            REPRO_LEDGER="0",
        )
        repo_root = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
        env["PYTHONPATH"] = os.path.join(repo_root, "src")
        completed = subprocess.run(
            [
                sys.executable,
                "-m",
                "pytest",
                "-q",
                "-p",
                "no:cacheprovider",
                "benchmarks/test_bench_mmc_baseline.py",
                "benchmarks/test_bench_false_alarm.py",
                "benchmarks/test_bench_fig05_density.py",
            ],
            cwd=repo_root,
            env=env,
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert completed.returncode == 0, completed.stdout + completed.stderr
        names = list_trajectories(str(bench_dir))
        assert len(names) >= 3, names
        for name in names:
            trajectory = load_trajectory(name, str(bench_dir))
            assert validate_trajectory(trajectory) == []
            assert trajectory["points"][-1]["seed"] == 2006
