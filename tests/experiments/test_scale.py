"""Scale presets and environment resolution."""

import pytest

from repro.experiments.scale import PAPER_LOADS, Scale


class TestPresets:
    def test_paper_protocol(self):
        scale = Scale.paper()
        assert scale.transactions == 100_000
        assert scale.replications == 5
        assert scale.loads == PAPER_LOADS
        assert scale.label == "paper"

    def test_quick_is_smaller(self):
        quick, paper = Scale.quick(), Scale.paper()
        assert quick.transactions < paper.transactions
        assert quick.replications <= paper.replications
        assert set(quick.loads) <= set(paper.loads)

    def test_smoke_is_smallest(self):
        smoke, quick = Scale.smoke(), Scale.quick()
        assert smoke.transactions < quick.transactions
        assert len(smoke.loads) <= len(quick.loads)

    def test_quick_and_smoke_cover_key_loads(self):
        # Every preset must include the paper's headline comparison
        # points: 0.5 (low-load loss) and 9.0 (high-load RT).
        for scale in (Scale.quick(), Scale.smoke()):
            assert 0.5 in scale.loads
            assert 9.0 in scale.loads


class TestValidation:
    def test_rejects_tiny_runs(self):
        with pytest.raises(ValueError):
            Scale(transactions=10, replications=1, loads=(1.0,))

    def test_rejects_no_loads(self):
        with pytest.raises(ValueError):
            Scale(transactions=1000, replications=1, loads=())

    def test_rejects_nonpositive_load(self):
        with pytest.raises(ValueError):
            Scale(transactions=1000, replications=1, loads=(0.0,))

    def test_rejects_zero_replications(self):
        with pytest.raises(ValueError):
            Scale(transactions=1000, replications=0, loads=(1.0,))


class TestEnvResolution:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert Scale.from_env().label == "quick"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert Scale.from_env().label == "paper"

    def test_env_case_insensitive(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "  SMOKE ")
        assert Scale.from_env().label == "smoke"

    def test_unknown_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "galactic")
        with pytest.raises(ValueError):
            Scale.from_env()
