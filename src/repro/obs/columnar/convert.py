"""Lossless JSONL ⇄ columnar conversion (``repro trace convert``).

The direction is inferred: the input's format is sniffed from its
magic bytes (gz-transparent), and the output format defaults to the
*other* representation unless the output path names one explicitly
(``.jsonl`` / ``.jsonl.gz`` means JSONL) or the caller forces one.

Converting JSONL -> columnar -> JSONL reproduces the original file
byte for byte for traces written by ``--trace`` (pinned by tests and
the CI ``cmp`` job): record envelopes, key order, value types, and
float representations all survive the round trip.  Arbitrary JSONL
that does not match the trace writer's envelopes is carried as opaque
fragments and round-trips to its compact-JSON form.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.obs.exporters import read_jsonl, write_jsonl

from .io import read_columnar, sniff_format, write_columnar
from .store import ColumnarTrace

#: Output format names accepted by :func:`convert_trace`.
FORMATS = ("jsonl", "columnar")


def infer_output_format(out_path: str, in_format: str) -> str:
    """The output format a path implies (default: the other one)."""
    name = str(out_path)
    if name.endswith(".gz"):
        name = name[: -len(".gz")]
    if name.endswith(".jsonl") or name.endswith(".json"):
        return "jsonl"
    if name.endswith(".rcol") or name.endswith(".columnar"):
        return "columnar"
    return "columnar" if in_format == "jsonl" else "jsonl"


def convert_trace(
    in_path: str,
    out_path: str,
    to: Optional[str] = None,
) -> Tuple[str, str, int]:
    """Convert ``in_path`` to ``out_path``.

    Returns ``(in_format, out_format, n_records)``.  ``to`` forces the
    output format; otherwise it is inferred from the output path (see
    :func:`infer_output_format`).  Both sides are gz-aware via the
    ``.gz`` suffix.
    """
    in_format = sniff_format(in_path)
    out_format = to or infer_output_format(out_path, in_format)
    if out_format not in FORMATS:
        raise ValueError(
            f"unknown output format {out_format!r}; expected one of "
            f"{FORMATS}"
        )

    if in_format == "columnar":
        trace = read_columnar(in_path)
        if out_format == "columnar":
            write_columnar(trace, out_path)
            return in_format, out_format, len(trace)
        return (
            in_format,
            out_format,
            write_jsonl(out_path, trace.iter_records()),
        )

    records = read_jsonl(in_path)
    if out_format == "jsonl":
        return in_format, out_format, write_jsonl(out_path, records)
    trace = ColumnarTrace.from_records(records)
    write_columnar(trace, out_path)
    return in_format, out_format, len(trace)
