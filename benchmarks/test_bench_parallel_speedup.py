"""Execution-layer speedup: the fig09_10 sweep, serial vs 4 workers.

Times the same quick-scale SRAA sweep through the serial backend and a
4-worker process pool, records both wall-clocks, and asserts the runs
are bit-identical (the execution layer's determinism guarantee).  The
speedup assertion only applies on multi-core hardware -- on a single
CPU the pool can only add overhead, so there the two times are merely
recorded for the machine-capability record.
"""

import os
import time

from conftest import BENCH_SEED, bench_scale

from repro.exec.backends import ProcessPoolBackend, SerialBackend
from repro.experiments.sweep import sraa_config, sweep_policies

#: A representative subset of the Fig. 9/10 frame (n*K*D = 15).
CONFIGS = (
    sraa_config(3, 1, 5),
    sraa_config(1, 3, 5),
    sraa_config(5, 3, 1),
    sraa_config(15, 1, 1),
)

POOL_WORKERS = 4


def _sweep(backend):
    return sweep_policies(CONFIGS, bench_scale(), seed=BENCH_SEED,
                          backend=backend)


def test_parallel_sweep_speedup(benchmark):
    serial_started = time.perf_counter()
    serial = _sweep(SerialBackend())
    serial_s = time.perf_counter() - serial_started

    pool_started = time.perf_counter()
    pooled = _sweep(ProcessPoolBackend(workers=POOL_WORKERS))
    pool_s = time.perf_counter() - pool_started

    # The determinism guarantee: backend choice never changes numbers.
    assert serial.results == pooled.results

    cores = os.cpu_count() or 1
    benchmark.extra_info["serial_s"] = round(serial_s, 3)
    benchmark.extra_info["pool_s"] = round(pool_s, 3)
    benchmark.extra_info["workers"] = POOL_WORKERS
    benchmark.extra_info["cpu_cores"] = cores
    print(
        f"\nserial {serial_s:.2f}s vs {POOL_WORKERS}-worker pool "
        f"{pool_s:.2f}s on {cores} core(s) "
        f"(speedup {serial_s / pool_s:.2f}x)"
    )
    if cores >= 2:
        # With real parallel hardware the pool must win.
        assert pool_s < serial_s

    # The timed metric for pytest-benchmark's own table: one more
    # pooled run (the serial baseline is in extra_info).
    benchmark.pedantic(
        _sweep,
        args=(ProcessPoolBackend(workers=POOL_WORKERS),),
        rounds=1,
        iterations=1,
    )
