"""``repro.obs.columnar``: the columnar trace pipeline.

Structured-array storage for trace events (:mod:`.store`), an
mmap/gzip-friendly on-disk container with a footer segment index
(:mod:`.io`), a tracer-protocol tap that ships encoded batches across
process pools (:mod:`.tap`), a vectorized query layer shared by
``report``/``explain``/re-scoring/``serve`` (:mod:`.query`), lossless
format conversion (:mod:`.convert`), and a synthetic trace generator
for scale testing (:mod:`.synth`).

The JSONL path remains the compatibility baseline: every record a
columnar trace stores decodes back to the exact dict its JSONL twin
parses to, and consumers produce byte-identical output from either
representation (pinned by tests/obs/columnar).
"""

from .io import (
    read_columnar,
    read_footer,
    sniff_format,
    write_columnar,
)
from .query import (
    ColumnarQuery,
    RecordsQuery,
    as_query,
    load_query,
)
from .store import ColumnarTrace, EventBatch, encode_records
from .tap import ColumnarRun, ColumnarTap

__all__ = [
    "ColumnarQuery",
    "ColumnarRun",
    "ColumnarTap",
    "ColumnarTrace",
    "EventBatch",
    "RecordsQuery",
    "as_query",
    "encode_records",
    "load_query",
    "read_columnar",
    "read_footer",
    "sniff_format",
    "write_columnar",
]
