"""The assurance plane over real sockets: schedules, alerts, SSE.

The tentpole acceptance pin lives here: a campaign launched by the
scheduler through ``POST /api/schedules/tick`` records a ledger entry
whose manifest hash is byte-identical to the same campaign run via the
CLI.  Alert evaluation rides the same server: snapshots published
through the broker open incidents that surface on ``GET /api/alerts``,
the SSE ``alert`` event, and the alert ledger file.
"""

import threading

import pytest

from repro.serve import ReproServer

from .conftest import ServerClient

#: Same campaign shape as tests/serve/test_serve_jobs.py.
CAMPAIGN = {
    "scenarios": "aging_onset",
    "policies": "SRAA",
    "replications": 1,
    "seed": 3,
    "horizon": 300,
}

#: A burn rule that handcrafted snapshots can trip quickly.
RULES = {
    "burn_rate": [
        {
            "name": "slo",
            "slo_s": 0.2,
            "objective": 0.9,
            "factor": 2.0,
            "long_window_s": 100.0,
            "short_window_s": 20.0,
            "min_count": 10,
        }
    ]
}


@pytest.fixture
def watched(tmp_path):
    """A server with alert rules and a persisted alert ledger."""
    server = ReproServer(
        port=0, rules=RULES, alerts_dir=str(tmp_path / "alerts")
    ).start()
    client = ServerClient(server)
    yield client
    server.close()


def snapshot(ts, completed, bad):
    return {
        "ts": ts,
        "completed": completed,
        "slo_bad": bad,
        "slo_s": 0.2,
        "run": "job-0001",
    }


class TestSchedulesApi:
    def test_add_tick_launch_roundtrip(self, watched):
        status, body = watched.post(
            "/api/schedules",
            {
                "name": "nightly",
                "campaign": dict(CAMPAIGN),
                "every_s": 60.0,
                "now": 0.0,
            },
        )
        assert status == 201
        assert body["schedule"]["next_due"] == 60.0
        status, listing = watched.get("/api/schedules")
        assert status == 200
        assert [s["name"] for s in listing["schedules"]] == ["nightly"]
        status, single = watched.get("/api/schedules/nightly")
        assert status == 200
        assert single["schedule"]["every_s"] == 60.0

        status, early = watched.post("/api/schedules/tick", {"now": 30.0})
        assert status == 200
        assert early["launched"] == []
        status, fired = watched.post("/api/schedules/tick", {"now": 60.0})
        assert status == 200
        (job,) = fired["launched"]
        assert job["source"] == "schedule:nightly"
        assert job["scheduled_for"] == 60.0
        final = watched.server.jobs.wait(job["id"], timeout_s=180.0)
        assert final["status"] == "done", final["error"]

        status, health = watched.get("/api/health")
        assert health["schedules"] == 1

    def test_scheduled_run_matches_cli_manifest_hash(self, watched):
        """Scheduler-launched campaigns are the CLI campaign, bit for bit."""
        from repro.cli import main
        from repro.obs.ledger import Ledger

        assert main([
            "faults", "run", "aging_onset",
            "--policies", "SRAA",
            "--replications", "1",
            "--seed", "3",
            "--horizon", "300",
            "--backend", "serial",
        ]) == 0
        cli_entry = Ledger().get("latest")

        watched.post(
            "/api/schedules",
            {
                "name": "nightly",
                "campaign": dict(CAMPAIGN),
                "every_s": 60.0,
                "now": 0.0,
            },
        )
        _, fired = watched.post("/api/schedules/tick", {"now": 60.0})
        (job,) = fired["launched"]
        final = watched.server.jobs.wait(job["id"], timeout_s=180.0)
        assert final["status"] == "done", final["error"]
        scheduled_entry = Ledger().get(final["entry_id"])
        assert (
            scheduled_entry["manifest"]["manifest_hash"]
            == cli_entry["manifest"]["manifest_hash"]
        )

    def test_bad_schedules_are_400s(self, watched):
        cases = [
            {"name": "x", "campaign": {"scenarios": "bogus"},
             "every_s": 60.0},
            {"name": "x", "campaign": dict(CAMPAIGN)},  # no trigger
            {"name": "x", "campaign": dict(CAMPAIGN), "every_s": 60.0,
             "typo": 1},
        ]
        for body in cases:
            status, payload = watched.post("/api/schedules", body)
            assert status == 400, body
            assert "error" in payload
        watched.post(
            "/api/schedules",
            {"name": "dup", "campaign": dict(CAMPAIGN), "every_s": 60.0,
             "now": 0.0},
        )
        status, payload = watched.post(
            "/api/schedules",
            {"name": "dup", "campaign": dict(CAMPAIGN), "every_s": 60.0,
             "now": 0.0},
        )
        assert status == 400
        assert "already exists" in payload["error"]

    def test_tick_now_must_be_numeric(self, watched):
        status, payload = watched.post(
            "/api/schedules/tick", {"now": "noon"}
        )
        assert status == 400
        status, missing = watched.get("/api/schedules/never-added")
        assert status == 404


class TestAlertsApi:
    def test_incident_lifecycle_surfaces_everywhere(self, watched, tmp_path):
        broker = watched.server.broker
        broker.publish("live.snapshot", snapshot(10.0, 10, 0))
        _, quiet = watched.get("/api/alerts")
        assert quiet == {
            "open": 0,
            "closed": 0,
            "incidents": [],
            "rules": quiet["rules"],
        }
        assert quiet["rules"][0]["name"] == "slo"

        broker.publish("live.snapshot", snapshot(20.0, 20, 20))
        _, firing = watched.get("/api/alerts")
        assert firing["open"] == 1
        (incident,) = firing["incidents"]
        assert incident["id"] == "inc-0001"
        assert incident["target"] == "job-0001"

        _, health = watched.get("/api/health")
        assert health["alerts_open"] == 1

        broker.publish("live.snapshot", snapshot(140.0, 140, 20))
        _, resolved = watched.get("/api/alerts")
        assert resolved["open"] == 0
        assert resolved["closed"] == 1
        assert resolved["incidents"][0]["close_reason"] == "resolved"

        # The transitions were persisted to the alert ledger file.
        from repro.obs.sentinel import AlertLedger

        records = AlertLedger(str(tmp_path / "alerts")).records()
        assert [r["action"] for r in records] == ["open", "close"]

    def test_alert_event_rides_the_sse_stream(self, watched):
        collected = []
        done = threading.Event()

        def subscriber():
            collected.extend(
                watched.sse_events(max_events=4, timeout_s=30.0)
            )
            done.set()

        thread = threading.Thread(target=subscriber, daemon=True)
        thread.start()
        threading.Event().wait(0.3)  # let the stream attach
        broker = watched.server.broker
        broker.publish("live.snapshot", snapshot(10.0, 10, 0))
        broker.publish("live.snapshot", snapshot(20.0, 20, 0))
        broker.publish("live.snapshot", snapshot(30.0, 30, 25))
        assert done.wait(30.0)
        kinds = [e["event"] for e in collected]
        assert kinds[0] == "sse.hello"
        assert kinds[1:] == [
            "live.snapshot",
            "live.snapshot",
            "live.snapshot",
            "alert",
        ]
        alert = collected[-1]["data"]
        assert alert["action"] == "open"
        assert alert["incident"]["id"] == "inc-0001"
        # The alert is a broker event like any other: ordered after the
        # snapshot that tripped it.
        seqs = [e["seq"] for e in collected[1:]]
        assert seqs == sorted(seqs)

    def test_unwatched_server_reports_no_rules(self, served):
        _, payload = served.get("/api/alerts")
        assert payload == {
            "open": 0, "closed": 0, "incidents": [], "rules": [],
        }
        _, health = served.get("/api/health")
        assert health["alerts_open"] == 0
