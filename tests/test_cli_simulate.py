"""The `repro simulate` subcommand."""

import pytest

from repro.cli import _parse_params, main


class TestParseParams:
    def test_int_stays_int(self):
        params = _parse_params(["n=2", "K=5"])
        assert params == {"n": 2, "K": 5}
        assert all(isinstance(v, int) for v in params.values())

    def test_float_parsed(self):
        assert _parse_params(["z=2.33"]) == {"z": 2.33}

    def test_scientific_notation_accepted(self):
        assert _parse_params(["mu=1e-3"]) == {"mu": 0.001}
        assert _parse_params(["rate=2.5E2"]) == {"rate": 250.0}
        assert _parse_params(["limit=1e6"]) == {"limit": 1_000_000.0}

    def test_negative_values(self):
        assert _parse_params(["drift=-0.5"]) == {"drift": -0.5}

    def test_missing_separator_rejected(self):
        with pytest.raises(SystemExit):
            _parse_params(["n"])

    def test_missing_key_rejected(self):
        with pytest.raises(SystemExit):
            _parse_params(["=3"])

    def test_non_numeric_rejected(self):
        with pytest.raises(SystemExit):
            _parse_params(["n=abc"])


class TestSimulate:
    def test_sraa_run(self, capsys):
        code = main(
            [
                "simulate",
                "--policy", "sraa",
                "-p", "n=2", "-p", "K=5", "-p", "D=3",
                "--load", "9",
                "--transactions", "2000",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "SRAA(n=2, K=5, D=3)" in out
        assert "avg response time" in out
        assert "rejuvenations" in out

    def test_none_policy(self, capsys):
        code = main(
            ["simulate", "--policy", "none", "--load", "1",
             "--transactions", "1000"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "no rejuvenation" in out
        assert "rejuvenations     : 0" in out

    def test_float_params(self, capsys):
        code = main(
            ["simulate", "--policy", "clta", "-p", "n=15", "-p", "z=2.33",
             "--load", "2", "--transactions", "1000"]
        )
        assert code == 0
        assert "CLTA(n=15, z=2.33)" in capsys.readouterr().out

    def test_replications_reported(self, capsys):
        code = main(
            ["simulate", "--policy", "periodic", "-p", "period=200",
             "--load", "3", "--transactions", "1000",
             "--replications", "2"]
        )
        assert code == 0
        assert "2 x 1000" in capsys.readouterr().out

    def test_bad_param_syntax(self):
        with pytest.raises(SystemExit):
            main(["simulate", "-p", "n", "--transactions", "1000"])

    def test_bad_param_value(self):
        with pytest.raises(SystemExit):
            main(["simulate", "-p", "n=abc", "--transactions", "1000"])

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            main(
                ["simulate", "--policy", "quantum",
                 "--transactions", "1000"]
            )

    def test_workers_gives_identical_numbers(self, capsys):
        args = [
            "simulate", "--policy", "sraa",
            "-p", "n=2", "-p", "K=5", "-p", "D=3",
            "--load", "6", "--transactions", "1000",
            "--replications", "2", "--seed", "3",
        ]
        assert main(args) == 0
        serial_out = capsys.readouterr().out
        assert main(args + ["--workers", "2"]) == 0
        parallel_out = capsys.readouterr().out
        # Everything except per-invocation metadata (wall-clock, the
        # sequential ledger entry id) must be identical.
        strip = lambda out: [
            line
            for line in out.splitlines()
            if "wall-clock" not in line and "ledger" not in line
        ]
        assert strip(serial_out) == strip(parallel_out)
        # The ledger ids differ only in sequence number: the manifest
        # hash suffix (run identity) is backend-independent.
        ids = [
            line.rsplit("-", 1)[-1]
            for out in (serial_out, parallel_out)
            for line in out.splitlines()
            if "ledger" in line
        ]
        assert len(ids) == 2 and ids[0] == ids[1]

    def test_scientific_notation_param_end_to_end(self, capsys):
        code = main(
            ["simulate", "--policy", "ewma", "-p", "lam=2e-1",
             "--load", "2", "--transactions", "1000"]
        )
        assert code == 0
        assert "avg response time" in capsys.readouterr().out
