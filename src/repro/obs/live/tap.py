"""The live tap: streaming aggregation fed by the tracer emit stream.

A :class:`LiveTap` implements the tracer protocol the instrumented
code already speaks (``spans`` / ``decisions`` / ``engine`` flags plus
``emit``), so turning live telemetry on costs the *same* hot-path
idiom as tracing -- one attribute load and a flag check when off --
with none of tracing's unbounded buffering: events update the
constant-memory aggregators of :mod:`~repro.obs.live.sketches` (and
optionally a :class:`~repro.obs.live.recorder.FlightRecorder` ring)
and are then forgotten.

Configuration is a picklable :class:`LiveSpec` carried on the
:class:`~repro.exec.jobs.ReplicationJob`; the worker-side tap's final
:class:`LiveAggregator` state rides home on ``RunResult.live`` and
folds across replications in submission order
(:func:`merge_live`) -- bit-identically between the serial and
process-pool backends.

When both full tracing *and* live telemetry are requested, a
:class:`TeeTracer` fans the emit stream out to the buffering
:class:`~repro.obs.tracer.Tracer` and the tap.
"""

from __future__ import annotations

import contextlib
import gc
from dataclasses import dataclass, replace
from typing import Any, Dict, Iterator, Optional, Sequence, Tuple

from repro.obs.events import (
    FAULT_CLEARED,
    FAULT_INJECTED,
    LIFECYCLE_TYPES,
    POLICY_LEVEL,
    POLICY_TRIGGER,
    REQUEST_COMPLETE,
    REQUEST_LOSS,
    SYSTEM_GC,
    SYSTEM_REJUVENATION,
    TraceEvent,
    category_of,
)
from repro.obs.live.recorder import FlightRecorder, RecorderSpec
from repro.obs.live.sketches import (
    DEFAULT_EPS,
    EwmaRate,
    GKSketch,
    RollingWindow,
)
from repro.stats.running import OnlineMoments

#: Default dashboard quantiles.
DEFAULT_QUANTILES: Tuple[float, ...] = (0.5, 0.9, 0.95, 0.99)

#: Event types the aggregator counts (beyond response-time updates).
#: A frozenset: membership is checked on every emitted event.
COUNTED_TYPES = frozenset(
    {
        REQUEST_COMPLETE,
        REQUEST_LOSS,
        SYSTEM_GC,
        SYSTEM_REJUVENATION,
        FAULT_INJECTED,
        FAULT_CLEARED,
        POLICY_TRIGGER,
    }
)


@dataclass(frozen=True)
class LiveSpec:
    """Picklable live-telemetry configuration (rides on the job).

    Parameters
    ----------
    quantiles:
        Quantiles the snapshot reports (the sketch answers any).
    eps:
        Rank-error budget of the GK sketch.
    window:
        Rolling-window size for the recent-past statistics.
    ewma_tau_s:
        Time constant of the completion-rate meter (simulated seconds).
    aggregate:
        Run the streaming aggregators (sketch, window, rate, counts).
        ``False`` leaves only the flight recorder: the cheapest
        always-on configuration, for when forensics are wanted but the
        dashboard statistics are not.
    recorder:
        Optional flight-recorder configuration; ``None`` disables the
        ring.
    display:
        Optional live display (e.g. ``repro top``'s renderer) called
        with snapshots as events stream through.  A display makes the
        spec unpicklable on purpose: the process-pool backend then runs
        the job in the parent process, which is exactly where a
        terminal renderer must live.
    """

    quantiles: Tuple[float, ...] = DEFAULT_QUANTILES
    eps: float = DEFAULT_EPS
    window: int = 256
    ewma_tau_s: float = 60.0
    aggregate: bool = True
    recorder: Optional[RecorderSpec] = None
    display: Optional[Any] = None

    def build(self) -> "LiveTap":
        """A fresh tap for one replication."""
        return LiveTap(self)

    def without_display(self) -> "LiveSpec":
        """A picklable copy (display handles never cross processes)."""
        if self.display is None:
            return self
        return replace(self, display=None)


class LiveAggregator:
    """The mergeable live state of one (or many folded) replications."""

    __slots__ = (
        "quantiles",
        "moments",
        "sketch",
        "window",
        "rate",
        "counts",
        "level",
        "last_ts",
    )

    def __init__(self, spec: LiveSpec) -> None:
        self.quantiles = tuple(spec.quantiles)
        self.moments = OnlineMoments()
        self.sketch = GKSketch(eps=spec.eps)
        self.window = RollingWindow(size=spec.window)
        self.rate = EwmaRate(tau_s=spec.ewma_tau_s)
        self.counts: Dict[str, int] = {}
        #: Current detector bucket level (from ``policy.level`` events).
        self.level = 0
        self.last_ts = 0.0

    # ------------------------------------------------------------------
    def observe_response_time(self, ts: float, value: float) -> None:
        """Fold one completed response time into every aggregator."""
        self.moments.push(value)
        self.sketch.update(value)
        self.window.push(value)
        self.rate.update(ts)
        self.last_ts = ts

    def count(self, etype: str) -> None:
        self.counts[etype] = self.counts.get(etype, 0) + 1

    # ------------------------------------------------------------------
    def merge(self, other: "LiveAggregator") -> "LiveAggregator":
        """A new aggregator folding ``other`` after ``self``.

        Call in job submission order: every constituent merge is
        deterministic, so serial and process-pool folds agree bit for
        bit.
        """
        spec = LiveSpec(
            quantiles=self.quantiles,
            eps=max(self.sketch.eps, other.sketch.eps),
            window=max(self.window.size, other.window.size),
            ewma_tau_s=max(self.rate.tau_s, other.rate.tau_s),
        )
        merged = LiveAggregator(spec)
        merged.moments = self.moments.merge(other.moments)
        merged.sketch = self.sketch.merge(other.sketch)
        merged.window = self.window.merge(other.window)
        merged.rate = self.rate.merge(other.rate)
        counts = dict(self.counts)
        for etype, value in other.counts.items():
            counts[etype] = counts.get(etype, 0) + value
        merged.counts = counts
        merged.level = other.level
        merged.last_ts = max(self.last_ts, other.last_ts)
        return merged

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """A plain-dict dashboard view (JSON-serialisable)."""
        moments = self.moments
        out: Dict[str, Any] = {
            "ts": self.last_ts,
            "completed": self.counts.get(REQUEST_COMPLETE, 0),
            "lost": self.counts.get(REQUEST_LOSS, 0),
            "gc": self.counts.get(SYSTEM_GC, 0),
            "rejuvenations": self.counts.get(SYSTEM_REJUVENATION, 0),
            "faults": self.counts.get(FAULT_INJECTED, 0),
            "triggers": self.counts.get(POLICY_TRIGGER, 0),
            "level": self.level,
            "rate_per_s": self.rate.rate(),
            "rt_mean": moments.mean if moments.count else 0.0,
            "rt_std": moments.std,
            "rt_max": moments.maximum if moments.count else 0.0,
            "window_mean": self.window.mean,
            "window_autocorr": self.window.autocorr_lag1(),
        }
        if self.sketch.count:
            out["rt_quantiles"] = {
                f"p{int(q * 100):02d}": self.sketch.query(q)
                for q in self.quantiles
            }
        else:
            out["rt_quantiles"] = {}
        return out


class LiveTap:
    """A tracer-protocol sink updating a :class:`LiveAggregator`.

    The flags mirror :class:`~repro.obs.tracer.Tracer`: instrumented
    code checks ``tap.spans`` / ``tap.decisions`` before emitting, so
    the tap receives span and decision events but never asks for the
    per-DES-event firehose (``engine`` stays ``False``).  Crucially the
    tap also sets ``lifecycle = False``: it aggregates completions and
    counts incidents, so it has no use for the per-request microscope
    (arrivals, enqueues, service starts, per-batch comparisons) -- and
    declining those events spares the instrumented code their call-site
    cost, which is what keeps always-on telemetry within the overhead
    budget.
    """

    __slots__ = (
        "spec",
        "aggregator",
        "recorder",
        "display",
        "spans",
        "decisions",
        "engine",
        "lifecycle",
        "level",
        "_aggregate",
        "_rec_append",
        "_rec_triggers",
        "_rec_slo",
        "_rec_dump",
    )

    #: Trace level stamped on jobs when only live telemetry is on --
    #: the tap needs spans and decisions, never engine events.
    level_name = "decisions"

    def __init__(self, spec: LiveSpec) -> None:
        self.spec = spec
        self.aggregator = LiveAggregator(spec)
        self.recorder: Optional[FlightRecorder] = (
            spec.recorder.build() if spec.recorder is not None else None
        )
        self.display = spec.display
        self.spans = True
        self.decisions = True
        self.engine = False
        self.lifecycle = False
        self.level = "live"
        # A display renders aggregator snapshots, so it implies them.
        self._aggregate = spec.aggregate or spec.display is not None
        # The recorder's hot path is inlined into :meth:`emit` (a
        # method call per event is measurable at ~20k events/run), so
        # pre-bind its internals here.  ``deque.append`` stays valid
        # across ``clear()`` because ``deque.clear`` keeps the object.
        recorder = self.recorder
        if recorder is not None:
            self._rec_append = recorder._ring.append
            self._rec_triggers = recorder._triggers
            self._rec_slo = recorder._slo
            self._rec_dump = recorder._dump
        else:
            self._rec_append = None
            self._rec_triggers = frozenset()
            self._rec_slo = None
            self._rec_dump = None

    def emit(self, ts: float, etype: str, source: str, **data: Any) -> None:
        """Consume one event: aggregate, record, maybe render.

        This is the hot path -- but because the tap declines
        ``lifecycle`` events, it fires only for the macroscopic record:
        completions, losses, GC, rejuvenations, faults, and the rare
        policy transitions.  With ``aggregate=False`` an event costs
        one flag check plus the recorder's tuple append.
        """
        if self._aggregate:
            if etype in COUNTED_TYPES:
                aggregator = self.aggregator
                if etype == REQUEST_COMPLETE:
                    aggregator.observe_response_time(
                        ts, data.get("response_time", 0.0)
                    )
                else:
                    aggregator.last_ts = ts
                aggregator.count(etype)
            elif etype == POLICY_LEVEL:
                aggregator = self.aggregator
                aggregator.level = data.get("level", aggregator.level)
                aggregator.last_ts = ts
        append = self._rec_append
        if append is not None:
            # Inlined FlightRecorder.record: a tuple append, a set
            # lookup, and (for completions under an SLO) one compare.
            append((ts, etype, source, data))
            if etype in self._rec_triggers:
                self._rec_dump(etype, ts)
            elif (
                self._rec_slo is not None
                and etype == REQUEST_COMPLETE
                and data.get("response_time", 0.0) > self._rec_slo
            ):
                self._rec_dump("slo_breach", ts)
        if self.display is not None:
            self.display.tick(self)

    # Tracer-protocol compatibility -------------------------------------
    @property
    def events(self) -> Tuple[TraceEvent, ...]:
        """The tap buffers nothing; the aggregates ARE the record."""
        return ()

    def payload(self) -> Tuple[TraceEvent, ...]:
        """The tap buffers nothing; its trace payload is empty."""
        return ()

    def clear(self) -> None:
        """Reset all live state (a fresh run starts clean)."""
        self.aggregator = LiveAggregator(self.spec)
        if self.recorder is not None:
            self.recorder.clear()

    def freeze(self) -> LiveAggregator:
        """The aggregator to ship home on ``RunResult.live``."""
        return self.aggregator

    def dumps(self) -> Tuple[Any, ...]:
        """The flight-recorder dumps (empty without a recorder)."""
        if self.recorder is None:
            return ()
        return tuple(self.recorder.dumps)


class TeeTracer:
    """Fans one emit stream out to several tracer-protocol sinks.

    Used when a run wants both a full buffering
    :class:`~repro.obs.tracer.Tracer` and a :class:`LiveTap`.  The
    category flags (including ``lifecycle``) are the OR of the sinks'
    flags, and each sink only receives the event classes it asked for:
    a spans-only sink never sees decision events, and a sink that
    declined the per-request microscope never sees lifecycle events --
    so the tap behaves identically whether or not a full tracer rides
    alongside it (flight dumps stay bit-identical either way).
    """

    __slots__ = ("sinks", "spans", "decisions", "engine", "lifecycle", "level")

    def __init__(self, sinks: Sequence[Any]) -> None:
        if not sinks:
            raise ValueError("need at least one sink")
        self.sinks = tuple(sinks)
        self.spans = any(sink.spans for sink in self.sinks)
        self.decisions = any(sink.decisions for sink in self.sinks)
        self.engine = any(sink.engine for sink in self.sinks)
        self.lifecycle = any(
            getattr(sink, "lifecycle", True) for sink in self.sinks
        )
        self.level = "tee"

    def emit(self, ts: float, etype: str, source: str, **data: Any) -> None:
        category = category_of(etype)
        lifecycle = etype in LIFECYCLE_TYPES
        for sink in self.sinks:
            if lifecycle and not getattr(sink, "lifecycle", True):
                continue
            if (
                (category == "span" and sink.spans)
                or (category == "decision" and sink.decisions)
                or (category == "engine" and sink.engine)
                or category == "meta"
            ):
                sink.emit(ts, etype, source, **data)

    @property
    def events(self) -> Tuple[TraceEvent, ...]:
        """The buffered events of the first buffering sink."""
        for sink in self.sinks:
            events = sink.events
            if events:
                return tuple(events)
        return ()

    def payload(self) -> Any:
        """The first buffering sink's trace payload (see
        :meth:`repro.obs.tracer.Tracer.payload`)."""
        for sink in self.sinks:
            sink_payload = getattr(sink, "payload", None)
            if sink_payload is not None:
                result = sink_payload()
                if len(result):
                    return result
        return ()

    def clear(self) -> None:
        for sink in self.sinks:
            sink.clear()


def compose_tracers(*sinks: Optional[Any]) -> Optional[Any]:
    """``None`` / the single sink / a :class:`TeeTracer` over several."""
    present = [sink for sink in sinks if sink is not None]
    if not present:
        return None
    if len(present) == 1:
        return present[0]
    return TeeTracer(present)


@contextlib.contextmanager
def amortised_gc(gen0_threshold: int = 20_000) -> Iterator[None]:
    """Raise the cyclic collector's gen0 threshold for a block.

    The tap's ring stores one tuple and one payload dict per event --
    tens of thousands of tracked allocations per run -- and each batch
    of ~700 of them triggers a young-generation collection pass.  That
    amplification, not the appends themselves, is roughly half of the
    recorder's measured overhead.  Telemetry-heavy Python services
    routinely raise the gen0 threshold to amortise collector passes
    over larger batches; the job runner wraps live-telemetry runs in
    this guard for the same reason.  Peak memory grows by at most the
    threshold's worth of young garbage (a few MB).  Thresholds are
    restored on exit; a fully disabled collector is left alone.
    """
    if not gc.isenabled():
        yield
        return
    gen0, gen1, gen2 = gc.get_threshold()
    gc.set_threshold(max(gen0, gen0_threshold), gen1, gen2)
    try:
        yield
    finally:
        gc.set_threshold(gen0, gen1, gen2)


def merge_live(aggregators) -> Optional[LiveAggregator]:
    """Fold per-run aggregators in submission order (None-safe)."""
    merged: Optional[LiveAggregator] = None
    for aggregator in aggregators:
        if aggregator is None:
            continue
        merged = (
            aggregator if merged is None else merged.merge(aggregator)
        )
    return merged


def live_outcome(aggregator: LiveAggregator) -> Dict[str, Any]:
    """The aggregator's ledger-entry block: snapshot plus sketch size.

    Everything in the snapshot is deterministic for a given event
    stream (submission-order merging keeps it so across backends), so
    the block can sit in the *outcomes* section of a run ledger entry.
    The sketch metadata records the error budget the quantiles carry.
    """
    snapshot = aggregator.snapshot()
    snapshot["sketch"] = {
        "count": aggregator.sketch.count,
        "eps": aggregator.sketch.eps,
        "tuples": aggregator.sketch.tuples,
    }
    return snapshot
