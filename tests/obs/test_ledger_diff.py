"""Entry diffing: flattening, relative deltas, section selection."""

from repro.core.spec import PolicySpec
from repro.ecommerce.config import SystemConfig
from repro.ecommerce.spec import ArrivalSpec
from repro.obs.ledger import Ledger, diff_entries, flatten, format_diff
from repro.obs.ledger.diff import spec_drift
from repro.obs.ledger.manifest import simulate_manifest


def make_entry(tmp_path, name, seed=7, outcomes=None, rate=1.8):
    manifest = simulate_manifest(
        config=SystemConfig(),
        arrival=ArrivalSpec.poisson(rate),
        policy=PolicySpec.sraa(2, 5, 3),
        n_transactions=1000,
        replications=2,
        seed=seed,
    )
    return Ledger(str(tmp_path / name)).append(manifest, outcomes or {})


class TestFlatten:
    def test_nested_dicts_become_dotted_paths(self):
        flat = flatten({"a": {"b": 1, "c": {"d": 2}}})
        assert flat == {"a.b": 1, "a.c.d": 2}

    def test_lists_become_indexed_paths(self):
        assert flatten({"xs": [10, {"y": 1}]}) == {
            "xs[0]": 10,
            "xs[1].y": 1,
        }

    def test_scalar_at_root(self):
        assert flatten(5, prefix="value") == {"value": 5}


class TestDiffEntries:
    def test_identical_entries_have_no_differences(self, tmp_path):
        a = make_entry(tmp_path, "a", outcomes={"rt": 1.0})
        b = make_entry(tmp_path, "b", outcomes={"rt": 1.0})
        assert diff_entries(a, b) == []

    def test_outcome_change_detected_with_relative_delta(self, tmp_path):
        a = make_entry(tmp_path, "a", outcomes={"rt": 10.0})
        b = make_entry(tmp_path, "b", outcomes={"rt": 20.0})
        (difference,) = diff_entries(a, b)
        assert difference["path"] == "outcomes.rt"
        assert difference["relative_delta"] == 0.5

    def test_missing_key_shows_absent(self, tmp_path):
        a = make_entry(tmp_path, "a", outcomes={"rt": 1.0, "extra": 2})
        b = make_entry(tmp_path, "b", outcomes={"rt": 1.0})
        (difference,) = diff_entries(a, b)
        assert difference["path"] == "outcomes.extra"
        assert difference["right"] == "<absent>"

    def test_environment_and_execution_ignored(self, tmp_path, monkeypatch):
        a = make_entry(tmp_path, "a")
        monkeypatch.setenv("REPRO_GIT_SHA", "feedface" * 5)
        b = make_entry(tmp_path, "b")
        assert diff_entries(a, b) == []

    def test_spec_change_surfaces_hash_and_field(self, tmp_path):
        a = make_entry(tmp_path, "a", rate=1.8)
        b = make_entry(tmp_path, "b", rate=3.6)
        paths = {d["path"] for d in diff_entries(a, b)}
        assert "manifest.manifest_hash" in paths
        assert "manifest.spec.arrival.params.rate" in paths

    def test_bool_int_not_confused(self, tmp_path):
        a = make_entry(tmp_path, "a", outcomes={"flag": True})
        b = make_entry(tmp_path, "b", outcomes={"flag": 1})
        (difference,) = diff_entries(a, b)
        assert "relative_delta" not in difference


class TestSpecDrift:
    def test_only_hashed_sections_compared(self, tmp_path, monkeypatch):
        a = make_entry(tmp_path, "a", seed=1)
        monkeypatch.setenv("REPRO_GIT_SHA", "feedface" * 5)
        b = make_entry(tmp_path, "b", seed=2)
        paths = spec_drift(a, b)
        assert all(p.startswith("seed_protocol") for p in paths)
        assert paths  # the seeds differ


class TestFormatDiff:
    def test_limit_appends_more_row(self):
        differences = [
            {"path": f"outcomes.m{i}", "left": i, "right": i + 1}
            for i in range(5)
        ]
        rows = format_diff(differences, limit=2)
        assert len(rows) == 3
        assert rows[-1] == ("...", "3 more")

    def test_relative_delta_rendered_as_percent(self):
        rows = format_diff(
            [
                {
                    "path": "outcomes.rt",
                    "left": 10.0,
                    "right": 20.0,
                    "relative_delta": 0.5,
                }
            ]
        )
        assert "+50.00%" in rows[0][1]
