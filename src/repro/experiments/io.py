"""Persistence of experiment results.

Reproduction studies need results that outlive the terminal: every
:class:`~repro.experiments.tables.ExperimentResult` can be written to
JSON (lossless, reloadable) or CSV (one file per table, for plotting
tools), and reloaded for later comparison -- e.g. diffing a paper-scale
run against a quick run, or against the numbers recorded in
EXPERIMENTS.md.
"""

from __future__ import annotations

import csv
import gzip
import json
import os
import re
from typing import Any, Dict, List

from repro.experiments.tables import ExperimentResult, Series, Table

#: Schema version written into every JSON file.
SCHEMA_VERSION = 1


# ----------------------------------------------------------------------
# JSON (lossless)
# ----------------------------------------------------------------------
def result_to_dict(result: ExperimentResult) -> Dict[str, Any]:
    """A plain-dict representation (stable, schema-versioned)."""
    return {
        "schema_version": SCHEMA_VERSION,
        "experiment_id": result.experiment_id,
        "description": result.description,
        "paper_expectations": list(result.paper_expectations),
        "tables": [
            {
                "title": table.title,
                "x_label": table.x_label,
                "y_label": table.y_label,
                "notes": list(table.notes),
                "series": [
                    {
                        "label": series.label,
                        # JSON keys must be strings; keep x explicit.
                        "points": [
                            [x, y] for x, y in sorted(series.points.items())
                        ],
                    }
                    for series in table.series
                ],
            }
            for table in result.tables
        ],
    }


def result_from_dict(payload: Dict[str, Any]) -> ExperimentResult:
    """Inverse of :func:`result_to_dict`."""
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported schema version {version!r} "
            f"(this library writes {SCHEMA_VERSION})"
        )
    tables: List[Table] = []
    for table_payload in payload["tables"]:
        table = Table(
            title=table_payload["title"],
            x_label=table_payload["x_label"],
            y_label=table_payload["y_label"],
            notes=list(table_payload.get("notes", [])),
        )
        for series_payload in table_payload["series"]:
            series = Series(label=series_payload["label"])
            for x, y in series_payload["points"]:
                series.add(float(x), float(y))
            table.add_series(series)
        tables.append(table)
    return ExperimentResult(
        experiment_id=payload["experiment_id"],
        description=payload["description"],
        tables=tables,
        paper_expectations=list(payload.get("paper_expectations", [])),
    )


def _open_text(path: str, mode: str):
    """Text handle, transparently gzipped for ``.gz`` paths."""
    if path.endswith(".gz"):
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def save_json(result: ExperimentResult, path: str) -> None:
    """Write one experiment result as JSON (gzipped for ``.gz`` paths)."""
    with _open_text(path, "w") as handle:
        json.dump(result_to_dict(result), handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_json(path: str) -> ExperimentResult:
    """Reload a result written by :func:`save_json` (plain or ``.gz``)."""
    with _open_text(path, "r") as handle:
        return result_from_dict(json.load(handle))


# ----------------------------------------------------------------------
# CSV (one file per table)
# ----------------------------------------------------------------------
def _slug(text: str) -> str:
    """Filesystem-safe fragment of a table title."""
    cleaned = re.sub(r"[^A-Za-z0-9]+", "_", text).strip("_").lower()
    return cleaned[:60] or "table"


def save_csv(result: ExperimentResult, directory: str) -> List[str]:
    """Write each table as ``<experiment>_<k>_<title>.csv``.

    Returns the paths written.  The first column is the x axis; one
    column per series, ``nan`` for gaps -- directly loadable by any
    plotting tool.
    """
    os.makedirs(directory, exist_ok=True)
    paths = []
    for index, table in enumerate(result.tables):
        filename = (
            f"{result.experiment_id}_{index:02d}_{_slug(table.title)}.csv"
        )
        path = os.path.join(directory, filename)
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(
                [table.x_label] + [series.label for series in table.series]
            )
            for row in table.to_rows():
                writer.writerow(row)
        paths.append(path)
    return paths


# ----------------------------------------------------------------------
# Comparison
# ----------------------------------------------------------------------
def max_relative_difference(
    a: ExperimentResult, b: ExperimentResult
) -> float:
    """Largest relative gap between matching points of two results.

    Used to compare runs across scales or code versions.  Only points
    present in both results (matched by table index, series label and
    x value) are compared; returns 0.0 when nothing overlaps.
    """
    worst = 0.0
    for table_a, table_b in zip(a.tables, b.tables):
        labels_b = {series.label: series for series in table_b.series}
        for series_a in table_a.series:
            series_b = labels_b.get(series_a.label)
            if series_b is None:
                continue
            for x, y_a in series_a.points.items():
                if x not in series_b.points:
                    continue
                y_b = series_b.points[x]
                denominator = max(abs(y_a), abs(y_b), 1e-12)
                worst = max(worst, abs(y_a - y_b) / denominator)
    return worst
