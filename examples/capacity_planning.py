"""Analytical capacity planning with the M/M/c and CTMC machinery.

Answers the questions an operator of the paper's system would ask
without running a single simulation:

1. How do response-time mean/std move with offered load (eq. 2-3)?
2. What is P(RT > 10 s), the SLA's maximum acceptable response time?
3. How large must the CLTA batch be for a target false-alarm rate,
   accounting for the exact (non-normal) law of the batch mean (eq. 4)?

Run:  python examples/capacity_planning.py
"""

from repro import MMcModel, SampleMeanChain, clt_false_alarm_probability

SERVICE_RATE = 0.2
SERVERS = 16
MAX_ACCEPTABLE_RT = 10.0


def load_table() -> None:
    print("Load sweep (eq. 2-3 and the SLA tail):")
    print(f"{'load (CPUs)':>12} {'E[RT]':>8} {'sd[RT]':>8} {'P(RT>10s)':>10}")
    for load in (0.5, 2, 4, 6, 8, 10, 12, 14, 15):
        model = MMcModel.from_offered_load(load, SERVICE_RATE, SERVERS)
        tail = 1.0 - model.response_time_cdf(MAX_ACCEPTABLE_RT)
        print(
            f"{load:>12.1f} {model.response_time_mean():>8.3f} "
            f"{model.response_time_std():>8.3f} {tail:>10.4f}"
        )


def clta_design() -> None:
    model = MMcModel(arrival_rate=1.6, service_rate=SERVICE_RATE, servers=SERVERS)
    print(
        "\nCLTA design at the maximum load of interest (lambda = 1.6/s):\n"
        "exact false-alarm probability of the z = 1.96 rule vs batch size"
    )
    print(f"{'n':>4} {'threshold (s)':>14} {'exact FA':>9} {'nominal':>8}")
    for n in (5, 10, 15, 30, 60, 120):
        chain = SampleMeanChain(model, n)
        threshold = chain.normal_quantile(0.975)
        fa = chain.false_alarm_probability(0.975)
        print(f"{n:>4} {threshold:>14.3f} {fa:>9.4f} {0.025:>8.3f}")
    print(
        "\nThe skew of the response-time law inflates the real rate above "
        "the nominal 2.5 %\n(paper: 3.69 % at n=15, 3.37 % at n=30); "
        "pick n, or adjust z, from this table."
    )
    # Find the smallest n whose exact rate is within 0.5 pp of nominal.
    for n in range(15, 500, 15):
        if clt_false_alarm_probability(model, n) < 0.030:
            print(f"Smallest multiple of 15 with exact FA < 3.0 %: n = {n}")
            break


def main() -> None:
    load_table()
    clta_design()


if __name__ == "__main__":
    main()
