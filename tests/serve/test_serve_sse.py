"""Server-Sent Events end to end: campaign in, ordered stream out.

A real subscriber attaches over HTTP, a campaign is POSTed, and the
stream must deliver the hello, the job lifecycle, and the simulation's
fault/rejuvenation/SLO story in sequence order.
"""

import threading

#: Campaign small enough that the stream closes within the test budget.
CAMPAIGN = {
    "scenarios": "aging_onset",
    "policies": "SRAA",
    "replications": 1,
    "seed": 3,
    "horizon": 300,
    "slo": 1.0,
}


class TestEventStream:
    def test_hello_opens_every_stream(self, served):
        events = served.sse_events(max_events=0, timeout_s=0.2)
        assert events[0]["event"] == "sse.hello"
        assert events[0]["data"]["subscription"] >= 1

    def test_timeout_bound_closes_idle_stream(self, served):
        events = served.sse_events(max_events=5, timeout_s=0.3)
        assert len(events) == 1  # just the hello; nothing published

    def test_campaign_story_arrives_in_order(self, served):
        import queue

        # Calibration pass: a direct broker subscription counts how
        # many events this (deterministic) campaign publishes, so the
        # HTTP stream below can ask for exactly that many and close.
        calibration = served.server.broker.subscribe()
        status, payload = served.post("/api/campaigns", CAMPAIGN)
        assert status == 202
        first = served.server.jobs.wait(payload["job"]["id"], 90.0)
        assert first["status"] == "done", first["error"]
        expected = 0
        while True:
            try:
                calibration.get(timeout=0.5)
            except queue.Empty:
                break
            expected += 1
        calibration.close()
        assert expected > 0

        collected = []
        done = threading.Event()

        def subscriber():
            collected.extend(
                served.sse_events(max_events=expected, timeout_s=90.0)
            )
            done.set()

        thread = threading.Thread(target=subscriber, daemon=True)
        thread.start()
        # Give the subscriber a moment to attach before launching.
        threading.Event().wait(0.3)
        status, payload = served.post("/api/campaigns", CAMPAIGN)
        assert status == 202
        job_id = payload["job"]["id"]
        final = served.server.jobs.wait(job_id, timeout_s=90.0)
        assert final["status"] == "done", final["error"]
        assert done.wait(60.0)

        assert collected[0]["event"] == "sse.hello"
        stream = collected[1:]
        kinds = [e["event"] for e in stream]
        # Lifecycle brackets the simulation story.
        assert kinds[0] == "job.started"
        assert "job.finished" in kinds
        story = kinds[: kinds.index("job.finished")]
        assert "fault.injected" in story
        assert "system.rejuvenation" in story
        assert "flight.dump" in story  # SLO breaches under slo=1.0
        assert "live.snapshot" in kinds
        # Broker sequence numbers arrive strictly increasing.
        seqs = [e["seq"] for e in stream]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)
        # Every simulation event is tagged with the producing job.
        for event in stream:
            if event["event"] in (
                "fault.injected",
                "system.rejuvenation",
                "flight.dump",
            ):
                assert event["data"]["run"] == job_id
        # Simulated time is non-decreasing within the run's events.
        times = [
            e["data"]["ts"]
            for e in stream
            if e["event"] in ("fault.injected", "system.rejuvenation",
                              "flight.dump")
        ]
        assert times == sorted(times)

    def test_snapshot_endpoint_agrees_with_stream(self, served):
        status, payload = served.post("/api/campaigns", CAMPAIGN)
        assert status == 202
        final = served.server.jobs.wait(
            payload["job"]["id"], timeout_s=90.0
        )
        assert final["status"] == "done", final["error"]
        _, live = served.get("/api/live")
        # freeze() published the end-of-run snapshot.
        assert live["run"] == payload["job"]["id"]
        assert live["completed"] > 0
        assert live["slo_s"] == 1.0
        assert live["flight_dumps"] > 0
