"""``repro.obs.sentinel``: the continuous assurance plane.

The paper's loop -- monitor, filter, act -- runs *inside* a single
simulation.  This package closes the same loop one level up, over the
system of runs itself:

* :mod:`~repro.obs.sentinel.schedule` launches recurring campaigns from
  declarative specs (interval or cron) through the serve
  :class:`~repro.serve.jobs.JobManager`, on a jitter-free virtual clock
  so tests (and CI) drive time explicitly.
* :mod:`~repro.obs.sentinel.rules` evaluates two alert families: SLO
  burn-rate over live GK-sketch/EWMA snapshots while runs execute, and
  cross-run regression re-applying the paper's SRAA-style persistence
  filter to the Welch z-test ``repro runs check`` machinery.
* :mod:`~repro.obs.sentinel.engine` turns rule signals into incidents
  with an open/close lifecycle and full provenance.
* :mod:`~repro.obs.sentinel.alerts` is the append-only alert ledger;
  :mod:`~repro.obs.sentinel.sinks` fans incidents out to files, stdout,
  or webhooks.
* :mod:`~repro.obs.sentinel.watch` backs ``repro watch`` (one-shot
  ``--tick`` evaluation and ``--follow`` SSE tailing).

Everything is deterministic on fixed inputs: scheduler ticks are
explicit, burn-rate state is driven by simulated-time snapshots, and
incident ids/order are pinned by ``tests/obs/sentinel/``.
"""

from repro.obs.sentinel.alerts import AlertLedger
from repro.obs.sentinel.engine import AlertEngine, Incident, replay_trace
from repro.obs.sentinel.rules import (
    BurnRateRule,
    RegressionRule,
    rules_from_dict,
)
from repro.obs.sentinel.schedule import (
    CronExpr,
    ScheduleSpec,
    Scheduler,
    parse_cron,
)
from repro.obs.sentinel.sinks import (
    FileSink,
    StdoutSink,
    WebhookSink,
    sinks_from_specs,
)

__all__ = [
    "AlertEngine",
    "AlertLedger",
    "BurnRateRule",
    "CronExpr",
    "FileSink",
    "Incident",
    "RegressionRule",
    "ScheduleSpec",
    "Scheduler",
    "StdoutSink",
    "WebhookSink",
    "parse_cron",
    "replay_trace",
    "rules_from_dict",
    "sinks_from_specs",
]
