"""Documentation consistency: DESIGN.md and README.md stay truthful."""

import pathlib
import re

REPO = pathlib.Path(__file__).resolve().parent.parent


class TestDesignDocument:
    def test_every_referenced_bench_exists(self):
        design = (REPO / "DESIGN.md").read_text()
        referenced = set(re.findall(r"benchmarks/(test_bench_\w+\.py)", design))
        assert referenced, "DESIGN.md must reference bench targets"
        for name in referenced:
            assert (REPO / "benchmarks" / name).exists(), name

    def test_every_bench_is_referenced(self):
        design = (REPO / "DESIGN.md").read_text()
        on_disk = {
            path.name for path in (REPO / "benchmarks").glob("test_bench_*.py")
        }
        referenced = set(re.findall(r"benchmarks/(test_bench_\w+\.py)", design))
        assert on_disk == referenced, (
            f"unreferenced: {on_disk - referenced}; "
            f"missing: {referenced - on_disk}"
        )

    def test_per_experiment_index_matches_registry(self):
        from repro.experiments.registry import experiment_ids

        design = (REPO / "DESIGN.md").read_text()
        for eid in experiment_ids():
            assert eid in design, f"experiment {eid} missing from DESIGN.md"

    def test_paper_confirmation_present(self):
        design = (REPO / "DESIGN.md").read_text()
        assert "no title collision" in design


class TestReadme:
    def test_every_listed_example_exists(self):
        readme = (REPO / "README.md").read_text()
        referenced = set(re.findall(r"examples/(\w+\.py)", readme))
        assert referenced
        for name in referenced:
            assert (REPO / "examples" / name).exists(), name

    def test_every_example_is_listed(self):
        readme = (REPO / "README.md").read_text()
        on_disk = {path.name for path in (REPO / "examples").glob("*.py")}
        referenced = set(re.findall(r"examples/(\w+\.py)", readme))
        assert on_disk == referenced, (
            f"unlisted: {on_disk - referenced}; stale: {referenced - on_disk}"
        )

    def test_quoted_fidelity_numbers_match_paper_values(self):
        # The README quotes the paper's 11.94/10.5 and our 11.98/10.10.
        readme = (REPO / "README.md").read_text()
        for token in ("11.94", "11.98", "3.69", "3.37"):
            assert token in readme


class TestExperimentsDocument:
    def test_divergences_sectioned(self):
        experiments = (REPO / "EXPERIMENTS.md").read_text()
        assert "D1" in experiments
        assert "D2" in experiments
        assert "Divergences" in experiments

    def test_every_registered_experiment_has_a_command(self):
        experiments = (REPO / "EXPERIMENTS.md").read_text()
        assert "repro run all" in experiments
        assert "repro run fidelity" in experiments
