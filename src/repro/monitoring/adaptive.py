"""On-line SLO tracking (the conclusion's "real-time estimation").

The paper closes with: "we plan to consider statistical estimation
techniques to determine optimal algorithm parameters in real-time."
:class:`AdaptiveSLO` is the estimation primitive that programme needs: an
exponentially weighted moving estimate of the metric's mean and standard
deviation that *freezes while the system looks degraded*, so the
baseline is learned from healthy traffic only and does not chase the
degradation it exists to detect.

The guard is self-referential by design: a sample is folded into the
estimate only if it lies within ``guard_sigmas`` standard deviations of
the current mean (one-sided -- low values are always healthy for a
response time).  This is the standard EWMA-with-clamping construction
from statistical process control.
"""

from __future__ import annotations

import math

from repro.core.sla import ServiceLevelObjective


class AdaptiveSLO:
    """EWMA estimate of (mu_X, sigma_X) that ignores degraded samples.

    Parameters
    ----------
    initial:
        Starting SLO (e.g. from offline calibration).
    alpha:
        EWMA weight of each new healthy sample (small = slow drift;
        the estimate fluctuates around the true mean with standard
        deviation ``sigma * sqrt(alpha / (2 - alpha))``).
    guard_sigmas:
        Samples above ``mean + guard_sigmas * std`` are considered
        degraded and not learned from.  Keep this generous for
        right-skewed metrics: a tight guard truncates the healthy
        tail and biases the estimate low.  The default (8) rejects a
        10x degradation while truncating less than 0.05 % of an
        exponential's mass.

    Examples
    --------
    >>> from repro.core.sla import ServiceLevelObjective
    >>> slo = AdaptiveSLO(ServiceLevelObjective(5.0, 5.0), alpha=0.05)
    >>> for _ in range(200):
    ...     slo.update(6.0)       # the healthy mean drifted to 6
    >>> 5.5 < slo.current().mean < 6.5
    True
    >>> slo.update(500.0)         # a degraded sample is not absorbed
    False
    """

    def __init__(
        self,
        initial: ServiceLevelObjective,
        alpha: float = 0.01,
        guard_sigmas: float = 8.0,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must lie in (0, 1]")
        if guard_sigmas <= 0:
            raise ValueError("guard must be positive")
        self.alpha = float(alpha)
        self.guard_sigmas = float(guard_sigmas)
        self._mean = initial.mean
        self._variance = initial.std ** 2
        self.accepted = 0
        self.rejected = 0

    def update(self, value: float) -> bool:
        """Fold one sample in; return whether it was accepted as healthy."""
        guard = self._mean + self.guard_sigmas * math.sqrt(self._variance)
        if value > guard:
            self.rejected += 1
            return False
        delta = value - self._mean
        self._mean += self.alpha * delta
        # EWMA of the squared deviation around the updated mean.
        self._variance = (1.0 - self.alpha) * (
            self._variance + self.alpha * delta * delta
        )
        self.accepted += 1
        return True

    def current(self) -> ServiceLevelObjective:
        """The present estimate as an immutable SLO."""
        return ServiceLevelObjective(
            mean=self._mean, std=math.sqrt(max(self._variance, 0.0))
        )

    @property
    def rejection_fraction(self) -> float:
        """Fraction of samples the guard classified as degraded."""
        total = self.accepted + self.rejected
        if total == 0:
            return 0.0
        return self.rejected / total
