"""The P-squared streaming quantile estimator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.quantiles import P2Quantile


def estimate(values, q):
    estimator = P2Quantile(q)
    for value in values:
        estimator.update(float(value))
    return estimator.value()


class TestAccuracy:
    @pytest.mark.parametrize("q", [0.1, 0.5, 0.9, 0.95, 0.99])
    def test_normal_stream(self, q):
        rng = np.random.default_rng(0)
        values = rng.normal(10.0, 2.0, size=50_000)
        exact = float(np.quantile(values, q))
        assert estimate(values, q) == pytest.approx(exact, abs=0.15)

    @pytest.mark.parametrize("q", [0.5, 0.9, 0.95])
    def test_exponential_stream(self, q):
        # Right-skewed, like response times.
        rng = np.random.default_rng(1)
        values = rng.exponential(5.0, size=50_000)
        exact = float(np.quantile(values, q))
        assert estimate(values, q) == pytest.approx(exact, rel=0.05)

    def test_uniform_stream(self):
        rng = np.random.default_rng(2)
        values = rng.uniform(0.0, 1.0, size=30_000)
        assert estimate(values, 0.75) == pytest.approx(0.75, abs=0.02)

    def test_shifted_stream_tracks_up(self):
        rng = np.random.default_rng(3)
        estimator = P2Quantile(0.9)
        for value in rng.exponential(5.0, size=5_000):
            estimator.update(float(value))
        before = estimator.value()
        for value in rng.exponential(20.0, size=20_000):
            estimator.update(float(value))
        assert estimator.value() > before * 1.5


class TestSmallSamples:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            P2Quantile(0.5).value()

    def test_fewer_than_five_uses_order_statistic(self):
        estimator = P2Quantile(0.5)
        for value in (3.0, 1.0, 2.0):
            estimator.update(value)
        assert estimator.value() == 2.0

    def test_exactly_five(self):
        estimator = P2Quantile(0.5)
        for value in (5.0, 1.0, 4.0, 2.0, 3.0):
            estimator.update(value)
        assert estimator.value() == 3.0

    def test_count_tracks_updates(self):
        estimator = P2Quantile(0.9)
        for i in range(12):
            estimator.update(float(i))
        assert estimator.count == 12


class TestEdgeCases:
    def test_single_sample(self):
        estimator = P2Quantile(0.9)
        estimator.update(7.5)
        assert estimator.value() == 7.5

    def test_all_ties_before_initialisation(self):
        estimator = P2Quantile(0.5)
        for _ in range(4):
            estimator.update(3.0)
        assert estimator.value() == 3.0

    def test_all_ties_long_stream(self):
        # Constant streams exercise the degenerate-marker paths: every
        # parabolic denominator term is zero-height.
        estimator = P2Quantile(0.95)
        for _ in range(1_000):
            estimator.update(42.0)
        assert estimator.value() == 42.0

    def test_heavy_ties(self):
        # Two-valued stream: the quantile must land on a data value.
        estimator = P2Quantile(0.5)
        for i in range(2_000):
            estimator.update(1.0 if i % 4 else 9.0)
        assert 1.0 <= estimator.value() <= 9.0

    def test_infinity_rejected(self):
        with pytest.raises(ValueError):
            P2Quantile(0.5).update(float("inf"))


class TestLifecycle:
    def test_reset(self):
        estimator = P2Quantile(0.9)
        for i in range(100):
            estimator.update(float(i))
        estimator.reset()
        assert estimator.count == 0
        with pytest.raises(ValueError):
            estimator.value()

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            P2Quantile(0.5).update(float("nan"))

    def test_quantile_validation(self):
        for bad in (0.0, 1.0, -0.1):
            with pytest.raises(ValueError):
                P2Quantile(bad)

    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6),
            min_size=5,
            max_size=300,
        ),
        st.sampled_from([0.25, 0.5, 0.9]),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_estimate_within_observed_range(self, values, q):
        result = estimate(values, q)
        assert min(values) <= result <= max(values)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_property_monotone_stream_estimate_reasonable(self, seed):
        rng = np.random.default_rng(seed)
        values = np.sort(rng.uniform(0, 100, size=500))
        rng.shuffle(values)
        result = estimate(values, 0.5)
        exact = float(np.quantile(values, 0.5))
        assert result == pytest.approx(exact, abs=12.0)
