"""Sentinel overhead: alert rules on the broker must not tax the run.

The ISSUE acceptance bound: a served simulation with the alert engine
evaluating burn-rate rules against every ``live.snapshot`` (plus run
start/end bookkeeping) must stay within 10% of the same served
simulation with no rules configured.  Both sides carry the full
serving stack -- ``ServeTap`` publishing into a live broker with the
HTTP server up -- so the ratio isolates the sentinel itself: rule
evaluation, window maintenance, and incident bookkeeping on the
broker's tap path.

Methodology follows ``test_bench_serve_overhead``: each round times
unwatched and watched back-to-back and the acceptance pin takes the
**best paired round** (the quietest-machine bound on the systematic
overhead) with a small absolute slack against timer quantisation.

The workload is healthy against a generous SLO -- essentially no
completion misses it -- so the run doubles as the false-alarm pin: the engine must evaluate the
whole campaign without opening a single incident.
"""

import time

from conftest import BENCH_SEED, bench_scale

from repro.core.spec import PolicySpec
from repro.ecommerce.config import PAPER_CONFIG
from repro.ecommerce.runner import run_replications
from repro.ecommerce.spec import ArrivalSpec
from repro.obs.ledger import record_bench_point
from repro.obs.live import RecorderSpec
from repro.serve import ReproServer, ServeSpec

#: Paired unwatched/watched rounds; the pin takes the quietest pair.
ROUNDS = 7

#: The acceptance bound: watched vs unwatched serving.
OVERHEAD_FACTOR = 1.10

#: Absolute slack (s): sub-100ms baselines are dominated by noise.
ABSOLUTE_SLACK_S = 0.015

#: Completions between live.snapshot publishes -- denser than the
#: serve default so the engine evaluates often enough to matter.
SNAPSHOT_EVERY = 500

#: Burn-rate rules the watched server evaluates on every snapshot.
#: The 120s SLO matches the recorder's and sits far above the
#: workload's response-time tail, so any incident is a false alarm.
RULES = {
    "burn_rate": [
        {
            "name": "bench-slo",
            "slo_s": 120.0,
            "objective": 0.9,
            "factor": 2.0,
            "long_window_s": 600.0,
            "short_window_s": 120.0,
            "min_count": 50,
        }
    ]
}


def _workload(server):
    scale = bench_scale()
    n = max(10_000, scale.transactions // 2)
    spec = ServeSpec(
        recorder=RecorderSpec(slo_s=120.0),
        broker=server.broker,
        run_tag="bench",
        snapshot_every=SNAPSHOT_EVERY,
    )
    return run_replications(
        PAPER_CONFIG,
        arrival=ArrivalSpec.poisson(1.8),
        policy=PolicySpec.sraa(2, 5, 3),
        n_transactions=n,
        replications=2,
        seed=BENCH_SEED,
        live=spec,
    )


def _timed(fn):
    started = time.perf_counter()
    result = fn()
    return time.perf_counter() - started, result


def _result_key(run):
    return (
        run.arrivals,
        run.completed,
        run.lost,
        run.avg_response_time,
        run.loss_fraction,
        run.rejuvenations,
        run.rejuvenation_times,
    )


def test_sentinel_overhead(benchmark):
    plain = ReproServer(port=0).start()
    watched = ReproServer(port=0, rules=RULES).start()

    try:
        # Warm-up outside the timings (imports, allocator, sockets).
        _workload(plain)
        _workload(watched)

        pairs = []
        for _ in range(ROUNDS):
            base_s, base_result = _timed(lambda: _workload(plain))
            watched_s, watched_result = _timed(
                lambda: _workload(watched)
            )
            pairs.append((base_s, watched_s))
        base_s, watched_s = min(
            pairs, key=lambda pair: pair[1] / pair[0]
        )

        # Watching must not perturb the simulation: bit-identical runs.
        assert [_result_key(r) for r in watched_result.runs] == [
            _result_key(r) for r in base_result.runs
        ]
        # The engine really evaluated the stream: the burn rule built
        # per-target windows from the snapshots it saw.
        rule = watched.sentinel.rules[0]
        assert rule._windows, "no snapshots reached the sentinel"
        # ... and a healthy campaign stays alarm-free, end to end.
        assert watched.sentinel.open_count == 0
        assert watched.sentinel.incidents() == []
    finally:
        plain.close()
        watched.close()

    overhead = watched_s / base_s if base_s else float("nan")
    benchmark.extra_info["unwatched_s"] = round(base_s, 4)
    benchmark.extra_info["watched_s"] = round(watched_s, 4)
    benchmark.extra_info["sentinel_overhead_factor"] = round(overhead, 4)
    print(
        f"\nbest pair of {ROUNDS}: served {base_s:.3f}s, "
        f"served+sentinel {watched_s:.3f}s ({overhead:.2%} of "
        "baseline); zero incidents on the healthy campaign"
    )
    record_bench_point(
        f"sentinel_{bench_scale().label}",
        round(overhead, 4),
        units="x",
        seed=BENCH_SEED,
    )

    # The acceptance pin: rule evaluation within 10% of rule-free
    # serving on the quietest paired round.
    bound = base_s * OVERHEAD_FACTOR + ABSOLUTE_SLACK_S
    assert watched_s <= bound, (
        f"sentinel costs {watched_s:.3f}s vs unwatched {base_s:.3f}s "
        f"on the quietest of {ROUNDS} paired rounds -- beyond the 10% "
        "acceptance bound"
    )

    # Keep pytest-benchmark's timing machinery fed with the cheap path.
    benchmark.pedantic(time.sleep, args=(0.0,), rounds=1, iterations=1)
