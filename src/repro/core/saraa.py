"""SARAA -- sampling-acceleration rejuvenation with averaging (Fig. 7).

SARAA changes two things relative to SRAA:

1. **Paradigm.**  Targets use the standard error of the batch mean,
   ``mu_X + N * sigma_X / sqrt(n)``: the rule tries to *falsify the
   hypothesis that the distribution has not shifted at all*, rather than
   to verify a shift of a specific size.
2. **Acceleration.**  Whenever the bucket level changes, the batch size
   is recomputed with the paper's linear schedule

       n = floor(1 + (n_orig - 1) * (1 - N / K))

   so that deeper degradation is confirmed from fewer samples -- the time
   to gather a batch is proportional to ``n``, so the time to trigger
   shrinks exactly when the system is getting worse.  After a trigger the
   batch size returns to ``n_orig``.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from repro.core.base import BatchBuffer, RejuvenationPolicy
from repro.core.buckets import BucketChain, Transition
from repro.core.sla import ServiceLevelObjective


def linear_acceleration(n_orig: int, level: int, n_buckets: int) -> int:
    """The paper's batch-size schedule: linear in ``N/K``, floored, >= 1."""
    if n_orig < 1:
        raise ValueError("original sample size must be >= 1")
    if not 0 <= level <= n_buckets:
        raise ValueError("bucket level out of range")
    return math.floor(1 + (n_orig - 1) * (1 - level / n_buckets))


def no_acceleration(n_orig: int, level: int, n_buckets: int) -> int:
    """Ablation schedule: keep ``n = n_orig`` at every level."""
    return n_orig


def geometric_acceleration(n_orig: int, level: int, n_buckets: int) -> int:
    """Ablation schedule: halve the batch size per level (floor at 1)."""
    return max(1, n_orig >> level)


class SARAA(RejuvenationPolicy):
    """Sampling-acceleration rejuvenation with averaging.

    Parameters
    ----------
    slo:
        Healthy-behaviour mean and standard deviation.
    sample_size:
        ``n_orig`` -- the batch size used at bucket 0 (and after reset).
    n_buckets, depth:
        ``K`` and ``D`` as in SRAA.
    schedule:
        Batch-size schedule ``(n_orig, level, K) -> n``; defaults to the
        paper's :func:`linear_acceleration`.  Alternatives are provided
        for the ablation benchmarks.
    carry_partial:
        Whether observations already gathered survive a batch resize
        (the paper's pseudo-code discards them; default ``False``).
    """

    name = "saraa"

    def __init__(
        self,
        slo: ServiceLevelObjective,
        sample_size: int,
        n_buckets: int,
        depth: int,
        schedule: Optional[Callable[[int, int, int], int]] = None,
        carry_partial: bool = False,
    ) -> None:
        if sample_size < 1:
            raise ValueError("sample size must be >= 1")
        self.slo = slo
        self.original_sample_size = int(sample_size)
        self.schedule = schedule if schedule is not None else linear_acceleration
        self.carry_partial = bool(carry_partial)
        self.chain = BucketChain(n_buckets=n_buckets, depth=depth)
        self.current_sample_size = self.schedule(
            self.original_sample_size, 0, self.chain.n_buckets
        )
        self.buffer = BatchBuffer(self.current_sample_size)

    # ------------------------------------------------------------------
    @property
    def level(self) -> int:
        """Current bucket index ``N``."""
        return self.chain.level

    def current_target(self) -> float:
        """Active threshold ``mu_X + N * sigma_X / sqrt(n_current)``."""
        return self.slo.sampling_threshold(
            self.chain.level, self.current_sample_size
        )

    def _apply_schedule(self) -> None:
        new_size = self.schedule(
            self.original_sample_size, self.chain.level, self.chain.n_buckets
        )
        if new_size != self.current_sample_size:
            old_size = self.current_sample_size
            self.current_sample_size = new_size
            self.buffer.resize(new_size, carry_partial=self.carry_partial)
            if self._listener is not None:
                self._listener.on_resize(
                    self, old_size, new_size, self.chain.level
                )

    def observe(self, value: float) -> bool:
        """Feed one raw observation; decide on each completed batch mean."""
        batch_mean = self.buffer.push(value)
        if batch_mean is None:
            return False
        target = self.current_target()
        exceeded = batch_mean > target
        sample_size = self.current_sample_size
        level_before = self.chain.level
        transition = self.chain.record(exceeded)
        listener = self._listener
        if listener is not None and listener.wants_batches:
            listener.on_batch(self, batch_mean, target, sample_size, exceeded)
        if transition is Transition.TRIGGER:
            self.current_sample_size = self.schedule(
                self.original_sample_size, 0, self.chain.n_buckets
            )
            self.buffer.resize(self.current_sample_size, carry_partial=False)
            self.buffer.clear()
            if listener is not None:
                listener.on_trigger(
                    self, batch_mean, target, level_before, sample_size
                )
            return True
        if transition in (Transition.LEVEL_UP, Transition.LEVEL_DOWN):
            # Resize first so the transition event reports the target
            # that is actually active at the new level (new batch size).
            self._apply_schedule()
            if listener is not None:
                listener.on_transition(
                    self,
                    "up" if transition is Transition.LEVEL_UP else "down",
                    self.chain.level,
                    self.chain.fill,
                    self.current_target(),
                )
        return False

    def reset(self) -> None:
        """Forget buckets, partial batch, and acceleration state."""
        self.chain.reset()
        self.current_sample_size = self.schedule(
            self.original_sample_size, 0, self.chain.n_buckets
        )
        self.buffer.resize(self.current_sample_size, carry_partial=False)
        self.buffer.clear()
        if self._listener is not None:
            self._listener.on_reset(self)

    def describe(self) -> str:
        return (
            f"SARAA(n_orig={self.original_sample_size}, "
            f"K={self.chain.n_buckets}, D={self.chain.depth})"
        )
