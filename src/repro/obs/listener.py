"""Bridges a policy's :class:`~repro.core.base.DecisionListener` hooks
to structured trace events.

The core package knows nothing about tracing: policies call the
listener hooks, and this adapter turns each call into a
:class:`~repro.obs.events.TraceEvent` stamped with the owning
simulation's clock.  Every batch decision gets a per-policy sequence
number (``seq``); a trigger event carries ``batch_seq`` naming the
batch decision that caused it, so offline tools (``repro explain``,
the round-trip tests) can join a trigger back to the exact comparison
-- bucket index, batch mean, threshold, sample size -- that fired it.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.core.base import DecisionListener, RejuvenationPolicy
from repro.obs.events import (
    POLICY_BATCH,
    POLICY_LEVEL,
    POLICY_RESET,
    POLICY_RESIZE,
    POLICY_TRIGGER,
)
from repro.obs.tracer import Tracer


def policy_source(policy: RejuvenationPolicy) -> str:
    """The trace ``source`` string for a policy (``policy:<name>``)."""
    return f"policy:{policy.name}"


class TracingDecisionListener(DecisionListener):
    """Records every policy decision as a trace event.

    Parameters
    ----------
    tracer:
        Destination buffer; events are only built when
        ``tracer.decisions`` is on.
    clock:
        Zero-argument callable returning the current simulated time --
        typically ``lambda: sim.now``.  Policies are clock-free, so the
        component that owns both the policy and the simulator supplies
        it; offline users can pass an observation counter instead.
    """

    def __init__(self, tracer: Tracer, clock: Callable[[], float]) -> None:
        self.tracer = tracer
        self.clock = clock
        #: Batch decisions seen so far, per policy source.
        self._batch_seq: Dict[str, int] = {}
        # Mirror the sink's appetite so policies skip the per-batch
        # hook call entirely (one Python call per batch adds up: the
        # always-on flight tap declines the lifecycle microscope).
        self.wants_batches = bool(
            tracer.decisions and getattr(tracer, "lifecycle", True)
        )

    def _next_seq(self, source: str) -> int:
        seq = self._batch_seq.get(source, 0) + 1
        self._batch_seq[source] = seq
        return seq

    # ------------------------------------------------------------------
    # DecisionListener hooks
    # ------------------------------------------------------------------
    def on_batch(
        self,
        policy: RejuvenationPolicy,
        batch_mean: float,
        target: float,
        sample_size: int,
        exceeded: bool,
    ) -> None:
        # Batch comparisons are the per-batch microscope (one event
        # every ``sample_size`` completions); like the request
        # lifecycle spans they are only built for sinks that asked for
        # lifecycle detail -- the always-on live tap does not.
        tracer = self.tracer
        if not tracer.decisions or not getattr(tracer, "lifecycle", True):
            return
        source = policy_source(policy)
        tracer.emit(
            self.clock(),
            POLICY_BATCH,
            source,
            seq=self._next_seq(source),
            batch_mean=batch_mean,
            target=target,
            sample_size=sample_size,
            exceeded=exceeded,
            level=getattr(policy, "level", 0),
            fill=getattr(getattr(policy, "chain", None), "fill", 0),
        )

    def on_transition(
        self,
        policy: RejuvenationPolicy,
        direction: str,
        level: int,
        fill: int,
        target: float,
    ) -> None:
        tracer = self.tracer
        if not tracer.decisions:
            return
        tracer.emit(
            self.clock(),
            POLICY_LEVEL,
            policy_source(policy),
            direction=direction,
            level=level,
            fill=fill,
            target=target,
        )

    def on_trigger(
        self,
        policy: RejuvenationPolicy,
        batch_mean: float,
        threshold: float,
        level: int,
        sample_size: int,
    ) -> None:
        tracer = self.tracer
        if not tracer.decisions:
            return
        source = policy_source(policy)
        tracer.emit(
            self.clock(),
            POLICY_TRIGGER,
            source,
            batch_seq=self._batch_seq.get(source, 0),
            batch_mean=batch_mean,
            threshold=threshold,
            level=level,
            sample_size=sample_size,
        )

    def on_trigger_cause(self, policy: RejuvenationPolicy, cause) -> None:
        # Free-form causes (the repro.detect family) are recorded
        # verbatim: the trigger event carries whatever evidence the
        # detector decided on -- entropy/reference, projection/bound --
        # and ``repro explain`` renders unknown shapes generically.
        tracer = self.tracer
        if not tracer.decisions:
            return
        source = policy_source(policy)
        tracer.emit(
            self.clock(),
            POLICY_TRIGGER,
            source,
            batch_seq=self._batch_seq.get(source, 0),
            **dict(cause),
        )

    def on_resize(
        self,
        policy: RejuvenationPolicy,
        old_size: int,
        new_size: int,
        level: int,
    ) -> None:
        tracer = self.tracer
        if not tracer.decisions:
            return
        tracer.emit(
            self.clock(),
            POLICY_RESIZE,
            policy_source(policy),
            old_size=old_size,
            new_size=new_size,
            level=level,
        )

    def on_reset(self, policy: RejuvenationPolicy) -> None:
        tracer = self.tracer
        if not tracer.decisions:
            return
        tracer.emit(self.clock(), POLICY_RESET, policy_source(policy))
