"""The flight recorder: bounded forensics for unbounded runs.

Full tracing of a long run is expensive (every DES event buffered);
no tracing leaves an incident unexplainable.  The flight recorder is
the aviation compromise: an always-on ring buffer of the most recent
trace events, plus *severity-triggered dumps* -- when something worth
explaining happens (a rejuvenation, an injected fault, an SLO breach),
the ring is snapshotted into a :class:`FlightDump` so the run ends with
"the last N events before each incident" at O(capacity) memory,
whatever the horizon.

The recorder is driven by the same emit stream as a
:class:`~repro.obs.tracer.Tracer` (the :class:`~repro.obs.live.LiveTap`
tees events into it), and its dumps ride back from pool workers on
``RunResult.flight`` -- picklable, deterministic, submission-ordered.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.obs.events import (
    FAULT_INJECTED,
    REQUEST_COMPLETE,
    SYSTEM_REJUVENATION,
    TraceEvent,
)

#: Event types that dump the ring by default (severity triggers).
DEFAULT_TRIGGERS: Tuple[str, ...] = (SYSTEM_REJUVENATION, FAULT_INJECTED)


@dataclass(frozen=True)
class RecorderSpec:
    """Picklable flight-recorder configuration (rides on the job).

    Parameters
    ----------
    capacity:
        Ring size in events -- the "last N events" each dump carries.
    triggers:
        Event types whose arrival dumps the ring.
    slo_s:
        Optional response-time SLO in seconds; a ``request.complete``
        whose ``response_time`` exceeds it is a breach and dumps the
        ring (subject to the cooldown).
    cooldown_s:
        Minimum simulated seconds between dumps; incidents inside the
        window ride in the *next* dump's ring instead of spamming.
    max_dumps:
        Hard cap on dumps per run (memory stays bounded even under a
        pathological incident storm).
    """

    capacity: int = 512
    triggers: Tuple[str, ...] = DEFAULT_TRIGGERS
    slo_s: Optional[float] = None
    cooldown_s: float = 60.0
    max_dumps: int = 16

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("ring capacity must be >= 1")
        if self.cooldown_s < 0.0:
            raise ValueError("cooldown must be non-negative")
        if self.max_dumps < 1:
            raise ValueError("need room for at least one dump")

    def build(self) -> "FlightRecorder":
        """A fresh recorder for one replication."""
        return FlightRecorder(self)


@dataclass(frozen=True)
class FlightDump:
    """One severity-triggered snapshot of the ring.

    ``reason`` names the trigger (the event type, or ``slo_breach``),
    ``ts`` is the simulated time of the triggering event, and
    ``records`` the ring contents at that moment as raw
    ``(ts, etype, source, data)`` tuples, oldest first (the triggering
    event is the last entry).  Snapshotting must be cheap -- a dump can
    fire mid-run on the hot path -- so :class:`TraceEvent` objects are
    only materialised on demand via :attr:`events`.
    """

    reason: str
    ts: float
    records: Tuple[Tuple[float, str, str, Dict[str, Any]], ...]

    @property
    def events(self) -> Tuple[TraceEvent, ...]:
        """The ring contents as :class:`TraceEvent` objects."""
        return tuple(
            TraceEvent(ts, etype, source, data)
            for ts, etype, source, data in self.records
        )

    def to_dict(self) -> Dict[str, Any]:
        """The JSONL representation (one object per dump)."""
        return {
            "reason": self.reason,
            "ts": self.ts,
            "events": [
                {"ts": ts, "type": etype, "source": source,
                 "data": dict(data)}
                for ts, etype, source, data in self.records
            ],
        }


class FlightRecorder:
    """Bounded ring of recent trace events with triggered dumps.

    Examples
    --------
    >>> recorder = RecorderSpec(capacity=4, cooldown_s=0.0).build()
    >>> for i in range(10):
    ...     recorder.push(TraceEvent(float(i), "request.complete",
    ...                              "system", {"response_time": 1.0}))
    >>> recorder.push(TraceEvent(10.0, "system.rejuvenation", "node0",
    ...                          {"lost": 3}))
    >>> [d.reason for d in recorder.dumps]
    ['system.rejuvenation']
    >>> len(recorder.dumps[0].events)
    4
    """

    __slots__ = (
        "spec",
        "_ring",
        "_append",
        "dumps",
        "_last_dump_ts",
        "dropped",
        "_triggers",
        "_slo",
    )

    def __init__(self, spec: RecorderSpec) -> None:
        self.spec = spec
        #: The hot-path ring holds raw ``(ts, etype, source, data)``
        #: tuples; :class:`TraceEvent` objects are materialised only
        #: when a dump fires (rare, bounded) -- an allocation per event
        #: here would dominate the recorder's cost.
        self._ring: Deque[Tuple[float, str, str, Dict[str, Any]]] = (
            deque(maxlen=spec.capacity)
        )
        #: Pre-bound append (``deque.clear`` keeps the object alive, so
        #: the binding survives :meth:`clear`).
        self._append = self._ring.append
        self.dumps: List[FlightDump] = []
        self._last_dump_ts: Optional[float] = None
        #: Dump requests suppressed by the cooldown or the dump cap.
        self.dropped = 0
        self._triggers = frozenset(spec.triggers)
        self._slo = spec.slo_s

    def record(
        self, ts: float, etype: str, source: str, data: Dict[str, Any]
    ) -> None:
        """Record one event (hot path: a tuple append + set lookup)."""
        self._append((ts, etype, source, data))
        if etype in self._triggers:
            self._dump(etype, ts)
        elif (
            self._slo is not None
            and etype == REQUEST_COMPLETE
            and data.get("response_time", 0.0) > self._slo
        ):
            self._dump("slo_breach", ts)

    def push(self, event: TraceEvent) -> None:
        """Record one :class:`TraceEvent` (convenience wrapper)."""
        self.record(event.ts, event.etype, event.source, event.data)

    def _dump(self, reason: str, ts: float) -> None:
        last = self._last_dump_ts
        if last is not None and ts - last < self.spec.cooldown_s:
            self.dropped += 1
            return
        if len(self.dumps) >= self.spec.max_dumps:
            self.dropped += 1
            return
        self._last_dump_ts = ts
        # One tuple() over the deque: the event payload dicts are
        # frames' keyword dicts, owned by the emit stream and never
        # mutated afterwards, so sharing them is safe (the buffering
        # Tracer relies on the same contract).
        self.dumps.append(
            FlightDump(reason=reason, ts=ts, records=tuple(self._ring))
        )

    @property
    def ring(self) -> Tuple[TraceEvent, ...]:
        """The current ring contents as events, oldest first."""
        return tuple(
            TraceEvent(ts, etype, source, data)
            for ts, etype, source, data in self._ring
        )

    def clear(self) -> None:
        """Forget the ring and all dumps (a fresh run starts clean)."""
        self._ring.clear()
        self.dumps.clear()
        self._last_dump_ts = None
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._ring)


def write_flight_jsonl(path: str, dumps_per_run) -> int:
    """Write dumps of many runs as JSONL; returns the line count.

    Each line is one dump with its ``run`` index added --
    ``{"run": i, "reason": ..., "ts": ..., "events": [...]}`` -- in job
    submission order, so the file is bit-identical across backends.
    """
    import json

    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for run_index, dumps in enumerate(dumps_per_run):
            for dump in dumps or ():
                record = {"run": run_index}
                record.update(dump.to_dict())
                handle.write(json.dumps(record, separators=(",", ":")))
                handle.write("\n")
                count += 1
    return count
