"""Regression pins on the seeding protocol.

The replication and sweep seed derivations are a compatibility surface:
published numbers (EXPERIMENTS.md) were produced under them, and the
common-random-numbers property of the sweeps depends on them.  These
tests pin the exact derivations so a refactor cannot silently change
every experiment's stream assignment.
"""

from repro.core.spec import PolicySpec
from repro.ecommerce.config import PAPER_CONFIG
from repro.ecommerce.runner import replication_jobs
from repro.ecommerce.spec import ArrivalSpec
from repro.experiments.scale import Scale
from repro.experiments.sweep import sraa_config, sweep_jobs

ARRIVAL = ArrivalSpec.poisson(PAPER_CONFIG.arrival_rate_for_load(6.0))


class TestReplicationSeeds:
    def test_replication_i_uses_seed_plus_i(self):
        jobs = replication_jobs(
            PAPER_CONFIG,
            ARRIVAL,
            PolicySpec.sraa(2, 5, 3),
            n_transactions=100,
            replications=5,
            seed=37,
        )
        assert [job.seed for job in jobs] == [37, 38, 39, 40, 41]
        assert [job.tag for job in jobs] == [
            ("replication", i) for i in range(5)
        ]


class TestSweepSeeds:
    SCALE = Scale(
        transactions=100, replications=3, loads=(0.5, 6.0, 9.0), label="tiny"
    )

    def test_seed_is_master_plus_1000_load_index_plus_replication(self):
        jobs = sweep_jobs([sraa_config(2, 5, 3)], self.SCALE, seed=10)
        assert [job.seed for job in jobs] == [
            10, 11, 12,            # load 0.5  (index 0)
            1010, 1011, 1012,      # load 6.0  (index 1)
            2010, 2011, 2012,      # load 9.0  (index 2)
        ]

    def test_common_random_numbers_across_configs(self):
        # Every configuration sees the same seed at the same grid cell,
        # so curve differences reflect policies, not draws.
        configs = [sraa_config(2, 5, 3), sraa_config(5, 3, 1)]
        jobs = sweep_jobs(configs, self.SCALE, seed=10)
        per_config = len(self.SCALE.loads) * self.SCALE.replications
        first = [job.seed for job in jobs[:per_config]]
        second = [job.seed for job in jobs[per_config:]]
        assert first == second

    def test_grid_order_is_config_load_replication(self):
        jobs = sweep_jobs([sraa_config(2, 5, 3)], self.SCALE, seed=0)
        assert [job.tag for job in jobs] == [
            ("(n=2, K=5, D=3)", load, i)
            for load in self.SCALE.loads
            for i in range(self.SCALE.replications)
        ]

    def test_arrival_rate_matches_load(self):
        jobs = sweep_jobs([sraa_config(2, 5, 3)], self.SCALE, seed=0)
        for job in jobs:
            load = job.tag[1]
            expected = PAPER_CONFIG.arrival_rate_for_load(load)
            assert job.arrival.params["rate"] == expected
