"""E7/E8 -- Figures 12 and 13: SRAA with the bucket depth doubled."""

from conftest import (
    BENCH_SEED,
    assertions_enabled,
    bench_scale,
    high_loads,
    low_loads,
    regenerate,
    series_mean,
)
from repro.experiments.registry import run_experiment

#: Configurations Section 5.3 singles out as losing nothing at 0.5 CPUs.
NEGLIGIBLE_LOSS = ["(n=1, K=3, D=10)", "(n=1, K=5, D=6)", "(n=5, K=3, D=2)"]
#: ... and as showing measurable low-load loss.
MEASURABLE_LOSS = ["(n=3, K=1, D=10)", "(n=5, K=1, D=6)", "(n=15, K=1, D=2)"]

#: Matched (n-doubled, D-doubled) pairs sharing the Fig. 9 base config.
N_VS_D_PAIRS = [
    ("(n=30, K=1, D=1)", "(n=15, K=1, D=2)"),
    ("(n=6, K=5, D=1)", "(n=3, K=5, D=2)"),
    ("(n=10, K=3, D=1)", "(n=5, K=3, D=2)"),
]


def test_fig12_13_depth_doubled(benchmark):
    result = regenerate(benchmark, "fig12_13")
    if not assertions_enabled():
        return
    rt, loss = result.tables
    lows = low_loads(loss)
    # Fig. 13: multi-bucket deep configurations lose nothing at low
    # loads; K=1 configurations lose measurably.
    for label in NEGLIGIBLE_LOSS:
        assert series_mean(loss.get_series(label), lows) < 0.002
    measurable = [
        series_mean(loss.get_series(label), lows) for label in MEASURABLE_LOSS
    ]
    assert max(measurable) > 0.002
    # Fig. 12 vs Fig. 11: doubling D hurts high-load RT less than
    # doubling n, on the matched configuration pairs (majority vote).
    sample_doubled = run_experiment("fig11", bench_scale(), seed=BENCH_SEED)
    n_rt = sample_doubled.tables[0]
    highs = high_loads(rt)
    gentler = sum(
        series_mean(rt.get_series(d_label), highs)
        <= series_mean(n_rt.get_series(n_label), highs)
        for n_label, d_label in N_VS_D_PAIRS
    )
    assert gentler >= 2
