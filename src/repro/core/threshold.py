"""Single-threshold baselines after Bobbio, Sereno & Anglano (2001).

The related-work section describes two policies built on a maximum
degradation threshold:

* a **deterministic** policy -- rejuvenate as soon as the monitored
  metric crosses the threshold (the policy the paper's multi-bucket
  approach generalises);
* a **risk-based** policy -- rejuvenate with a probability proportional
  to a confidence level that grows with the degradation.

Both are implemented here as baselines so the evaluation can show what
the bucket machinery buys (robustness to short-term bursts).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.base import RejuvenationPolicy


class DeterministicThreshold(RejuvenationPolicy):
    """Trigger as soon as a single observation exceeds ``threshold``.

    Deliberately burst-fragile: one garbage-collection-delayed response
    is enough to pay a full rejuvenation.
    """

    name = "threshold"

    def __init__(self, threshold: float) -> None:
        self.threshold = float(threshold)

    def observe(self, value: float) -> bool:
        return value > self.threshold

    def reset(self) -> None:
        """Stateless; nothing to reset."""

    def describe(self) -> str:
        return f"DeterministicThreshold(limit={self.threshold:g})"


class RiskBasedThreshold(RejuvenationPolicy):
    """Probabilistic trigger with risk growing linearly over a band.

    Below ``soft_limit`` the trigger probability is zero; above
    ``hard_limit`` it is one; in between it rises linearly -- a direct
    reading of Bobbio et al.'s "rejuvenation performed with a
    probability proportional to the confidence level".

    Parameters
    ----------
    soft_limit, hard_limit:
        The degradation band.
    rng:
        Random generator for the Bernoulli draw (seeded for
    reproducibility; defaults to a fresh default generator).
    """

    name = "risk-threshold"

    def __init__(
        self,
        soft_limit: float,
        hard_limit: float,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if hard_limit <= soft_limit:
            raise ValueError("hard limit must exceed soft limit")
        self.soft_limit = float(soft_limit)
        self.hard_limit = float(hard_limit)
        self.rng = rng if rng is not None else np.random.default_rng()

    def risk(self, value: float) -> float:
        """The trigger probability assigned to an observation."""
        if value <= self.soft_limit:
            return 0.0
        if value >= self.hard_limit:
            return 1.0
        return (value - self.soft_limit) / (self.hard_limit - self.soft_limit)

    def observe(self, value: float) -> bool:
        probability = self.risk(value)
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return bool(self.rng.random() < probability)

    def reset(self) -> None:
        """Stateless apart from the RNG; nothing to reset."""

    def describe(self) -> str:
        return (
            f"RiskBasedThreshold(soft={self.soft_limit:g}, "
            f"hard={self.hard_limit:g})"
        )
