"""Uniformization against the matrix exponential on random generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ctmc.transient import transient_expm, transient_uniformization


def random_generator(rng: np.random.Generator, n: int) -> np.ndarray:
    """A random irreducible-ish generator matrix."""
    Q = rng.uniform(0.0, 2.0, size=(n, n))
    np.fill_diagonal(Q, 0.0)
    np.fill_diagonal(Q, -Q.sum(axis=1))
    return Q


class TestAgreement:
    @pytest.mark.parametrize("n", [2, 4, 8])
    @pytest.mark.parametrize("t", [0.01, 0.5, 5.0, 50.0])
    def test_uniformization_matches_expm(self, n, t):
        rng = np.random.default_rng(n * 1000 + int(t * 10))
        Q = random_generator(rng, n)
        p0 = np.zeros(n)
        p0[0] = 1.0
        uni = transient_uniformization(Q, p0, t)
        exp = transient_expm(Q, p0, t)
        assert np.allclose(uni, exp, atol=1e-9)

    def test_large_lambda_t(self):
        # Poisson weights underflow at k=0 but the log recurrence holds.
        Q = np.array([[-50.0, 50.0], [60.0, -60.0]])
        p0 = np.array([1.0, 0.0])
        uni = transient_uniformization(Q, p0, 30.0)
        exp = transient_expm(Q, p0, 30.0)
        assert np.allclose(uni, exp, atol=1e-9)


class TestEdgeCases:
    def test_t_zero(self):
        Q = np.array([[-1.0, 1.0], [1.0, -1.0]])
        p0 = np.array([0.25, 0.75])
        assert np.allclose(transient_uniformization(Q, p0, 0.0), p0)

    def test_all_absorbing(self):
        Q = np.zeros((3, 3))
        p0 = np.array([0.2, 0.3, 0.5])
        assert np.allclose(transient_uniformization(Q, p0, 7.0), p0)

    def test_negative_time_rejected(self):
        Q = np.zeros((2, 2))
        with pytest.raises(ValueError):
            transient_uniformization(Q, np.array([1.0, 0.0]), -1.0)
        with pytest.raises(ValueError):
            transient_expm(Q, np.array([1.0, 0.0]), -1.0)

    def test_result_is_distribution(self):
        rng = np.random.default_rng(3)
        Q = random_generator(rng, 5)
        p0 = np.full(5, 0.2)
        p = transient_uniformization(Q, p0, 2.0)
        assert p.sum() == pytest.approx(1.0, abs=1e-10)
        assert np.all(p >= -1e-15)

    @given(st.floats(min_value=0.0, max_value=20.0))
    @settings(max_examples=25, deadline=None)
    def test_property_mass_conserved(self, t):
        Q = np.array(
            [[-2.0, 1.5, 0.5], [0.3, -0.3, 0.0], [0.0, 4.0, -4.0]]
        )
        p0 = np.array([0.1, 0.6, 0.3])
        p = transient_uniformization(Q, p0, t)
        assert p.sum() == pytest.approx(1.0, abs=1e-9)
