"""E6 -- Figure 11: SRAA with the sample size doubled (n*K*D = 30).

The shape claim compares against the Fig. 9 family run under the same
seeds: doubling n worsens the high-load response time.
"""

from conftest import (
    BENCH_SEED,
    assertions_enabled,
    bench_scale,
    high_loads,
    regenerate,
    series_mean,
)
from repro.experiments.registry import run_experiment

#: (base config label, doubled-n config label) pairs across the figures.
PAIRS = [
    ("(n=15, K=1, D=1)", "(n=30, K=1, D=1)"),
    ("(n=3, K=5, D=1)", "(n=6, K=5, D=1)"),
    ("(n=5, K=3, D=1)", "(n=10, K=3, D=1)"),
    ("(n=1, K=5, D=3)", "(n=2, K=5, D=3)"),
]


def test_fig11_sample_size_doubled(benchmark):
    result = regenerate(benchmark, "fig11")
    if not assertions_enabled():
        return
    base = run_experiment("fig09_10", bench_scale(), seed=BENCH_SEED)
    doubled_rt = result.tables[0]
    base_rt = base.tables[0]
    highs = high_loads(doubled_rt)
    # Doubling the sample size worsens high-load RT for a clear
    # majority of configuration pairs (sampling noise allows one flip).
    worse = sum(
        series_mean(doubled_rt.get_series(after), highs)
        > series_mean(base_rt.get_series(before), highs)
        for before, after in PAIRS
    )
    assert worse >= len(PAIRS) - 1
