"""Analytical queueing theory used by the paper.

The paper abstracts the e-commerce system (minus garbage collection and
kernel overhead) into an FCFS ``M/M/c`` queue with ``c = 16`` servers and
derives the steady-state response-time distribution, its mean and variance
(equations 1-3), and a phase-type representation (Fig. 2/3) that feeds the
CTMC analysis of the sample mean.

This package implements:

* :class:`~repro.queueing.distributions.PhaseType` -- general (acyclic)
  phase-type distributions with exact moments, cdf/pdf and sampling, plus
  convenience constructors (exponential, Erlang, hypo- and
  hyper-exponential).
* :class:`~repro.queueing.mmc.MMcModel` -- the M/M/c model: Erlang-C,
  ``W_c`` (probability that fewer than ``c`` jobs are present), the
  response-time law of Gross & Harris, and the paper's equations (2) and
  (3) for the mean and variance of the response time.
"""

from repro.queueing.distributions import (
    PhaseType,
    erlang,
    exponential,
    hyperexponential,
    hypoexponential,
)
from repro.queueing.mmc import MMcModel
from repro.queueing.mmck import MMcKModel, erlang_b

__all__ = [
    "MMcKModel",
    "MMcModel",
    "PhaseType",
    "erlang",
    "erlang_b",
    "exponential",
    "hyperexponential",
    "hypoexponential",
]
