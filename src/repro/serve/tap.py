"""``ServeTap``: the live tap that also publishes to the serving plane.

A :class:`ServeTap` *is* a :class:`~repro.obs.live.LiveTap` -- it
implements the PR-4 tracer protocol (``spans`` / ``decisions`` /
``engine`` / ``lifecycle`` flags plus ``emit``), aggregates into the
same constant-memory GK-sketch/window/EWMA state, and feeds the same
flight recorder -- that additionally forwards the macroscopic story to
an :class:`~repro.serve.broker.EventBroker` while the run executes:

* discrete incidents (``fault.injected`` / ``fault.cleared`` /
  ``system.rejuvenation`` / ``policy.trigger``) the moment they fire,
* ``flight.dump`` notices whenever the recorder snapshots its ring
  (rejuvenation, fault, or SLO breach), and
* throttled ``live.snapshot`` events carrying the aggregator's
  dashboard view (GK quantiles, EWMA rate, SLO state, counts).

The tap stays a **pure observer**: publishing reads aggregator state
into fresh plain dicts and enqueues without blocking (see the broker's
drop-oldest discipline), so a simulation with a ``ServeTap`` attached
produces bit-identical results to one without -- pinned by
``tests/serve/test_serve_tap.py``.

A :class:`ServeSpec` is a :class:`~repro.obs.live.LiveSpec` carrying
the broker handle.  Like a ``display``, a broker makes the spec
unpicklable *on purpose*: the process-pool backend then runs the job in
the serving process, which is exactly where the subscribers live (the
serve job runner uses the serial backend in a background thread
anyway).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.obs.events import (
    FAULT_CLEARED,
    FAULT_INJECTED,
    POLICY_TRIGGER,
    REQUEST_COMPLETE,
    SYSTEM_REJUVENATION,
)
from repro.obs.live.tap import LiveAggregator, LiveSpec, LiveTap

#: Event types forwarded to the broker the moment they fire.
PUBLISHED_TYPES = frozenset(
    {
        FAULT_INJECTED,
        FAULT_CLEARED,
        SYSTEM_REJUVENATION,
        POLICY_TRIGGER,
    }
)

#: Default completions between ``live.snapshot`` publishes.  Counted on
#: the simulated event stream (not wall clock), so the publish points
#: are deterministic for a given run.
DEFAULT_SNAPSHOT_EVERY = 1000


@dataclass(frozen=True)
class ServeSpec(LiveSpec):
    """A ``LiveSpec`` bound to a broker (see module docstring).

    Parameters beyond :class:`~repro.obs.live.LiveSpec`:

    broker:
        The serving process's :class:`~repro.serve.broker.EventBroker`.
        ``None`` degrades the tap to a plain ``LiveTap`` (nothing to
        publish into).
    run_tag:
        Opaque label stamped onto every published payload (e.g. a
        campaign job id), so one SSE stream can interleave runs.
    snapshot_every:
        Completions between ``live.snapshot`` publishes.
    """

    broker: Any = None
    run_tag: Optional[str] = None
    snapshot_every: int = DEFAULT_SNAPSHOT_EVERY

    def build(self) -> "ServeTap":
        return ServeTap(self)


class ServeTap(LiveTap):
    """A :class:`LiveTap` that forwards the macro record to a broker."""

    __slots__ = (
        "broker",
        "run_tag",
        "snapshot_every",
        "_since_snapshot",
        "_dumps_published",
        "_slo_bad",
    )

    def __init__(self, spec: ServeSpec) -> None:
        super().__init__(spec)
        self.broker = spec.broker
        self.run_tag = spec.run_tag
        self.snapshot_every = max(1, int(spec.snapshot_every))
        self._since_snapshot = 0
        self._dumps_published = 0
        #: Cumulative completions over the recorder's SLO -- the burn-
        #: rate numerator (per request, unlike dump-gated slo_breaches).
        self._slo_bad = 0

    # ------------------------------------------------------------------
    def emit(self, ts: float, etype: str, source: str, **data: Any) -> None:
        super().emit(ts, etype, source, **data)
        broker = self.broker
        if broker is None:
            return
        if etype in PUBLISHED_TYPES:
            payload = {"ts": ts, "type": etype, "source": source}
            payload.update(data)
            if self.run_tag is not None:
                payload["run"] = self.run_tag
            broker.publish(etype, payload)
        recorder = self.recorder
        if recorder is not None and len(recorder.dumps) > self._dumps_published:
            for dump in recorder.dumps[self._dumps_published :]:
                notice = {
                    "ts": dump.ts,
                    "reason": dump.reason,
                    "records": len(dump.records),
                }
                if self.run_tag is not None:
                    notice["run"] = self.run_tag
                broker.publish("flight.dump", notice)
            self._dumps_published = len(recorder.dumps)
        if etype == REQUEST_COMPLETE:
            slo = self._rec_slo
            if slo is not None and data.get("response_time", 0.0) > slo:
                self._slo_bad += 1
            self._since_snapshot += 1
            if self._since_snapshot >= self.snapshot_every:
                self._since_snapshot = 0
                broker.publish("live.snapshot", self.snapshot_payload())

    # ------------------------------------------------------------------
    def snapshot_payload(self) -> Dict[str, Any]:
        """The aggregator snapshot plus serve-side context (SLO, dumps)."""
        payload = self.aggregator.snapshot()
        recorder = self.recorder
        if recorder is not None:
            payload["flight_dumps"] = len(recorder.dumps)
            payload["slo_s"] = recorder.spec.slo_s
            payload["slo_breaches"] = sum(
                1 for dump in recorder.dumps if dump.reason == "slo_breach"
            )
        else:
            payload["flight_dumps"] = 0
            payload["slo_s"] = None
            payload["slo_breaches"] = 0
        payload["slo_bad"] = self._slo_bad
        if self.run_tag is not None:
            payload["run"] = self.run_tag
        return payload

    def clear(self) -> None:
        super().clear()
        self._since_snapshot = 0
        self._dumps_published = 0
        self._slo_bad = 0

    def freeze(self) -> LiveAggregator:
        """Publish the end-of-run snapshot, then hand the state home."""
        if self.broker is not None:
            self.broker.publish("live.snapshot", self.snapshot_payload())
        return super().freeze()
