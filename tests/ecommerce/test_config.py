"""System configuration validation and derived quantities."""

import dataclasses

import pytest

from repro.ecommerce.config import PAPER_CONFIG, SystemConfig


class TestDefaults:
    def test_paper_values(self):
        cfg = PAPER_CONFIG
        assert cfg.cpus == 16
        assert cfg.service_rate == 0.2
        assert cfg.heap_mb == 3072.0
        assert cfg.alloc_mb == 10.0
        assert cfg.gc_threshold_mb == 100.0
        assert cfg.gc_pause_s == 60.0
        assert cfg.overhead_threshold == 50
        assert cfg.overhead_factor == 2.0

    def test_degradation_enabled_by_default(self):
        assert PAPER_CONFIG.enable_gc
        assert PAPER_CONFIG.enable_overhead

    def test_rejuvenation_instantaneous_by_default(self):
        assert PAPER_CONFIG.rejuvenation_downtime_s == 0.0


class TestDerived:
    def test_arrival_rate_for_load(self):
        assert PAPER_CONFIG.arrival_rate_for_load(8.0) == pytest.approx(1.6)
        assert PAPER_CONFIG.arrival_rate_for_load(0.5) == pytest.approx(0.1)

    def test_arrival_rate_negative_load(self):
        with pytest.raises(ValueError):
            PAPER_CONFIG.arrival_rate_for_load(-1.0)

    def test_without_degradation(self):
        reduced = PAPER_CONFIG.without_degradation()
        assert not reduced.enable_gc
        assert not reduced.enable_overhead
        # Everything else untouched.
        assert reduced.cpus == PAPER_CONFIG.cpus
        assert reduced.service_rate == PAPER_CONFIG.service_rate

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            PAPER_CONFIG.cpus = 8  # type: ignore[misc]


class TestValidation:
    @pytest.mark.parametrize(
        "field, bad",
        [
            ("cpus", 0),
            ("service_rate", 0.0),
            ("heap_mb", -1.0),
            ("alloc_mb", -1.0),
            ("gc_threshold_mb", -1.0),
            ("gc_pause_s", -1.0),
            ("overhead_threshold", -1),
            ("overhead_factor", 0.5),
            ("rejuvenation_downtime_s", -1.0),
        ],
    )
    def test_invalid_values_rejected(self, field, bad):
        with pytest.raises(ValueError):
            dataclasses.replace(PAPER_CONFIG, **{field: bad})
