"""Pluggable parallel execution of simulation jobs.

The Section-5 evaluation is embarrassingly parallel: every figure is
``configurations x loads x replications`` independent runs.  This
package turns that grid into declarative, picklable
:class:`~repro.exec.jobs.ReplicationJob`\\ s and fans them out through
an :class:`~repro.exec.backends.ExecutionBackend`:

* :class:`~repro.exec.backends.SerialBackend` -- in-process reference.
* :class:`~repro.exec.backends.ProcessPoolBackend` -- process pool via
  ``concurrent.futures``; bit-identical to serial for the same seeds.

Select explicitly (``backend=...``), by name, or via the
``REPRO_WORKERS`` / ``REPRO_BACKEND`` environment variables.  Progress
and wall-clock hooks live in :mod:`repro.exec.progress`.
"""

from repro.exec.backends import (
    BACKEND_NAMES,
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    current_backend,
    make_backend,
    resolve_backend,
    use_backend,
    workers_from_env,
)
from repro.exec.jobs import (
    ArrivalSource,
    PolicySource,
    ReplicationJob,
    build_arrival,
    build_policy,
    execute_job,
)
from repro.exec.progress import (
    JobEvent,
    ProgressHook,
    ProgressPrinter,
    StageTimer,
)

__all__ = [
    "ArrivalSource",
    "BACKEND_NAMES",
    "ExecutionBackend",
    "JobEvent",
    "PolicySource",
    "ProcessPoolBackend",
    "ProgressHook",
    "ProgressPrinter",
    "ReplicationJob",
    "SerialBackend",
    "StageTimer",
    "build_arrival",
    "build_policy",
    "current_backend",
    "execute_job",
    "make_backend",
    "resolve_backend",
    "use_backend",
    "workers_from_env",
]
