"""``repro explain`` on flight-recorder dump files (satellite fix).

Before the fix, ``explain_trace`` assumed every JSONL line was a trace
event with a ``type`` key and crashed with ``KeyError: 'type'`` on
``--flight`` output.  Dumps now get their own narrative, and a file
mixing trace events with dumps explains both.
"""

import json

from repro.obs.events import POLICY_TRIGGER, REQUEST_COMPLETE, TraceEvent
from repro.obs.explain import explain_records, explain_trace
from repro.obs.live.recorder import RecorderSpec, write_flight_jsonl


def make_dumps():
    recorder = RecorderSpec(capacity=8, cooldown_s=0.0).build()
    for i in range(12):
        recorder.push(
            TraceEvent(
                float(i), REQUEST_COMPLETE, "system",
                {"response_time": 1.0},
            )
        )
    recorder.push(
        TraceEvent(
            12.0,
            POLICY_TRIGGER,
            "sraa",
            {
                "level": 4,
                "batch_mean": 60.953,
                "threshold": 25.0,
                "sample_size": 2,
                "batch_seq": 9,
            },
        )
    )
    recorder.push(
        TraceEvent(13.0, "system.rejuvenation", "node0", {"lost": 3})
    )
    return recorder.dumps


class TestFlightDumpExplain:
    def test_flight_file_explained_without_keyerror(self, tmp_path):
        path = str(tmp_path / "flight.jsonl")
        count = write_flight_jsonl(path, [make_dumps()])
        assert count >= 1
        text = explain_trace(path)
        assert "flight dump(s)" in text
        assert "dump #1" in text
        assert "ring:" in text

    def test_cause_extracted_from_ring(self, tmp_path):
        path = str(tmp_path / "flight.jsonl")
        write_flight_jsonl(path, [make_dumps()])
        text = explain_trace(path)
        assert "cause: bucket 4 overflowed" in text
        assert "60.953s > threshold 25.000s" in text

    def test_multiple_runs_grouped(self, tmp_path):
        path = str(tmp_path / "flight.jsonl")
        write_flight_jsonl(path, [make_dumps(), make_dumps()])
        text = explain_trace(path)
        assert "run 0" in text
        assert "run 1" in text

    def test_mixed_trace_and_dump_records(self):
        trace_event = {
            "run": 0,
            "ts": 1.0,
            "type": REQUEST_COMPLETE,
            "source": "system",
            "data": {"response_time": 1.0},
        }
        dump = dict(make_dumps()[0].to_dict(), run=0)
        text = explain_records([trace_event, dump])
        assert "run 0" in text
        assert "flight dump(s)" in text
        assert "spans: 1 completions" in text

    def test_empty_ring_dump(self):
        dump = {"run": 0, "reason": "fault.injected", "ts": 5.0,
                "events": []}
        text = explain_records([dump])
        assert "empty ring" in text

    def test_jsonl_round_trip_preserves_shape(self, tmp_path):
        path = tmp_path / "flight.jsonl"
        write_flight_jsonl(str(path), [make_dumps()])
        with open(path) as handle:
            first = json.loads(handle.readline())
        assert first["run"] == 0
        assert "type" not in first
        assert {"reason", "ts", "events"} <= set(first)
