"""E10 -- Figure 15: SARAA improves on SRAA at n*K*D = 30."""

from conftest import (
    assertions_enabled,
    high_loads,
    low_loads,
    regenerate,
    series_mean,
)
from repro.experiments.saraa_fig import CONFIGS_FIG15


def test_fig15_saraa_vs_sraa(benchmark):
    result = regenerate(benchmark, "fig15")
    if not assertions_enabled():
        return
    rt, loss = result.tables
    highs = high_loads(rt)
    lows = low_loads(loss)
    # SARAA's high-load RT improves on SRAA at the same (n, K, D) for a
    # majority of the four configurations (paper: all four improve).
    improved = 0
    for n, K, D in CONFIGS_FIG15:
        saraa = rt.get_series(f"SARAA (n={n}, K={K}, D={D})")
        sraa = rt.get_series(f"(n={n}, K={K}, D={D})")
        if series_mean(saraa, highs) < series_mean(sraa, highs):
            improved += 1
    assert improved >= 3
    # While keeping the multi-bucket negligible loss at low loads.
    for n, K, D in CONFIGS_FIG15:
        saraa_loss = loss.get_series(f"SARAA (n={n}, K={K}, D={D})")
        assert series_mean(saraa_loss, lows) < 0.005
