"""Legacy setuptools shim.

Exists so that offline environments without the ``wheel`` package can
still do an editable install via
``pip install -e . --no-build-isolation --no-use-pep517``.
All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
