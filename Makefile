# Convenience targets; everything works with plain pytest/pip too.

PYTHON ?= python

.PHONY: install test bench bench-paper bench-sweep experiments examples clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-paper:
	REPRO_SCALE=paper $(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-sweep:
	$(PYTHON) -m pytest benchmarks/test_bench_parallel_speedup.py --benchmark-only -s

experiments:
	$(PYTHON) -m repro run all --scale quick --seed 2006

examples:
	@for script in examples/*.py; do \
		echo "== $$script =="; \
		$(PYTHON) $$script || exit 1; \
	done

clean:
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
	rm -rf .pytest_cache build dist src/*.egg-info
