"""String-keyed construction of policies (CLI and config files)."""

from __future__ import annotations

from typing import Any, Callable, Dict

from repro.core.base import RejuvenationPolicy
from repro.core.baselines import NeverRejuvenate, PeriodicRejuvenation
from repro.core.clta import CLTA
from repro.core.control_charts import CUSUMPolicy, EWMAPolicy
from repro.core.quantile import QuantilePolicy
from repro.core.saraa import SARAA
from repro.core.sla import ServiceLevelObjective
from repro.core.sraa import SRAA, StaticRejuvenation
from repro.core.threshold import DeterministicThreshold, RiskBasedThreshold
from repro.core.trend import TrendPolicy


def _build_sraa(slo: ServiceLevelObjective, **kw: Any) -> RejuvenationPolicy:
    return SRAA(
        slo,
        sample_size=int(kw.get("n", 1)),
        n_buckets=int(kw.get("K", 1)),
        depth=int(kw.get("D", 1)),
    )


def _build_saraa(slo: ServiceLevelObjective, **kw: Any) -> RejuvenationPolicy:
    return SARAA(
        slo,
        sample_size=int(kw.get("n", 5)),
        n_buckets=int(kw.get("K", 1)),
        depth=int(kw.get("D", 1)),
    )


def _build_clta(slo: ServiceLevelObjective, **kw: Any) -> RejuvenationPolicy:
    return CLTA(slo, sample_size=int(kw.get("n", 30)), z=float(kw.get("z", 1.96)))


def _build_static(slo: ServiceLevelObjective, **kw: Any) -> RejuvenationPolicy:
    return StaticRejuvenation(
        slo, n_buckets=int(kw.get("K", 1)), depth=int(kw.get("D", 1))
    )


def _build_never(slo: ServiceLevelObjective, **kw: Any) -> RejuvenationPolicy:
    return NeverRejuvenate()


def _build_periodic(slo: ServiceLevelObjective, **kw: Any) -> RejuvenationPolicy:
    return PeriodicRejuvenation(period=int(kw.get("period", 1000)))


def _build_threshold(slo: ServiceLevelObjective, **kw: Any) -> RejuvenationPolicy:
    default_limit = slo.shift_threshold(3)
    return DeterministicThreshold(threshold=float(kw.get("limit", default_limit)))


def _build_risk(slo: ServiceLevelObjective, **kw: Any) -> RejuvenationPolicy:
    soft = float(kw.get("soft", slo.shift_threshold(1)))
    hard = float(kw.get("hard", slo.shift_threshold(4)))
    return RiskBasedThreshold(soft_limit=soft, hard_limit=hard)


def _build_trend(slo: ServiceLevelObjective, **kw: Any) -> RejuvenationPolicy:
    return TrendPolicy(
        sample_size=int(kw.get("n", 5)),
        window=int(kw.get("window", 12)),
        alpha=float(kw.get("alpha", 0.05)),
        min_slope=float(kw.get("min_slope", 0.0)),
    )


def _build_quantile(
    slo: ServiceLevelObjective, **kw: Any
) -> RejuvenationPolicy:
    # Default limit: the paper's 10 s maximum acceptable response time.
    return QuantilePolicy(
        quantile=float(kw.get("q", 0.95)),
        limit=float(kw.get("limit", 10.0)),
        window=int(kw.get("window", 100)),
        patience=int(kw.get("patience", 2)),
    )


def _build_cusum(slo: ServiceLevelObjective, **kw: Any) -> RejuvenationPolicy:
    return CUSUMPolicy(
        slo,
        k_sigmas=float(kw.get("k", 0.5)),
        h_sigmas=float(kw.get("h", 5.0)),
    )


def _build_ewma(slo: ServiceLevelObjective, **kw: Any) -> RejuvenationPolicy:
    return EWMAPolicy(
        slo,
        lam=float(kw.get("lam", 0.2)),
        L_sigmas=float(kw.get("L", 3.0)),
    )


_BUILDERS: Dict[str, Callable[..., RejuvenationPolicy]] = {
    "cusum": _build_cusum,
    "ewma": _build_ewma,
    "quantile": _build_quantile,
    "trend": _build_trend,
    "sraa": _build_sraa,
    "saraa": _build_saraa,
    "clta": _build_clta,
    "static": _build_static,
    "never": _build_never,
    "periodic": _build_periodic,
    "threshold": _build_threshold,
    "risk-threshold": _build_risk,
}


def available_policies() -> tuple[str, ...]:
    """Names accepted by :func:`make_policy`."""
    return tuple(sorted(_BUILDERS))


def make_policy(
    name: str, slo: ServiceLevelObjective, **params: Any
) -> RejuvenationPolicy:
    """Build a policy by name.

    Parameters
    ----------
    name:
        One of :func:`available_policies`.
    slo:
        The service-level objective (ignored by the stateless baselines).
    params:
        Algorithm parameters using the paper's letters: ``n``, ``K``,
        ``D``, ``z`` -- plus baseline-specific keys (``period``,
        ``limit``, ``soft``, ``hard``).

    Examples
    --------
    >>> from repro.core.sla import PAPER_SLO
    >>> make_policy("sraa", PAPER_SLO, n=2, K=5, D=3).describe()
    'SRAA(n=2, K=5, D=3)'
    """
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; available: {', '.join(available_policies())}"
        ) from None
    return builder(slo, **params)
