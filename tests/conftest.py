"""Shared fixtures: the paper's canonical model objects."""

import pytest

from repro.core.sla import ServiceLevelObjective
from repro.ecommerce.config import SystemConfig
from repro.queueing.mmc import MMcModel


@pytest.fixture(autouse=True)
def _hermetic_ledger(tmp_path, monkeypatch):
    """Point the run ledger and bench trajectories at the test's tmp dir.

    CLI invocations under test record ledger entries like real ones;
    without this, every ``main([...])`` call would append to the
    repository's own ``.repro/ledger``.
    """
    monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "ledger"))
    monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path / "bench"))
    monkeypatch.setenv("REPRO_ALERTS_DIR", str(tmp_path / "alerts"))


@pytest.fixture
def paper_model() -> MMcModel:
    """M/M/16 at the paper's maximum load of interest (lambda = 1.6)."""
    return MMcModel(arrival_rate=1.6, service_rate=0.2, servers=16)


@pytest.fixture
def paper_slo() -> ServiceLevelObjective:
    """The SLO used throughout Section 5 (mu_X = sigma_X = 5)."""
    return ServiceLevelObjective(mean=5.0, std=5.0)


@pytest.fixture
def paper_config() -> SystemConfig:
    """The Section-3 system configuration."""
    return SystemConfig()
