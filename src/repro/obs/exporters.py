"""Trace and metrics exporters: JSONL, Chrome ``trace_event``, Prometheus.

The canonical on-disk form is JSONL: one JSON object per line, each
carrying the run bookkeeping (``run`` index, ``tag``, ``seed``) plus
the event fields (``ts``, ``type``, ``source``, ``data``).  JSONL
round-trips losslessly (:func:`read_jsonl` /
:meth:`~repro.obs.events.TraceEvent.from_dict`), streams, greps, and is
what ``repro explain`` consumes.

The Chrome ``trace_event`` export is a plain JSON **array** of
``{name, ph, ts, pid, tid}`` records -- the subset of the trace-event
format both ``chrome://tracing`` and Perfetto accept.  Replications map
to ``pid``, emitting sources to ``tid``, and request lifecycles become
complete (``ph="X"``) slices whose duration is the response time, so a
loaded trace shows the paper's soft-failure episodes as widening spans.

The Prometheus export is the node-exporter "textfile collector"
convention: a point-in-time snapshot of a
:class:`~repro.obs.metrics.MetricsRegistry` in text exposition format.
"""

from __future__ import annotations

import gzip
import json
from typing import Any, Dict, Iterable, List

from repro.obs.events import REQUEST_COMPLETE, RUN_META
from repro.obs.metrics import MetricsRegistry

#: Microseconds per simulated second (trace_event timestamps are in us).
_US = 1_000_000.0


def _open_text(path: str, mode: str):
    """Text-mode open that is gzip-transparent on a ``.gz`` suffix.

    Campaign traces are routinely gzipped for archiving (the CI fault
    job does); every JSONL reader and writer here accepts both forms,
    so ``repro explain``, ``repro faults score`` and ``repro report``
    work on ``.jsonl.gz`` without an explicit decompression step.
    """
    if path.endswith(".gz"):
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


# ---------------------------------------------------------------------------
# JSONL
# ---------------------------------------------------------------------------
def write_jsonl(path: str, records: Iterable[Dict[str, Any]]) -> int:
    """Write one JSON object per line (gzipped on a ``.gz`` path);
    return the number of lines."""
    count = 0
    with _open_text(path, "w") as handle:
        for record in records:
            handle.write(json.dumps(record, separators=(",", ":")))
            handle.write("\n")
            count += 1
    return count


def iter_jsonl(path: str) -> Iterable[Dict[str, Any]]:
    """Stream the records of a JSONL trace file (plain or ``.gz``)."""
    with _open_text(path, "r") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{line_no}: not valid JSONL ({exc})"
                ) from None


def read_jsonl(path: str) -> List[Dict[str, Any]]:
    """All records of a JSONL trace file (plain or ``.gz``)."""
    return list(iter_jsonl(path))


# ---------------------------------------------------------------------------
# Chrome trace_event
# ---------------------------------------------------------------------------
def chrome_trace_records(
    records: Iterable[Dict[str, Any]],
) -> List[Dict[str, Any]]:
    """Convert flat JSONL records to Chrome ``trace_event`` dicts."""
    out: List[Dict[str, Any]] = []
    tids: Dict[str, int] = {}
    named_pids: set = set()

    def tid_for(source: str) -> int:
        if source not in tids:
            tids[source] = len(tids) + 1
        return tids[source]

    for record in records:
        pid = int(record.get("run", 0))
        etype = record.get("type", "")
        data = record.get("data", {})
        if etype == RUN_META:
            if pid not in named_pids:
                named_pids.add(pid)
                tag = record.get("tag")
                label = f"replication {pid}" + (f" {tag}" if tag else "")
                out.append(
                    {
                        "name": "process_name",
                        "ph": "M",
                        "ts": 0,
                        "pid": pid,
                        "tid": 0,
                        "args": {"name": label},
                    }
                )
            continue
        ts_us = float(record.get("ts", 0.0)) * _US
        source = str(record.get("source", ""))
        if etype == REQUEST_COMPLETE and "response_time" in data:
            duration_us = float(data["response_time"]) * _US
            out.append(
                {
                    "name": "request",
                    "ph": "X",
                    "ts": ts_us - duration_us,
                    "dur": duration_us,
                    "pid": pid,
                    "tid": tid_for(source),
                    "args": dict(data),
                }
            )
            continue
        out.append(
            {
                "name": etype,
                "ph": "i",
                "s": "t",
                "ts": ts_us,
                "pid": pid,
                "tid": tid_for(source),
                "args": dict(data),
            }
        )
    return out


def write_chrome_trace(
    path: str, records: Iterable[Dict[str, Any]]
) -> int:
    """Write the Chrome/Perfetto JSON array; return the record count."""
    converted = chrome_trace_records(records)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(converted, handle, separators=(",", ":"))
    return len(converted)


# ---------------------------------------------------------------------------
# Prometheus textfile
# ---------------------------------------------------------------------------
def write_prometheus(path: str, registry: MetricsRegistry) -> None:
    """Write a textfile-collector snapshot of the registry."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(registry.to_prometheus())
