"""The JSON API over the run ledger, against a live server.

The ledger endpoints must agree byte-for-byte with the CLI's JSON
output (they share one serializer) and read the same append-only files
the CLI writes -- entries recorded after the server started appear
without a restart.
"""

import json

import pytest

from repro.cli import main
from tests.serve.conftest import SIMULATE


def seed_ledger(extra=()):
    assert main(SIMULATE + list(extra)) == 0


class TestHealthAndErrors:
    def test_health(self, served):
        status, payload = served.get("/api/health")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["runs"] == 0
        assert payload["version"].startswith("repro ")
        assert payload["uptime_s"] >= 0

    def test_unknown_endpoint_is_json_404(self, served):
        status, payload = served.get("/api/nope")
        assert status == 404
        assert "no such endpoint" in payload["error"]

    def test_unknown_run_ref_is_404(self, served):
        seed_ledger()
        status, payload = served.get("/api/runs/zzz-no-such-run")
        assert status == 404
        assert "error" in payload

    def test_bad_query_parameter_is_400(self, served):
        status, payload = served.get("/api/runs?limit=banana")
        assert status == 400
        assert "limit" in payload["error"]


class TestRunsEndpoints:
    def test_list_matches_cli_json_exactly(self, served, capsys):
        seed_ledger()
        seed_ledger(["--seed", "8"])
        capsys.readouterr()  # drop the simulate output
        assert main(["runs", "list", "--json"]) == 0
        cli_payload = json.loads(capsys.readouterr().out)
        status, api_payload = served.get("/api/runs")
        assert status == 200
        assert api_payload == cli_payload
        # Byte-for-byte, not just equal-after-parsing: CI pins the two
        # with ``cmp``, so the API body must match the printed JSON
        # exactly (including the trailing newline).
        cli_text = json.dumps(cli_payload, indent=2, sort_keys=True) + "\n"
        _, _, api_text = served.get_raw("/api/runs")
        assert api_text == cli_text

    def test_list_filters_and_paginates(self, served):
        for seed in ("7", "8", "9"):
            seed_ledger(["--seed", seed])
        status, page = served.get("/api/runs?limit=2&offset=1")
        assert status == 200
        assert page["total"] == 3 and page["count"] == 2
        assert page["offset"] == 1
        status, last = served.get("/api/runs?last=2")
        assert [r["id"] for r in last["runs"]] == [
            r["id"] for r in page["runs"]
        ]
        status, none = served.get("/api/runs?kind=faults")
        assert none["total"] == 0

    def test_new_entries_visible_without_restart(self, served):
        _, before = served.get("/api/runs")
        assert before["total"] == 0
        seed_ledger()
        _, after = served.get("/api/runs")
        assert after["total"] == 1

    def test_show_matches_cli_json_exactly(self, served, capsys):
        seed_ledger()
        capsys.readouterr()  # drop the simulate output
        assert main(["runs", "show", "latest", "--json"]) == 0
        cli_entry = json.loads(capsys.readouterr().out)
        status, api_entry = served.get("/api/runs/latest")
        assert status == 200
        assert api_entry == cli_entry
        # Prefix and exact-id lookups resolve the same entry.
        status, by_id = served.get(f"/api/runs/{api_entry['id']}")
        assert by_id == api_entry
        status, by_prefix = served.get(f"/api/runs/{api_entry['id'][:8]}")
        assert by_prefix == api_entry

    def test_diff_identical_and_different(self, served):
        seed_ledger()
        seed_ledger()  # same spec + seed -> identical entries
        seed_ledger(["--seed", "8"])
        _, runs = served.get("/api/runs")
        first, second, third = [r["id"] for r in runs["runs"]]
        _, same = served.get(f"/api/diff?left={first}&right={second}")
        assert same["identical"] is True and same["differences"] == []
        _, diff = served.get(f"/api/diff?left={first}&right={third}")
        assert diff["identical"] is False
        paths = [d["path"] for d in diff["differences"]]
        assert any("manifest" in p for p in paths)

    def test_diff_requires_both_refs(self, served):
        status, payload = served.get("/api/diff?left=latest")
        assert status == 400
        assert "right" in payload["error"]

    def test_baselines_round_trip(self, served):
        seed_ledger()
        assert main(["runs", "baseline", "latest", "--label", "gold"]) == 0
        _, payload = served.get("/api/baselines")
        assert "gold" in payload["baselines"]
        _, runs = served.get("/api/runs")
        assert runs["runs"][0]["baseline"] == "gold"


class TestBenchEndpoints:
    def test_empty_then_recorded(self, served):
        _, empty = served.get("/api/bench")
        assert empty == {"trajectories": []}
        from repro.obs.ledger import record_bench_point

        record_bench_point("api_check", 1.25, "s", seed=1)
        record_bench_point("api_check", 1.5, "s", seed=1)
        _, listing = served.get("/api/bench")
        assert listing["trajectories"][0]["name"] == "api_check"
        assert listing["trajectories"][0]["points"] == 2
        assert listing["trajectories"][0]["problems"] == []
        _, one = served.get("/api/bench/api_check")
        assert [p["value"] for p in one["points"]] == [1.25, 1.5]
        assert one["problems"] == []

    def test_missing_trajectory_is_404(self, served):
        status, payload = served.get("/api/bench/never_recorded")
        assert status == 404
        assert "never_recorded" in payload["error"]


class TestScenarioEndpoint:
    def test_zoo_listing_with_horizon(self, served):
        from repro.faults.zoo import scenario_names

        status, payload = served.get("/api/scenarios?horizon=600")
        assert status == 200
        assert payload["horizon_s"] == 600.0
        assert [s["name"] for s in payload["scenarios"]] == list(
            scenario_names()
        )
        assert all(s["n_transactions"] > 0 for s in payload["scenarios"])


class TestPoliciesEndpoint:
    def test_lists_every_factory_policy_with_schema(self, served):
        from repro.core.factory import available_policies

        status, payload = served.get("/api/policies")
        assert status == 200
        names = [p["name"] for p in payload["policies"]]
        assert names == list(available_policies())
        adaptive = next(
            p for p in payload["policies"] if p["name"] == "adaptive"
        )
        assert adaptive["summary"]
        assert {param["name"] for param in adaptive["params"]} == {
            "n", "window", "k", "patience", "grow", "warmup",
        }
        for param in adaptive["params"]:
            assert set(param) == {"name", "type", "default", "doc"}

    def test_labels_cover_paper_trio_and_detectors(self, served):
        _, payload = served.get("/api/policies")
        labels = {entry["label"]: entry for entry in payload["labels"]}
        assert set(labels) == {
            "SRAA", "SARAA", "CLTA", "ADAPTIVE", "ENTROPY", "TREND",
        }
        assert labels["SRAA"]["policy"] == "sraa"
        assert labels["SRAA"]["params"] == {"n": 2, "K": 5, "D": 3}
        assert labels["TREND"]["policy"] == "predictor"

    def test_campaign_launch_rejects_unknown_policy_naming_choices(
        self, served
    ):
        status, payload = served.post(
            "/api/campaigns",
            {
                "scenarios": ["aging_onset"],
                "policies": ["bogus"],
                "replications": 1,
            },
        )
        assert status == 400
        message = payload["error"]
        for spelling in ("SRAA", "ADAPTIVE", "ENTROPY", "TREND", "sraa"):
            assert spelling in message


class TestDashboard:
    @pytest.mark.parametrize("path", ["/", "/dashboard"])
    def test_served_and_self_contained(self, served, path):
        status, headers, page = served.get_raw(path)
        assert status == 200
        assert headers["Content-Type"].startswith("text/html")
        assert page.startswith("<!DOCTYPE html>")
        # Same self-containment bar as `repro report` output.
        for marker in ("http://", "https://", "src=", "@import"):
            assert marker not in page
        for hook in ("/api/events", "/api/runs", "/api/campaigns"):
            assert hook in page


class TestLiveEndpoint:
    def test_empty_until_a_snapshot_exists(self, served):
        status, payload = served.get("/api/live")
        assert status == 200 and payload == {}
        served.server.broker.publish("live.snapshot", {"completed": 3})
        _, payload = served.get("/api/live")
        assert payload["completed"] == 3
