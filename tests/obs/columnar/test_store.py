"""Lossless columnar encoding: every record decodes back byte-for-byte.

The store's whole contract is that ``encode -> decode -> compact JSON``
reproduces the exact line a JSONL trace writer would have produced:
key order, int/float/bool/null distinctions, nested payloads, and
records that match no known envelope (carried as opaque fragments).
"""

import json

import numpy as np
import pytest

from repro.obs.columnar.store import (
    ColumnarTrace,
    compact_json,
    encode_events,
    encode_records,
    merge_batches_sorted,
)


def _line(record):
    return json.dumps(record, separators=(",", ":"))


#: Records covering every tag the shape dictionary distinguishes.
TRICKY_RECORDS = [
    # The plain event envelope, float payload.
    {
        "ts": 1.5,
        "type": "request.complete",
        "source": "system",
        "data": {"response_time": 0.25},
        "run": 0,
    },
    # Same keys, different payload shape (int vs float vs bool vs null).
    {
        "ts": 2.0,
        "type": "policy.trigger",
        "source": "policy:sraa",
        "data": {"level": 3, "armed": True, "cause": None},
        "run": 0,
    },
    # bool False must not collapse into int 0.
    {
        "ts": 2.5,
        "type": "policy.trigger",
        "source": "policy:sraa",
        "data": {"level": 0, "armed": False, "cause": None},
        "run": 0,
    },
    # Nested payloads ride as JSON fragments.
    {
        "ts": 3.0,
        "type": "fault.injected",
        "source": "scenario",
        "data": {"kind": "aging", "phases": [1, 2, {"deep": "x"}]},
        "run": 1,
    },
    # Ints beyond int64 fall back to the fragment pool.
    {
        "ts": 4.0,
        "type": "custom.big",
        "source": "s",
        "data": {"huge": 2**70, "small": -(2**70)},
        "run": 1,
    },
    # The run.meta envelope.
    {
        "run": 1,
        "tag": ["faults", "aging_onset", "SRAA", 0],
        "seed": 7,
        "ts": 0.0,
        "type": "run.meta",
        "source": "session",
        "data": {"arrivals": 10, "avg_response_time": 1.25},
    },
    # A flight-recorder dump line: no type key, opaque envelope.
    {
        "run": 2,
        "reason": "slo_breach",
        "ts": 9.5,
        "events": [{"ts": 9.0, "type": "request.complete"}],
    },
    # Unicode strings and negative zero.
    {
        "ts": 5.0,
        "type": "custom.unicode",
        "source": "nöde-☃",
        "data": {"label": "café", "x": -0.0},
        "run": 2,
    },
]


class TestRoundTrip:
    def test_tricky_records_round_trip_byte_identical(self):
        trace = ColumnarTrace.from_records(TRICKY_RECORDS)
        assert len(trace) == len(TRICKY_RECORDS)
        for index, record in enumerate(TRICKY_RECORDS):
            assert trace.decode(index) == record
            assert compact_json(trace.decode(index)) == _line(record)

    def test_to_jsonl_lines_matches_json_dumps(self):
        trace = ColumnarTrace.from_records(TRICKY_RECORDS)
        lines = list(trace.to_jsonl_lines())
        assert lines == [_line(r) for r in TRICKY_RECORDS]

    def test_value_types_survive_exactly(self):
        trace = ColumnarTrace.from_records(TRICKY_RECORDS)
        decoded = trace.decode(1)["data"]
        assert decoded["level"] == 3 and type(decoded["level"]) is int
        assert decoded["armed"] is True
        assert decoded["cause"] is None
        decoded = trace.decode(2)["data"]
        assert decoded["armed"] is False
        big = trace.decode(4)["data"]
        assert big["huge"] == 2**70 and big["small"] == -(2**70)

    def test_key_order_is_preserved(self):
        record = {
            "ts": 1.0,
            "type": "custom.order",
            "source": "s",
            "data": {"zebra": 1, "apple": 2, "mango": 3},
            "run": 0,
        }
        trace = ColumnarTrace.from_records([record])
        assert list(trace.decode(0)["data"]) == ["zebra", "apple", "mango"]

    def test_shape_dictionary_is_shared(self):
        # 1000 events of one payload shape need exactly one shape entry.
        records = [
            {
                "ts": float(i),
                "type": "request.complete",
                "source": "system",
                "data": {"response_time": i * 0.01},
                "run": 0,
            }
            for i in range(1000)
        ]
        trace = ColumnarTrace.from_records(records)
        assert len(trace.shapes) == 1
        assert len(trace.types) == 1


class TestBatches:
    def test_encode_events_stamps_run(self):
        events = [
            (0.5, "request.complete", "system", {"response_time": 0.1}),
            (1.5, "system.gc", "system", {}),
        ]
        batch = encode_events(events, run=3)
        trace = ColumnarTrace.from_batches([batch])
        assert [r["run"] for r in trace.iter_records()] == [3, 3]

    def test_with_run_rewrites_the_run_column(self):
        batch = encode_events(
            [(0.5, "system.gc", "system", {})], run=0
        )
        trace = ColumnarTrace.from_batches([batch.with_run(9)])
        assert trace.decode(0)["run"] == 9

    def test_from_batches_remaps_dictionaries(self):
        # Two batches with conflicting local dictionary ids must merge
        # into one consistent global dictionary.
        a = encode_records(
            [
                {
                    "ts": 1.0,
                    "type": "alpha.one",
                    "source": "sa",
                    "data": {"k": "va"},
                    "run": 0,
                }
            ]
        )
        b = encode_records(
            [
                {
                    "ts": 2.0,
                    "type": "beta.two",
                    "source": "sb",
                    "data": {"k": "vb"},
                    "run": 1,
                }
            ]
        )
        trace = ColumnarTrace.from_batches([b, a])
        records = list(trace.iter_records())
        assert records[0]["type"] == "beta.two"
        assert records[1]["type"] == "alpha.one"
        assert records[0]["data"]["k"] == "vb"
        assert records[1]["data"]["k"] == "va"

    def test_merge_batches_sorted_is_stable_on_ties(self):
        # Equal timestamps must keep batch submission order -- the same
        # tie-break the dict path's stable sort applies.
        a = encode_events([(5.0, "tie.a", "s", {})], run=0)
        b = encode_events([(5.0, "tie.b", "s", {})], run=1)
        merged = ColumnarTrace.from_batches(
            [merge_batches_sorted([a, b])]
        )
        assert [r["type"] for r in merged.iter_records()] == [
            "tie.a",
            "tie.b",
        ]
        merged = ColumnarTrace.from_batches(
            [merge_batches_sorted([b, a])]
        )
        assert [r["type"] for r in merged.iter_records()] == [
            "tie.b",
            "tie.a",
        ]

    def test_merge_batches_sorted_orders_by_ts(self):
        a = encode_events(
            [(3.0, "x.a", "s", {}), (9.0, "x.b", "s", {})], run=0
        )
        b = encode_events([(1.0, "x.c", "s", {})], run=0)
        merged = ColumnarTrace.from_batches(
            [merge_batches_sorted([a, b])]
        )
        assert [r["ts"] for r in merged.iter_records()] == [1.0, 3.0, 9.0]


class TestColumns:
    def test_counts_by_type(self):
        trace = ColumnarTrace.from_records(TRICKY_RECORDS)
        counts = trace.counts_by_type()
        assert counts["policy.trigger"] == 2
        assert counts["request.complete"] == 1

    def test_field_float_gathers_floats_and_ints(self):
        records = [
            {
                "ts": 1.0,
                "type": "request.complete",
                "source": "s",
                "data": {"response_time": 0.5},
                "run": 0,
            },
            {
                "ts": 2.0,
                "type": "request.complete",
                "source": "s",
                "data": {"response_time": 2},  # int-valued
                "run": 0,
            },
            {
                "ts": 3.0,
                "type": "request.complete",
                "source": "s",
                "data": {},  # missing -- must be dropped
                "run": 0,
            },
        ]
        trace = ColumnarTrace.from_records(records)
        rows, values = trace.field_float(
            "response_time", np.arange(len(trace), dtype=np.int64)
        )
        assert list(rows) == [0, 1]
        assert values.dtype == np.float64
        assert list(values) == [0.5, 2.0]

    def test_segments_cover_all_rows(self):
        trace = ColumnarTrace.from_records(TRICKY_RECORDS)
        covered = sum(stop - start for start, stop, *_ in trace.segments)
        assert covered == len(trace)


class TestOpaqueFallback:
    def test_arbitrary_json_round_trips(self):
        weird = [
            {"totally": "unrelated"},
            {"list": [1, [2, [3]]], "n": None},
            {"ts": "not-a-number", "type": 12},
        ]
        trace = ColumnarTrace.from_records(weird)
        for index, record in enumerate(weird):
            assert trace.decode(index) == record
            assert compact_json(trace.decode(index)) == _line(record)
