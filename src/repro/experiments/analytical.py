"""Analytical experiments: Fig. 5, the false-alarm table, eq. 2-3 baseline.

These need no simulation -- they exercise the M/M/c formulas and the
CTMC machinery, exactly as the paper used SHARPE.
"""

from __future__ import annotations

import numpy as np

from repro.ctmc.sample_mean import SampleMeanChain
from repro.experiments.scale import Scale
from repro.experiments.tables import ExperimentResult, Series, Table
from repro.queueing.mmc import MMcModel
from repro.stats.clt import CLTDiagnostics

#: The Fig. 5 configuration: maximum load of interest.
FIG5_MODEL = MMcModel(arrival_rate=1.6, service_rate=0.2, servers=16)
FIG5_SAMPLE_SIZES = (1, 5, 15, 30)


def run_fig05(scale: Scale, seed: int = 0) -> ExperimentResult:
    """Fig. 5: exact density of X̄n against its normal approximation.

    One table per sample size, each giving the exact eq.-4 density and
    the approximating normal density over a grid, plus a summary table of
    convergence diagnostics.  ``scale``/``seed`` are unused (analytic).
    """
    tables = []
    summary = Table(
        title="Fig. 5 summary: distance of the law of X-bar_n from normal",
        x_label="n",
        y_label="diagnostic",
    )
    sup_series = Series(label="sup |f_exact - f_normal|")
    kolmogorov_series = Series(label="sup |F_exact - F_normal|")
    skew_series = Series(label="skewness of X-bar_n")
    diagnostics = CLTDiagnostics(FIG5_MODEL, grid_points=101, span_sigmas=5.0)
    for n in FIG5_SAMPLE_SIZES:
        chain = SampleMeanChain(FIG5_MODEL, n)
        mu, sigma = chain.normal_parameters()
        xs = np.linspace(max(0.0, mu - 4 * sigma), mu + 4 * sigma, 17)
        table = Table(
            title=f"Fig. 5 panel n={n}: density of the sample mean",
            x_label="x",
            y_label="density",
        )
        exact = Series(label="exact f(x) [eq. 4]")
        normal = Series(label="normal approx")
        for x in xs:
            exact.add(float(x), chain.pdf(float(x)))
            normal.add(float(x), chain.normal_pdf(float(x)))
        table.add_series(exact)
        table.add_series(normal)
        tables.append(table)
        report = diagnostics.report(n)
        sup_series.add(n, report.sup_density_distance)
        kolmogorov_series.add(n, report.kolmogorov_distance)
        skew_series.add(n, report.skewness)
    summary.add_series(sup_series)
    summary.add_series(kolmogorov_series)
    summary.add_series(skew_series)
    tables.append(summary)
    return ExperimentResult(
        experiment_id="fig05",
        description=(
            "Density of the average response time for n=1,5,15,30 vs the "
            "approximating normal (lambda=1.6, mu=0.2, c=16)"
        ),
        tables=tables,
        paper_expectations=[
            "the density of the sample average is reasonably approximated "
            "by a normal for sample sizes as low as 30 or even 15",
            "the n=1 density is visibly right-skewed (exponential-like); "
            "skewness and both distances shrink monotonically with n",
        ],
    )


def run_false_alarm(scale: Scale, seed: int = 0) -> ExperimentResult:
    """Section 4.1: exact false-alarm probability of the CLTA rule.

    The paper reports 3.69 % for n=15 and 3.37 % for n=30 against the
    nominal 2.5 % at the 97.5 % normal quantile.
    """
    table = Table(
        title=(
            "Exact P(X-bar_n > mu + z_0.975 sigma/sqrt(n)) for a healthy "
            "M/M/16 at lambda=1.6"
        ),
        x_label="n",
        y_label="probability",
    )
    exact = Series(label="exact tail [eq. 4 chain]")
    nominal = Series(label="nominal tail")
    for n in (5, 15, 30, 60):
        chain = SampleMeanChain(FIG5_MODEL, n)
        exact.add(n, chain.false_alarm_probability(0.975))
        nominal.add(n, 0.025)
    table.add_series(exact)
    table.add_series(nominal)
    return ExperimentResult(
        experiment_id="false_alarm",
        description="Exact CLTA false-alarm probabilities (Section 4.1)",
        tables=[table],
        paper_expectations=[
            "3.69 % for n=15 and 3.37 % for n=30 (both above the nominal "
            "2.5 %, shrinking towards it as n grows)",
        ],
    )


def run_mmc_baseline(scale: Scale, seed: int = 0) -> ExperimentResult:
    """Section 4.1 baseline: mean and std of the RT across loads (eq. 2-3).

    Below about 1 transaction/second both stay at their baseline value of
    5; they diverge as the load approaches saturation.
    """
    table = Table(
        title="M/M/16 response time moments vs offered load (eq. 2-3)",
        x_label="load_cpus",
        y_label="seconds",
    )
    mean_series = Series(label="E[RT] (eq. 2)")
    std_series = Series(label="sd[RT] (sqrt eq. 3)")
    wc_series = Series(label="W_c")
    for load in (0.5, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12, 14, 15):
        model = MMcModel.from_offered_load(load, service_rate=0.2, servers=16)
        mean_series.add(load, model.response_time_mean())
        std_series.add(load, model.response_time_std())
        wc_series.add(load, model.wc())
    table.add_series(mean_series)
    table.add_series(std_series)
    table.add_series(wc_series)
    return ExperimentResult(
        experiment_id="mmc_baseline",
        description="Analytical RT mean/std across loads (Section 4.1)",
        tables=[table],
        paper_expectations=[
            "for arrival rates below 1 transaction/second (load < 5 CPUs) "
            "both the mean and the standard deviation stay at 5",
            "beyond that they start to diverge from the baseline value",
        ],
    )
