"""The fault-scenario spec: a timeline of injections plus ground truth.

A :class:`FaultScenario` is everything one adversarial experiment needs,
as plain picklable data: the system configuration, the baseline arrival
spec, the injection timeline, the number of transactions to drive, and
-- crucially -- the **ground-truth degradation intervals**: the spans of
simulated time during which the system genuinely needs rejuvenation.
The robustness scorer (:mod:`repro.faults.score`) compares each
policy's trigger times against these intervals; a trigger inside an
interval is a detection, a trigger outside every interval is a false
alarm.

Scenarios serialise to/from plain dicts (:meth:`FaultScenario.to_dict`
/ :func:`scenario_from_dict`) and therefore to YAML or JSON files
(:func:`load_scenario` -- YAML when PyYAML is importable, JSON always).
Open-ended intervals use ``null`` for the end in serialised form.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, fields
from typing import Any, Dict, List, Tuple

from repro.ecommerce.config import SystemConfig
from repro.ecommerce.spec import ArrivalSpec
from repro.faults.injectors import (
    INJECTION_NAMES,
    INJECTION_TYPES,
    FaultInjection,
)


@dataclass(frozen=True)
class FaultScenario:
    """One adversarial experiment, as plain data.

    Parameters
    ----------
    name, description:
        Identification (the zoo keys scenarios by ``name``).
    config:
        System parameters the scenario runs under.
    arrival:
        Baseline arrival source (an :class:`ArrivalSpec`); injections
        may replace it mid-run.
    n_transactions:
        Arrivals to generate per replication (sets the run length).
    injections:
        The fault timeline, armed at the start of every run.
    degraded:
        Ground-truth degradation intervals ``(start_s, end_s)`` on the
        simulated clock, sorted and non-overlapping; ``math.inf`` as an
        end means "until the run ends".
    horizon_s:
        The nominal duration the timeline was laid out for (metadata
        for readers and the CLI; the actual run length is set by
        ``n_transactions``).
    """

    name: str
    description: str
    config: SystemConfig
    arrival: ArrivalSpec
    n_transactions: int
    injections: Tuple[FaultInjection, ...] = ()
    degraded: Tuple[Tuple[float, float], ...] = ()
    horizon_s: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario needs a name")
        if self.n_transactions < 1:
            raise ValueError("need at least one transaction")
        object.__setattr__(self, "injections", tuple(self.injections))
        intervals = tuple(
            (float(start), float(end)) for start, end in self.degraded
        )
        previous_end = -math.inf
        for start, end in intervals:
            if start < 0:
                raise ValueError("degradation intervals start at t >= 0")
            if end <= start:
                raise ValueError(
                    f"degradation interval ({start}, {end}) is empty"
                )
            if start < previous_end:
                raise ValueError(
                    "degradation intervals must be sorted and disjoint"
                )
            previous_end = end
        object.__setattr__(self, "degraded", intervals)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (JSON/YAML-safe; open ends become ``None``)."""
        return {
            "name": self.name,
            "description": self.description,
            "config": asdict(self.config),
            "arrival": {
                "kind": self.arrival.kind,
                "params": dict(self.arrival.params),
            },
            "n_transactions": self.n_transactions,
            "injections": [
                _injection_to_dict(injection)
                for injection in self.injections
            ],
            "degraded": [
                [start, None if math.isinf(end) else end]
                for start, end in self.degraded
            ],
            "horizon_s": self.horizon_s,
        }

    def describe(self) -> str:
        """One line: name, run length, injections, ground truth."""
        return (
            f"{self.name}: {self.description} "
            f"[{len(self.injections)} injection(s), "
            f"{len(self.degraded)} degraded interval(s), "
            f"{self.n_transactions} transactions]"
        )


def _injection_to_dict(injection: FaultInjection) -> Dict[str, Any]:
    cls = type(injection)
    try:
        type_name = INJECTION_NAMES[cls]
    except KeyError:
        raise ValueError(
            f"injection class {cls.__name__} is not registered in "
            "INJECTION_TYPES"
        ) from None
    payload: Dict[str, Any] = {"type": type_name}
    for field in fields(injection):
        value = getattr(injection, field.name)
        if isinstance(value, ArrivalSpec):
            value = {"kind": value.kind, "params": dict(value.params)}
        payload[field.name] = value
    return payload


def _injection_from_dict(payload: Dict[str, Any]) -> FaultInjection:
    data = dict(payload)
    try:
        type_name = data.pop("type")
    except KeyError:
        raise ValueError(
            f"injection entry {payload!r} has no 'type' key"
        ) from None
    try:
        cls = INJECTION_TYPES[type_name]
    except KeyError:
        raise ValueError(
            f"unknown injection type {type_name!r}; available: "
            f"{', '.join(sorted(INJECTION_TYPES))}"
        ) from None
    arrival = data.get("arrival")
    if isinstance(arrival, dict):
        data["arrival"] = ArrivalSpec(
            kind=arrival["kind"], params=arrival.get("params", {})
        )
    return cls(**data)


def scenario_from_dict(payload: Dict[str, Any]) -> FaultScenario:
    """Rebuild a scenario from its :meth:`FaultScenario.to_dict` form.

    The ``config`` entry accepts either the full
    :class:`~repro.ecommerce.config.SystemConfig` field dict or the
    shorthand ``{"without_degradation": true, "overrides": {...}}``
    applied on top of the paper defaults.
    """
    data = dict(payload)
    config_data = data.get("config", {})
    if "cpus" in config_data:
        config = SystemConfig(**config_data)
    else:
        config = SystemConfig(**config_data.get("overrides", {}))
        if config_data.get("without_degradation"):
            config = config.without_degradation()
    arrival = data["arrival"]
    if isinstance(arrival, dict):
        arrival = ArrivalSpec(
            kind=arrival["kind"], params=arrival.get("params", {})
        )
    degraded = tuple(
        (float(start), math.inf if end is None else float(end))
        for start, end in data.get("degraded", ())
    )
    return FaultScenario(
        name=data["name"],
        description=data.get("description", ""),
        config=config,
        arrival=arrival,
        n_transactions=int(data["n_transactions"]),
        injections=tuple(
            _injection_from_dict(entry)
            for entry in data.get("injections", ())
        ),
        degraded=degraded,
        horizon_s=float(data.get("horizon_s", 0.0)),
    )


def load_scenario(path: str) -> FaultScenario:
    """Load a scenario file: YAML when PyYAML is available, else JSON.

    JSON is a subset of YAML, so with PyYAML installed both formats
    load through the same parser; without it, the file must be JSON.
    """
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    try:
        import yaml  # type: ignore[import-untyped]
    except ImportError:
        payload = json.loads(text)
    else:
        payload = yaml.safe_load(text)
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: expected a mapping at the top level")
    return scenario_from_dict(payload)


def save_scenario(scenario: FaultScenario, path: str) -> None:
    """Write a scenario as JSON (loadable by :func:`load_scenario`)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(scenario.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")


def clip_intervals(
    degraded: Tuple[Tuple[float, float], ...], duration_s: float
) -> List[Tuple[float, float]]:
    """Ground-truth intervals clipped to the realised run duration.

    Intervals that never started before the run ended are dropped (the
    degradation did not happen, so it can be neither detected nor
    missed).
    """
    clipped = []
    for start, end in degraded:
        if start >= duration_s:
            continue
        clipped.append((start, min(end, duration_s)))
    return clipped
