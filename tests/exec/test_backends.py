"""The execution backends: selection, env resolution, progress, order."""

import pickle

import pytest

from repro.exec.backends import (
    BACKEND_NAMES,
    ProcessPoolBackend,
    SerialBackend,
    current_backend,
    make_backend,
    resolve_backend,
    use_backend,
    workers_from_env,
)
from repro.exec.progress import JobEvent, ProgressPrinter, StageTimer


def _square(x):
    return x * x


class _Unpicklable:
    """A callable job that cannot cross a process boundary."""

    def __init__(self):
        self.fn = lambda: None  # lambdas do not pickle

    def __call__(self):
        return 42


class TestSerialBackend:
    def test_maps_in_order(self):
        assert SerialBackend().map(_square, [3, 1, 2]) == [9, 1, 4]

    def test_name(self):
        assert SerialBackend().name == "serial"

    def test_empty(self):
        assert SerialBackend().map(_square, []) == []

    def test_progress_events(self):
        events = []
        backend = SerialBackend(progress=events.append)
        backend.map(_square, [1, 2, 3])
        assert [e.done for e in events] == [1, 2, 3]
        assert all(e.total == 3 for e in events)
        assert [e.index for e in events] == [0, 1, 2]
        assert all(e.elapsed_s >= 0 and e.job_s >= 0 for e in events)

    def test_call_site_progress_overrides_default(self):
        default_events, call_events = [], []
        backend = SerialBackend(progress=default_events.append)
        backend.map(_square, [1], progress=call_events.append)
        assert not default_events
        assert len(call_events) == 1


class TestProcessPoolBackend:
    def test_maps_in_submission_order(self):
        backend = ProcessPoolBackend(workers=2)
        assert backend.map(_square, list(range(8))) == [
            x * x for x in range(8)
        ]

    def test_name_and_workers(self):
        backend = ProcessPoolBackend(workers=3)
        assert backend.name == "process"
        assert backend.workers == 3

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            ProcessPoolBackend(workers=0)

    def test_unpicklable_jobs_fall_back_to_parent(self):
        # One picklable call plus one that cannot be sent to a worker:
        # the pool handles the former, the parent runs the latter, and
        # the result order still matches submission order.
        backend = ProcessPoolBackend(workers=2)
        results = backend.map(
            lambda job: job(), [_Unpicklable(), _Unpicklable()]
        )
        assert results == [42, 42]

    def test_progress_counts_every_job(self):
        events = []
        backend = ProcessPoolBackend(workers=2, progress=events.append)
        backend.map(_square, [1, 2, 3, 4])
        assert [e.done for e in events] == [1, 2, 3, 4]
        assert all(e.total == 4 for e in events)


class TestMakeBackend:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert make_backend().name == "serial"

    def test_auto_promotes_on_workers(self):
        backend = make_backend("auto", workers=4)
        assert backend.name == "process"
        assert backend.workers == 4

    def test_explicit_serial_wins_over_workers(self):
        assert make_backend("serial", workers=4).name == "serial"

    def test_env_workers(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        monkeypatch.setenv("REPRO_WORKERS", "3")
        backend = make_backend()
        assert backend.name == "process"
        assert backend.workers == 3

    def test_env_backend_name(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "serial")
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert make_backend().name == "serial"

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_backend("threads")

    def test_bad_env_workers_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ValueError):
            workers_from_env()
        monkeypatch.setenv("REPRO_WORKERS", "0")
        with pytest.raises(ValueError):
            workers_from_env()

    def test_names_registry(self):
        assert BACKEND_NAMES == ("serial", "process")


class TestBackendContext:
    def test_default_stack(self):
        assert current_backend().name == "serial"
        replacement = ProcessPoolBackend(workers=2)
        with use_backend(replacement):
            assert current_backend() is replacement
            with use_backend(SerialBackend()):
                assert current_backend().name == "serial"
            assert current_backend() is replacement
        assert current_backend().name == "serial"

    def test_resolve_backend_variants(self):
        assert resolve_backend(None).name == "serial"
        assert resolve_backend("serial").name == "serial"
        backend = ProcessPoolBackend(workers=2)
        assert resolve_backend(backend) is backend
        with use_backend(backend):
            assert resolve_backend(None) is backend


class TestProgressPrinter:
    def test_prints_final_event(self):
        lines = []

        class Stream:
            def write(self, text):
                lines.append(text)

            def flush(self):
                pass

        printer = ProgressPrinter(
            stream=Stream(), min_interval_s=3600.0, label="t"
        )
        printer(JobEvent(index=0, done=1, total=2, elapsed_s=0.5, job_s=0.5))
        printer(JobEvent(index=1, done=2, total=2, elapsed_s=1.0, job_s=0.5))
        text = "".join(lines)
        assert "2/2 jobs" in text  # final event always printed
        assert "[t]" in text


class TestStageTimer:
    def test_accumulates_stages(self):
        timer = StageTimer()
        with timer.stage("alpha"):
            pass
        with timer.stage("beta"):
            pass
        assert list(timer.stages) == ["alpha", "beta"]
        assert timer.total_s >= 0.0
        report = timer.report()
        assert "alpha" in report and "beta" in report

    def test_events_are_picklable(self):
        event = JobEvent(index=0, done=1, total=1, elapsed_s=0.0, job_s=0.0)
        assert pickle.loads(pickle.dumps(event)) == event
