"""Scenario spec: validation, serialisation round-trips, the zoo."""

import math
import pickle

import pytest

from repro.ecommerce.config import PAPER_CONFIG
from repro.ecommerce.spec import ArrivalSpec
from repro.faults.injectors import (
    NodeHang,
    ServiceSlowdown,
    WorkloadShift,
)
from repro.faults.scenario import (
    FaultScenario,
    clip_intervals,
    load_scenario,
    save_scenario,
    scenario_from_dict,
)
from repro.faults.zoo import (
    MIN_HORIZON_S,
    builtin_scenarios,
    get_scenario,
    scenario_names,
)

BASE = PAPER_CONFIG.without_degradation()


def make_scenario(**overrides):
    fields = dict(
        name="demo",
        description="a demo scenario",
        config=BASE,
        arrival=ArrivalSpec.poisson(1.5),
        n_transactions=100,
        injections=(
            NodeHang(at_s=50.0, hang_s=15.0),
            ServiceSlowdown(at_s=200.0, factor=3.0),
        ),
        degraded=((200.0, math.inf),),
        horizon_s=400.0,
    )
    fields.update(overrides)
    return FaultScenario(**fields)


class TestValidation:
    def test_needs_a_name(self):
        with pytest.raises(ValueError):
            make_scenario(name="")

    def test_needs_transactions(self):
        with pytest.raises(ValueError):
            make_scenario(n_transactions=0)

    def test_rejects_empty_interval(self):
        with pytest.raises(ValueError):
            make_scenario(degraded=((10.0, 10.0),))

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            make_scenario(degraded=((-1.0, 10.0),))

    def test_rejects_overlapping_intervals(self):
        with pytest.raises(ValueError):
            make_scenario(degraded=((0.0, 20.0), (10.0, 30.0)))

    def test_rejects_unsorted_intervals(self):
        with pytest.raises(ValueError):
            make_scenario(degraded=((50.0, 60.0), (10.0, 20.0)))

    def test_touching_intervals_are_fine(self):
        scenario = make_scenario(degraded=((0.0, 20.0), (20.0, 30.0)))
        assert len(scenario.degraded) == 2


class TestSerialisation:
    def test_dict_round_trip_is_identity(self):
        scenario = make_scenario()
        assert scenario_from_dict(scenario.to_dict()) == scenario

    def test_round_trip_with_arrival_spec_injection(self):
        scenario = make_scenario(
            injections=(
                WorkloadShift(
                    at_s=5.0, arrival=ArrivalSpec.mmpp(1.0, 5.0, 30.0, 10.0)
                ),
            )
        )
        assert scenario_from_dict(scenario.to_dict()) == scenario

    def test_open_interval_serialises_as_none(self):
        payload = make_scenario().to_dict()
        assert payload["degraded"] == [[200.0, None]]

    def test_file_round_trip(self, tmp_path):
        scenario = make_scenario()
        path = str(tmp_path / "demo.json")
        save_scenario(scenario, path)
        assert load_scenario(path) == scenario

    def test_config_shorthand(self):
        payload = make_scenario().to_dict()
        payload["config"] = {"without_degradation": True}
        rebuilt = scenario_from_dict(payload)
        assert rebuilt.config == BASE

    def test_unknown_injection_type_rejected(self):
        payload = make_scenario().to_dict()
        payload["injections"][0]["type"] = "gremlins"
        with pytest.raises(ValueError, match="unknown injection type"):
            scenario_from_dict(payload)

    def test_missing_injection_type_rejected(self):
        payload = make_scenario().to_dict()
        del payload["injections"][0]["type"]
        with pytest.raises(ValueError, match="no 'type' key"):
            scenario_from_dict(payload)


class TestClipIntervals:
    def test_clips_open_end_to_duration(self):
        assert clip_intervals(((100.0, math.inf),), 500.0) == [
            (100.0, 500.0)
        ]

    def test_drops_unrealised_interval(self):
        assert clip_intervals(((600.0, math.inf),), 500.0) == []

    def test_keeps_closed_interval_inside_run(self):
        assert clip_intervals(((10.0, 20.0),), 500.0) == [(10.0, 20.0)]


class TestZoo:
    def test_names_match_builders(self):
        names = scenario_names()
        assert "false_aging" in names
        assert len(names) >= 6
        zoo = builtin_scenarios()
        assert tuple(zoo) == names

    def test_every_scenario_round_trips_and_pickles(self):
        for scenario in builtin_scenarios(600.0).values():
            assert scenario_from_dict(scenario.to_dict()) == scenario
            assert pickle.loads(pickle.dumps(scenario)) == scenario

    def test_horizon_scales_timeline(self):
        short = get_scenario("aging_onset", 600.0)
        long = get_scenario("aging_onset", 3600.0)
        assert short.injections[0].at_s == pytest.approx(300.0)
        assert long.injections[0].at_s == pytest.approx(1800.0)
        assert short.n_transactions < long.n_transactions

    def test_rejects_too_short_horizon(self):
        with pytest.raises(ValueError):
            get_scenario("aging_onset", MIN_HORIZON_S / 2)

    def test_workload_ramp_is_saturation_then_aging(self):
        import math as _math

        scenario = get_scenario("workload_ramp", 3600.0)
        ramp, slowdown = scenario.injections
        # The ramp itself is healthy ground truth: only the slowdown
        # opens a degraded interval.
        assert type(ramp).__name__ == "WorkloadRamp"
        assert scenario.degraded == ((slowdown.at_s, _math.inf),)
        assert ramp.end_s < slowdown.at_s
        assert ramp.to_rate > ramp.from_rate

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            get_scenario("nonesuch")
