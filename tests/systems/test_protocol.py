"""The System protocol: registry, resolution, spec round trips, obs."""

import pytest

from repro.ecommerce.metrics import RunResult
from repro.systems import (
    SYSTEM_KINDS,
    ClusterSpec,
    EcommerceSpec,
    FleetSpec,
    ObsSpec,
    SchedulerSpec,
    resolve_system,
    system_spec_from_dict,
)


class TestRegistry:
    def test_builtin_kinds_registered(self):
        assert set(SYSTEM_KINDS) >= {"ecommerce", "cluster", "fleet"}

    def test_kind_attribute_matches_key(self):
        for kind, cls in SYSTEM_KINDS.items():
            assert cls.kind == kind


class TestResolveSystem:
    def test_none_is_the_single_node(self):
        assert isinstance(resolve_system(None), EcommerceSpec)

    def test_kind_name_builds_defaults(self):
        spec = resolve_system("cluster")
        assert isinstance(spec, ClusterSpec)
        assert spec.n_nodes == 4

    def test_spec_passes_through(self):
        spec = FleetSpec(n_nodes=8, shards=2)
        assert resolve_system(spec) is spec

    def test_mapping_revives(self):
        spec = resolve_system({"kind": "fleet", "n_nodes": 8, "shards": 2})
        assert spec == FleetSpec(n_nodes=8, shards=2)

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown system kind"):
            resolve_system("mainframe")

    def test_garbage_raises(self):
        with pytest.raises(TypeError):
            resolve_system(42)


class TestSpecRoundTrips:
    @pytest.mark.parametrize(
        "spec",
        [
            EcommerceSpec(),
            ClusterSpec(n_nodes=3, balancer="jsq"),
            ClusterSpec(
                n_nodes=6,
                scheduler=SchedulerSpec.rolling(capacity_floor=0.5),
            ),
            FleetSpec(n_nodes=20, shards=4),
            FleetSpec(
                n_nodes=20,
                shards=2,
                scheduler=SchedulerSpec.canary(
                    canary_soak_s=30.0, pod_size=5
                ),
            ),
        ],
    )
    def test_to_dict_from_dict_identity(self, spec):
        payload = spec.to_dict()
        assert payload["kind"] == spec.kind
        assert system_spec_from_dict(payload) == spec

    def test_payload_is_plain_data(self):
        import json

        spec = FleetSpec(scheduler=SchedulerSpec.rolling(min_gap_s=5.0))
        json.dumps(spec.to_dict())  # must not raise

    def test_missing_kind_raises(self):
        with pytest.raises(ValueError, match="kind"):
            system_spec_from_dict({"n_nodes": 4})


class TestJobTransactions:
    def test_single_node_identity(self):
        assert EcommerceSpec().job_transactions(1000) == 1000

    def test_cluster_scales_with_nodes(self):
        assert ClusterSpec(n_nodes=4).job_transactions(1000) == 4000

    def test_fleet_scales_with_nodes(self):
        assert FleetSpec(n_nodes=10, shards=2).job_transactions(100) == 1000

    def test_scaling_can_be_disabled(self):
        spec = ClusterSpec(n_nodes=4, scale_transactions=False)
        assert spec.job_transactions(1000) == 1000


class TestSpecValidation:
    def test_cluster_needs_a_node(self):
        with pytest.raises(ValueError):
            ClusterSpec(n_nodes=0)

    def test_unknown_balancer(self):
        with pytest.raises(ValueError, match="balancer"):
            ClusterSpec(balancer="psychic")

    def test_fleet_shards_bounded_by_nodes(self):
        with pytest.raises(ValueError):
            FleetSpec(n_nodes=4, shards=5)

    def test_pod_straddling_shards_rejected(self):
        # 10 nodes / 2 shards -> offsets 0 and 5; pods of 4 straddle.
        with pytest.raises(ValueError, match="straddles"):
            FleetSpec(
                n_nodes=10,
                shards=2,
                scheduler=SchedulerSpec.rolling(pod_size=4),
            )


class TestObsSinks:
    def test_empty_spec_builds_no_sinks(self):
        sinks = ObsSpec().build()
        assert sinks.sink is None
        assert sinks.tracer is None
        assert sinks.tap is None
        assert sinks.profiler is None

    def test_decorate_is_identity_without_instrumentation(self):
        sinks = ObsSpec().build()
        result = RunResult(
            arrivals=1,
            completed=1,
            lost=0,
            avg_response_time=1.0,
            rt_std=0.0,
            max_response_time=1.0,
            loss_fraction=0.0,
            gc_count=0,
            rejuvenations=0,
            sim_duration_s=1.0,
        )
        assert sinks.decorate(result) is result

    def test_trace_level_builds_a_tracer(self):
        sinks = ObsSpec(trace_level="spans").build()
        assert sinks.tracer is not None
        assert sinks.sink is sinks.tracer


class TestManifestIdentity:
    """The substrate is part of a job's hashed identity -- but only
    when one was actually selected, so pre-protocol hashes survive."""

    def _job(self, system):
        from repro.ecommerce.config import PAPER_CONFIG
        from repro.ecommerce.spec import ArrivalSpec
        from repro.exec.jobs import ReplicationJob

        return ReplicationJob(
            config=PAPER_CONFIG,
            arrival=ArrivalSpec.poisson(1.6),
            policy=None,
            n_transactions=100,
            seed=0,
            system=system,
        )

    def test_default_jobs_have_no_system_key(self):
        assert "system" not in self._job(None).manifest_dict()

    def test_substrate_recorded_when_selected(self):
        manifest = self._job(FleetSpec(n_nodes=8, shards=2)).manifest_dict()
        assert manifest["system"]["kind"] == "fleet"
        assert manifest["system"]["n_nodes"] == 8

    def test_campaign_manifest_hash_moves_with_substrate(self):
        from repro.faults.zoo import get_scenario
        from repro.obs.ledger.manifest import campaign_manifest

        scenario = get_scenario("false_aging", 600.0)
        base = campaign_manifest([scenario], {"SRAA": None}, 1, seed=0)
        fleet = campaign_manifest(
            [scenario],
            {"SRAA": None},
            1,
            seed=0,
            system=FleetSpec(n_nodes=8, shards=2),
        )
        assert "system" not in base.spec
        assert base.manifest_hash != fleet.manifest_hash
