"""Mann-Kendall, Theil-Sen and the exhaustion extrapolation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.trend import (
    least_squares_slope,
    mann_kendall,
    theil_sen_slope,
    time_to_level,
)


class TestMannKendall:
    def test_strictly_increasing(self):
        result = mann_kendall(list(range(20)))
        assert result.increasing
        assert result.significant()
        assert result.slope == pytest.approx(1.0)

    def test_strictly_decreasing(self):
        result = mann_kendall(list(range(20, 0, -1)))
        assert not result.increasing
        assert result.significant()

    def test_white_noise_insignificant(self):
        rng = np.random.default_rng(0)
        insignificant = 0
        for _ in range(20):
            if not mann_kendall(rng.normal(size=50)).significant():
                insignificant += 1
        assert insignificant >= 17  # alpha = 0.05

    def test_constant_series(self):
        result = mann_kendall([3.0] * 10)
        assert result.p_value == 1.0
        assert not result.significant()

    def test_trend_in_noise_detected(self):
        rng = np.random.default_rng(1)
        series = np.arange(60) * 0.5 + rng.normal(scale=2.0, size=60)
        assert mann_kendall(series).significant()

    def test_ties_handled(self):
        series = [1.0, 1.0, 2.0, 2.0, 3.0, 3.0, 4.0, 4.0]
        result = mann_kendall(series)
        assert result.increasing
        assert result.p_value < 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            mann_kendall([1.0, 2.0])
        with pytest.raises(ValueError):
            mann_kendall([1.0, 2.0, 3.0]).significant(alpha=0.0)

    @given(st.lists(st.floats(min_value=-100, max_value=100), min_size=3,
                    max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_property_pvalue_in_unit_interval(self, values):
        result = mann_kendall(values)
        assert 0.0 <= result.p_value <= 1.0

    @given(st.lists(st.floats(min_value=-100, max_value=100), min_size=3,
                    max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_property_reversal_negates_statistic(self, values):
        forward = mann_kendall(values)
        backward = mann_kendall(values[::-1])
        assert forward.statistic == pytest.approx(-backward.statistic)


class TestTheilSen:
    def test_exact_line(self):
        assert theil_sen_slope([1.0, 3.0, 5.0, 7.0]) == pytest.approx(2.0)

    def test_robust_to_outlier(self):
        clean = list(np.arange(20) * 1.0)
        clean[10] = 500.0  # one wild outlier
        assert theil_sen_slope(clean) == pytest.approx(1.0, abs=0.15)

    def test_validation(self):
        with pytest.raises(ValueError):
            theil_sen_slope([1.0])


class TestLeastSquares:
    def test_exact_line(self):
        slope, intercept, stderr = least_squares_slope(
            [0.0, 1.0, 2.0, 3.0], [5.0, 7.0, 9.0, 11.0]
        )
        assert slope == pytest.approx(2.0)
        assert intercept == pytest.approx(5.0)
        assert stderr == pytest.approx(0.0, abs=1e-10)

    def test_two_points_infinite_stderr(self):
        slope, _, stderr = least_squares_slope([0.0, 1.0], [0.0, 3.0])
        assert slope == pytest.approx(3.0)
        assert stderr == float("inf")

    def test_noisy_recovery(self):
        rng = np.random.default_rng(2)
        t = np.linspace(0, 100, 200)
        y = 4.0 - 0.3 * t + rng.normal(scale=1.0, size=200)
        slope, _, stderr = least_squares_slope(t, y)
        assert slope == pytest.approx(-0.3, abs=3 * stderr + 0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            least_squares_slope([1.0], [1.0])
        with pytest.raises(ValueError):
            least_squares_slope([1.0, 2.0], [1.0, 2.0, 3.0])
        with pytest.raises(ValueError):
            least_squares_slope([1.0, 1.0], [1.0, 2.0])


class TestTimeToLevel:
    def test_draining_resource(self):
        # Free heap falling 10 units/s from 1000 at t=0; level 100
        # crossed at t=90.
        times = [0.0, 1.0, 2.0, 3.0]
        values = [1000.0, 990.0, 980.0, 970.0]
        assert time_to_level(times, values, 100.0) == pytest.approx(90.0)

    def test_flat_resource_never_crosses(self):
        assert time_to_level(
            [0.0, 1.0, 2.0], [500.0, 500.0, 500.0], 100.0
        ) == float("inf")

    def test_recovering_resource_never_crosses(self):
        # Level below, trend pointing up: crossing was in the past and
        # will not recur.
        assert time_to_level(
            [0.0, 1.0, 2.0], [500.0, 600.0, 700.0], 100.0
        ) == float("inf")

    def test_already_exhausted_returns_now(self):
        times = [0.0, 1.0, 2.0]
        values = [120.0, 100.0, 80.0]  # already at/below level 100
        assert time_to_level(times, values, 100.0) <= 2.0 + 1e-9

    def test_rising_metric_towards_ceiling(self):
        # Works symmetrically for a metric growing towards a cap.
        times = [0.0, 1.0, 2.0]
        values = [10.0, 20.0, 30.0]
        assert time_to_level(
            times, values, 100.0, direction="rising"
        ) == pytest.approx(9.0)

    def test_falling_metric_below_ceiling_never_crosses(self):
        # Ceiling semantics with a falling metric: no exhaustion.
        assert time_to_level(
            [0.0, 1.0, 2.0], [50.0, 40.0, 30.0], 100.0, direction="rising"
        ) == float("inf")

    def test_direction_validation(self):
        with pytest.raises(ValueError):
            time_to_level([0.0, 1.0], [1.0, 2.0], 5.0, direction="sideways")
