"""Proactive resource-exhaustion rejuvenation (after Castelli et al. 2001).

The related work describes IBM Director's approach: "proactive software
rejuvenation using statistical estimation of resource exhaustion".
Instead of the customer-affecting metric, this policy watches a
*resource* signal (e.g. free heap) sampled over time, fits a linear
trend, extrapolates when the resource crosses its critical level, and
triggers rejuvenation when that predicted exhaustion falls within the
planning horizon.

It deliberately embodies the strategy the paper argues is insufficient
on its own (resource metrics were being watched while response time
degraded unnoticed) -- making it the baseline that shows what
customer-affecting-metric monitoring adds.  The e-commerce simulator can
drive it through :meth:`ECommerceSystem` telemetry or any caller can
feed ``observe_resource`` directly.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

from repro.core.base import RejuvenationPolicy
from repro.stats.trend import time_to_level


class ResourceExhaustionPolicy(RejuvenationPolicy):
    """Trigger when extrapolated resource exhaustion is imminent.

    Parameters
    ----------
    critical_level:
        The resource level that counts as exhausted (e.g. the GC
        threshold of 100 MB free heap).
    horizon_s:
        Trigger when the predicted crossing lies within this many
        seconds of now.
    window:
        Number of recent ``(time, level)`` samples fitted (>= 3).
    direction:
        ``"falling"`` (default) treats the level as a floor the
        resource drains towards; ``"rising"`` as a ceiling a usage
        metric climbs towards.

    Notes
    -----
    This policy consumes *resource* samples via
    :meth:`observe_resource`; the :meth:`observe` method of the common
    interface accepts plain metric values only for API compatibility and
    never triggers (a response time carries no resource information).
    """

    name = "resource-exhaustion"

    def __init__(
        self,
        critical_level: float,
        horizon_s: float,
        window: int = 20,
        direction: str = "falling",
    ) -> None:
        if horizon_s <= 0:
            raise ValueError("horizon must be positive")
        if window < 3:
            raise ValueError("window must hold at least 3 samples")
        if direction not in ("falling", "rising"):
            raise ValueError("direction must be 'falling' or 'rising'")
        self.critical_level = float(critical_level)
        self.horizon_s = float(horizon_s)
        self.window = int(window)
        self.direction = direction
        self._samples: Deque[Tuple[float, float]] = deque(maxlen=self.window)
        self.last_prediction_s = float("inf")

    # ------------------------------------------------------------------
    def observe_resource(self, time_s: float, level: float) -> bool:
        """Feed one ``(time, resource level)`` sample; decide."""
        if self._samples and time_s < self._samples[-1][0]:
            raise ValueError("resource samples must arrive in time order")
        self._samples.append((float(time_s), float(level)))
        if len(self._samples) < self.window:
            return False
        times = [t for t, _ in self._samples]
        levels = [v for _, v in self._samples]
        if len(set(times)) < 2:
            return False
        crossing = time_to_level(
            times, levels, self.critical_level, direction=self.direction
        )
        self.last_prediction_s = crossing
        if crossing - time_s <= self.horizon_s:
            self.reset()
            return True
        return False

    def observe(self, value: float) -> bool:
        """Metric observations carry no resource signal: never trigger."""
        return False

    def reset(self) -> None:
        """Drop all samples and the cached prediction."""
        self._samples.clear()
        self.last_prediction_s = float("inf")

    def describe(self) -> str:
        return (
            f"ResourceExhaustion(level={self.critical_level:g}, "
            f"horizon={self.horizon_s:g}s, window={self.window})"
        )
