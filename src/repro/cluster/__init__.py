"""Cluster deployment of the rejuvenation algorithms.

The companion paper ([2], Avritzer, Bondi & Weyuker, *Journal of Systems
and Software* 2006) extends the single-server algorithms "to clusters of
hosts".  This package provides that deployment on top of the shared
:class:`~repro.ecommerce.node.ProcessingNode` mechanics:

* :mod:`~repro.cluster.balancer` -- dispatching policies (round-robin,
  random, join-shortest-queue, weighted round-robin);
* :class:`~repro.cluster.system.ClusterSystem` -- N nodes behind a
  balancer, each with its own rejuvenation policy watching its own
  response times;
* :class:`~repro.cluster.coordinator.RollingCoordinator` -- cluster-wide
  constraints so rejuvenations roll through the cluster instead of
  taking several nodes out simultaneously.
"""

from repro.cluster.balancer import (
    JoinShortestQueue,
    LoadBalancer,
    RandomBalancer,
    RoundRobin,
    WeightedRoundRobin,
)
from repro.cluster.coordinator import RollingCoordinator
from repro.cluster.metrics import ClusterResult, NodeStats
from repro.cluster.system import ClusterSystem

__all__ = [
    "ClusterResult",
    "ClusterSystem",
    "JoinShortestQueue",
    "LoadBalancer",
    "NodeStats",
    "RandomBalancer",
    "RollingCoordinator",
    "RoundRobin",
    "WeightedRoundRobin",
]
