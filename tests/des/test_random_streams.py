"""Reproducibility and independence of the named RNG streams."""

import numpy as np
import pytest

from repro.des.random_streams import RandomStreams


class TestReproducibility:
    def test_same_seed_same_stream(self):
        a = RandomStreams(seed=42)["arrivals"].random(10)
        b = RandomStreams(seed=42)["arrivals"].random(10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RandomStreams(seed=1)["arrivals"].random(10)
        b = RandomStreams(seed=2)["arrivals"].random(10)
        assert not np.array_equal(a, b)

    def test_streams_by_name_are_distinct(self):
        streams = RandomStreams(seed=7)
        a = streams["arrivals"].random(10)
        s = streams["service"].random(10)
        assert not np.array_equal(a, s)

    def test_stream_name_order_does_not_matter(self):
        forward = RandomStreams(seed=3)
        _ = forward["arrivals"].random(5)
        service_after = forward["service"].random(5)
        backward = RandomStreams(seed=3)
        service_first = backward["service"].random(5)
        assert np.array_equal(service_after, service_first)

    def test_repeated_lookup_returns_same_generator(self):
        streams = RandomStreams(seed=0)
        assert streams["x"] is streams["x"]


class TestSpawn:
    def test_replications_are_distinct(self):
        base = RandomStreams(seed=11)
        rep0 = base.spawn(0)["arrivals"].random(10)
        rep1 = base.spawn(1)["arrivals"].random(10)
        assert not np.array_equal(rep0, rep1)

    def test_spawn_is_reproducible(self):
        a = RandomStreams(seed=11).spawn(3)["arrivals"].random(10)
        b = RandomStreams(seed=11).spawn(3)["arrivals"].random(10)
        assert np.array_equal(a, b)

    def test_negative_replication_rejected(self):
        with pytest.raises(ValueError):
            RandomStreams(seed=0).spawn(-1)


class TestIntrospection:
    def test_names_lists_created_streams(self):
        streams = RandomStreams(seed=0)
        _ = streams["alpha"], streams["beta"]
        assert set(streams.names()) == {"alpha", "beta"}

    def test_streams_are_statistically_plausible(self):
        # Coarse sanity: exponential draws with the requested mean.
        rng = RandomStreams(seed=5)["service"]
        sample = rng.exponential(5.0, size=20_000)
        assert sample.mean() == pytest.approx(5.0, rel=0.05)
