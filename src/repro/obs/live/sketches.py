"""Streaming aggregators: mergeable sketches for live telemetry.

Live monitoring at the ROADMAP's "millions of users" scale cannot keep
the stream: every aggregator here is *constant memory*, *picklable*,
and *mergeable*, so per-replication state built inside process-pool
workers rides back on ``RunResult.live`` and folds together in job
submission order -- bit-identically between the serial and process-pool
backends (the same contract :class:`~repro.obs.metrics.MetricsRegistry`
honours).

Three aggregators:

:class:`GKSketch`
    A Greenwald-Khanna quantile summary (SIGMOD 2001): answers any
    quantile of an unbounded stream with rank error at most
    ``eps * n`` using ``O((1/eps) * log(eps * n))`` tuples.  Unlike the
    P² estimator in :mod:`repro.stats.quantiles` (five markers, one
    fixed quantile, not mergeable), a GK summary answers *every*
    quantile and two summaries merge deterministically -- the property
    the process-pool fan-out needs.  Merging concatenates the tuple
    lists and re-compresses; the documented (conservative) bound after
    submission-order folds is a rank error of ``2 * eps * n``, pinned
    empirically by ``tests/obs/test_live_sketches.py``.

:class:`RollingWindow`
    The last ``size`` observations with on-demand mean / std / lag-1
    autocorrelation (delegating the moments to
    :class:`~repro.stats.running.OnlineMoments`) -- the short-horizon
    view a dashboard shows next to the all-time quantiles.

:class:`EwmaRate`
    An exponentially weighted event-rate meter on the simulated clock:
    ``rate()`` is events/second with time constant ``tau_s``, the
    "current throughput" number of ``repro top``.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.stats.running import OnlineMoments

#: Default rank-error budget for the quantile sketch (0.5% of n).
DEFAULT_EPS = 0.005

#: Documented worst-case rank-error factor after submission-order merges.
MERGED_ERROR_FACTOR = 2.0


class GKSketch:
    """Greenwald-Khanna epsilon-approximate quantile summary.

    Parameters
    ----------
    eps:
        Rank-error budget: a query for quantile ``q`` over ``n``
        observations returns a value whose rank is within
        ``eps * n`` of ``q * n`` (``2 * eps * n`` after merges).

    Examples
    --------
    >>> sketch = GKSketch(eps=0.01)
    >>> for i in range(10_000):
    ...     sketch.update(float(i))
    >>> abs(sketch.query(0.5) - 5_000) <= 0.01 * 10_000
    True
    """

    __slots__ = ("eps", "count", "_entries", "_compress_every", "_pending")

    def __init__(self, eps: float = DEFAULT_EPS) -> None:
        if not 0.0 < eps < 0.5:
            raise ValueError("eps must lie in (0, 0.5)")
        self.eps = float(eps)
        self.count = 0
        #: ``[value, g, delta]`` triples in ascending value order.
        #: ``g`` is the rank gap to the previous tuple; ``delta`` the
        #: extra rank uncertainty.  Invariant: ``g + delta <= 2*eps*n``.
        self._entries: List[List[float]] = []
        self._compress_every = max(1, int(1.0 / (2.0 * self.eps)))
        self._pending = 0

    @property
    def tuples(self) -> int:
        """Number of summary tuples held (the sketch's actual size)."""
        return len(self._entries)

    # ------------------------------------------------------------------
    def update(self, value: float) -> None:
        """Fold one observation into the summary."""
        value = float(value)
        if math.isnan(value):
            raise ValueError("cannot update with NaN")
        entries = self._entries
        n = self.count
        self.count = n + 1
        if not entries or value < entries[0][0]:
            entries.insert(0, [value, 1, 0])
        elif value >= entries[-1][0]:
            entries.append([value, 1, 0])
        else:
            # Binary search for the first entry with entry value > value.
            lo, hi = 0, len(entries)
            while lo < hi:
                mid = (lo + hi) // 2
                if entries[mid][0] <= value:
                    lo = mid + 1
                else:
                    hi = mid
            delta = int(2.0 * self.eps * n)
            entries.insert(lo, [value, 1, delta])
        self._pending += 1
        if self._pending >= self._compress_every:
            self._compress()

    def extend(self, values) -> None:
        """Fold many observations."""
        for value in values:
            self.update(value)

    def _compress(self) -> None:
        """Merge adjacent tuples while the GK invariant allows it."""
        self._pending = 0
        entries = self._entries
        if len(entries) < 3:
            return
        budget = 2.0 * self.eps * self.count
        # Sweep from the tail; never merge into the last tuple's slot
        # from the first (extremes stay exact).
        i = len(entries) - 2
        while i >= 1:
            mine = entries[i]
            nxt = entries[i + 1]
            if mine[1] + nxt[1] + nxt[2] <= budget:
                nxt[1] += mine[1]
                del entries[i]
            i -= 1

    # ------------------------------------------------------------------
    def query(self, q: float) -> float:
        """The value at quantile ``q`` (rank error ``<= eps * n``)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must lie in [0, 1]")
        entries = self._entries
        if not entries:
            raise ValueError("no observations yet")
        # GK query: the predecessor of the first tuple whose maximum
        # possible rank exceeds the allowed band around the target.
        rank = q * (self.count - 1) + 1.0
        margin = self.eps * self.count
        r_min = 0.0
        best = entries[0][0]
        for entry in entries:
            r_min += entry[1]
            if r_min + entry[2] > rank + margin:
                return best
            best = entry[0]
        return entries[-1][0]

    def quantiles(self, qs: Sequence[float]) -> Tuple[float, ...]:
        """Several quantiles at once."""
        return tuple(self.query(q) for q in qs)

    @property
    def tuples(self) -> int:
        """Summary size in tuples (the constant-memory guarantee)."""
        return len(self._entries)

    # ------------------------------------------------------------------
    def merge(self, other: "GKSketch") -> "GKSketch":
        """A new summary over both streams (deterministic).

        The tuple lists are merged in ascending value order (ties keep
        ``self`` first -- a stable, order-independent rule given the
        operands), then re-compressed against the combined count.  Fold
        replications in job submission order to keep serial and
        process-pool results bit-identical.
        """
        merged = GKSketch(eps=max(self.eps, other.eps))
        merged.count = self.count + other.count
        a, b = self._entries, other._entries
        out: List[List[float]] = []
        i = j = 0
        while i < len(a) and j < len(b):
            if a[i][0] <= b[j][0]:
                out.append(list(a[i]))
                i += 1
            else:
                out.append(list(b[j]))
                j += 1
        out.extend(list(e) for e in a[i:])
        out.extend(list(e) for e in b[j:])
        merged._entries = out
        merged._compress()
        return merged

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GKSketch(eps={self.eps}, count={self.count}, "
            f"tuples={self.tuples})"
        )


class RollingWindow:
    """The last ``size`` observations, with on-demand statistics.

    The window answers the *recent-past* questions a live dashboard
    asks -- "what is the mean / spread / lag-1 autocorrelation of the
    last few hundred response times?" -- in O(size) on demand, O(1)
    per push.  The full-stream moments live in
    :class:`~repro.stats.running.OnlineMoments` next to it.
    """

    __slots__ = ("size", "_values", "_start")

    def __init__(self, size: int = 256) -> None:
        if size < 2:
            raise ValueError("window size must be >= 2")
        self.size = int(size)
        self._values: List[float] = []
        self._start = 0  # circular-buffer head once full

    def push(self, value: float) -> None:
        """Append one observation, evicting the oldest when full."""
        values = self._values
        if len(values) < self.size:
            values.append(float(value))
        else:
            values[self._start] = float(value)
            self._start = (self._start + 1) % self.size

    def values(self) -> Tuple[float, ...]:
        """The window contents, oldest first (an immutable view)."""
        return tuple(
            self._values[self._start:] + self._values[: self._start]
        )

    def moments(self) -> OnlineMoments:
        """Welford moments over the current window."""
        m = OnlineMoments()
        m.extend(self._values)
        return m

    @property
    def mean(self) -> float:
        values = self._values
        return sum(values) / len(values) if values else 0.0

    @property
    def std(self) -> float:
        return self.moments().std

    def autocorr_lag1(self) -> float:
        """Lag-1 autocorrelation of the window (0.0 when undefined).

        The paper's Section-4 observation -- response times are heavily
        autocorrelated under degradation -- as a single live number.
        """
        ordered = self.values()
        n = len(ordered)
        if n < 3:
            return 0.0
        mean = sum(ordered) / n
        denom = sum((x - mean) ** 2 for x in ordered)
        if denom <= 0.0:
            return 0.0
        num = sum(
            (ordered[i] - mean) * (ordered[i + 1] - mean)
            for i in range(n - 1)
        )
        return num / denom

    def merge(self, other: "RollingWindow") -> "RollingWindow":
        """A new window: ``self`` then ``other``, keeping the newest.

        Windows are time-local, so "merge" means concatenation in
        submission order truncated to the window size -- the youngest
        observations of the fold win, deterministically.
        """
        merged = RollingWindow(size=max(self.size, other.size))
        for value in self.values():
            merged.push(value)
        for value in other.values():
            merged.push(value)
        return merged

    def __len__(self) -> int:
        return len(self._values)


class EwmaRate:
    """Exponentially weighted event rate on the simulated clock.

    ``update(ts)`` records one event at simulated time ``ts``;
    :meth:`rate` reports events/second smoothed with time constant
    ``tau_s`` (older events decay with ``exp(-age / tau_s)``).
    """

    __slots__ = ("tau_s", "count", "_weight", "_last_ts")

    def __init__(self, tau_s: float = 60.0) -> None:
        if tau_s <= 0.0:
            raise ValueError("time constant must be positive")
        self.tau_s = float(tau_s)
        self.count = 0
        self._weight = 0.0
        self._last_ts: Optional[float] = None

    def update(self, ts: float, events: float = 1.0) -> None:
        """Record ``events`` occurrences at simulated time ``ts``."""
        ts = float(ts)
        if self._last_ts is not None and ts >= self._last_ts:
            self._weight *= math.exp(-(ts - self._last_ts) / self.tau_s)
        self._weight += float(events)
        self._last_ts = ts
        self.count += int(events)

    @property
    def last_ts(self) -> Optional[float]:
        """Simulated time of the newest event (``None`` before any)."""
        return self._last_ts

    def rate(self, at_ts: Optional[float] = None) -> float:
        """Smoothed events/second, optionally decayed to ``at_ts``."""
        if self._last_ts is None:
            return 0.0
        weight = self._weight
        if at_ts is not None and at_ts > self._last_ts:
            weight *= math.exp(-(at_ts - self._last_ts) / self.tau_s)
        return weight / self.tau_s

    def merge(self, other: "EwmaRate") -> "EwmaRate":
        """A new meter combining both streams.

        Replications run on independent clocks, so the merged rate is
        the *sum* of the operands' final rates (the fleet-wide
        throughput of the replications together), with the event count
        summed and the later clock kept.
        """
        merged = EwmaRate(tau_s=max(self.tau_s, other.tau_s))
        merged.count = self.count + other.count
        merged._weight = (
            self.rate() * merged.tau_s + other.rate() * merged.tau_s
        )
        last_a = self._last_ts if self._last_ts is not None else 0.0
        last_b = other._last_ts if other._last_ts is not None else 0.0
        merged._last_ts = (
            max(last_a, last_b)
            if (self._last_ts is not None or other._last_ts is not None)
            else None
        )
        return merged

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EwmaRate(tau_s={self.tau_s}, rate={self.rate():.4g}/s)"
