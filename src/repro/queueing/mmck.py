"""The finite-buffer ``M/M/c/K`` queue and Erlang-B.

Rejuvenation sheds load by killing transactions; the classical
alternative is *admission control*: bound the number of admitted jobs at
``K`` and refuse the rest.  The M/M/c/K model gives the exact price of
that alternative -- blocking probability and the response time of
admitted jobs -- so the simulated rejuvenation loss can be put side by
side with an analytical loss baseline (see
``examples/capacity_planning.py`` and the admission-control tests).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


def erlang_b(offered_load: float, servers: int) -> float:
    """Erlang-B blocking probability of an ``M/M/c/c`` loss system.

    Computed with the numerically stable recurrence
    ``B(a, c) = a B(a, c-1) / (c + a B(a, c-1))``.
    """
    if offered_load < 0:
        raise ValueError("offered load must be non-negative")
    if servers < 1:
        raise ValueError("at least one server is required")
    blocking = 1.0
    for c in range(1, servers + 1):
        blocking = offered_load * blocking / (c + offered_load * blocking)
    return blocking


@dataclass(frozen=True)
class MMcKModel:
    """An ``M/M/c/K`` queue (``K`` = total capacity, including servers).

    Always stable: excess arrivals are blocked, never queued without
    bound.

    Parameters
    ----------
    arrival_rate, service_rate, servers:
        As in :class:`~repro.queueing.mmc.MMcModel`.
    capacity:
        Maximum jobs in the system (``K >= servers``); ``K == servers``
        is the Erlang loss system.

    Examples
    --------
    >>> model = MMcKModel(1.6, 0.2, servers=16, capacity=16)
    >>> abs(model.blocking_probability() - erlang_b(8.0, 16)) < 1e-12
    True
    """

    arrival_rate: float
    service_rate: float
    servers: int
    capacity: int

    def __post_init__(self) -> None:
        if self.arrival_rate < 0:
            raise ValueError("arrival rate must be non-negative")
        if self.service_rate <= 0:
            raise ValueError("service rate must be positive")
        if self.servers < 1:
            raise ValueError("at least one server is required")
        if self.capacity < self.servers:
            raise ValueError("capacity must be at least the server count")

    # ------------------------------------------------------------------
    @property
    def offered_load(self) -> float:
        """``a = lambda / mu`` in Erlangs."""
        return self.arrival_rate / self.service_rate

    def _unnormalised_probabilities(self) -> np.ndarray:
        a = self.offered_load
        c = self.servers
        terms = np.empty(self.capacity + 1)
        term = 1.0
        terms[0] = term
        for k in range(1, self.capacity + 1):
            divisor = k if k <= c else c
            term *= a / divisor
            terms[k] = term
        return terms

    def state_probability(self, k: int) -> float:
        """Steady-state probability of ``k`` jobs in the system."""
        if not 0 <= k <= self.capacity:
            raise ValueError(
                f"state must lie in [0, {self.capacity}], got {k}"
            )
        terms = self._unnormalised_probabilities()
        return float(terms[k] / terms.sum())

    def blocking_probability(self) -> float:
        """Probability an arrival is refused (PASTA: ``p_K``)."""
        terms = self._unnormalised_probabilities()
        return float(terms[-1] / terms.sum())

    def effective_arrival_rate(self) -> float:
        """Rate of *admitted* transactions."""
        return self.arrival_rate * (1.0 - self.blocking_probability())

    def mean_jobs_in_system(self) -> float:
        """Expected number of jobs present."""
        terms = self._unnormalised_probabilities()
        probabilities = terms / terms.sum()
        return float(np.arange(self.capacity + 1) @ probabilities)

    def response_time_mean(self) -> float:
        """Expected response time of an admitted transaction (Little)."""
        effective = self.effective_arrival_rate()
        if effective == 0.0:
            return 1.0 / self.service_rate
        return self.mean_jobs_in_system() / effective

    def throughput(self) -> float:
        """Completed transactions per second (equals the admitted rate)."""
        return self.effective_arrival_rate()

    @classmethod
    def loss_system(
        cls, arrival_rate: float, service_rate: float, servers: int
    ) -> "MMcKModel":
        """The Erlang loss system ``M/M/c/c`` (no waiting room)."""
        return cls(arrival_rate, service_rate, servers, capacity=servers)
