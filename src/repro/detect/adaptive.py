"""Workload-shift-robust adaptive thresholding (Moura et al.).

The static policies derive their thresholds from one offline SLO; when
the operating point legitimately moves (a load step, a saturation
ramp) the old baseline reads the new healthy plateau as aging.  The
adaptive detector instead learns the healthy baseline *online* from a
rolling window of batch means and recalibrates it whenever the
workload demonstrably shifted, while still suppressing learning during
a suspected degradation so the baseline never chases the very signal
it exists to detect (the :class:`~repro.monitoring.adaptive.AdaptiveSLO`
guard construction, applied to a windowed baseline).

The discriminator between *shift* and *aging* is the growth rate of
the exceedance.  A workload change settles on a new plateau: batch
means stop rising once the queue reaches its new equilibrium, so an
exceedance streak whose values have stabilised is absorbed into the
baseline (recalibration).  Software aging in this repo's zoo is an
unstable queue: response times keep growing while the exceedance
streak lasts, and a streak that *keeps rising* is answered with a
trigger.  The learned standard deviation is clamped to
``[std_floor, std_cap]`` so a noisy plateau cannot widen the threshold
band without bound (which would let the baseline chase genuine aging).
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.base import BatchBuffer, RejuvenationPolicy
from repro.core.sla import ServiceLevelObjective
from repro.obs.live.sketches import RollingWindow


class AdaptiveThresholdPolicy(RejuvenationPolicy):
    """Self-recalibrating k-sigma threshold over batch means.

    Parameters
    ----------
    slo:
        The offline-calibrated starting point; the rolling baseline
        takes over once ``warmup`` batch means have been accepted.
    sample_size:
        Batch size ``n`` (the paper's batching discipline).
    window:
        Rolling-window length, in accepted batch means, of the healthy
        baseline (:class:`~repro.obs.live.sketches.RollingWindow`).
    k_sigmas:
        Detection threshold: ``baseline_mean + k_sigmas * s`` where
        ``s`` is the clamped baseline standard deviation.
    std_floor / std_cap:
        Clamp bounds for the learned deviation, as fractions of
        ``slo.std`` (defaults 0.1 and 1.0).  The floor keeps a
        constant-series baseline from collapsing the band to zero; the
        cap keeps a noisy saturation plateau from widening it until
        aging becomes invisible.
    patience:
        Consecutive exceeding batches required before the detector
        decides anything (trigger *or* recalibrate).
    grow_limit_sigmas:
        The shift/aging discriminator: a full-patience exceedance
        streak whose net growth exceeds ``grow_limit_sigmas * s`` is
        aging (trigger); one that stabilised is a workload shift
        (recalibrate the baseline from the streak itself).
    warmup:
        Accepted batches before the detector arms; during warmup every
        batch mean is learned and nothing triggers.
    """

    name = "adaptive"

    def __init__(
        self,
        slo: ServiceLevelObjective,
        sample_size: int = 2,
        window: int = 64,
        k_sigmas: float = 4.0,
        std_floor: Optional[float] = None,
        std_cap: Optional[float] = None,
        patience: int = 6,
        grow_limit_sigmas: float = 0.75,
        warmup: int = 16,
    ) -> None:
        if window < 2:
            raise ValueError("baseline window must be >= 2")
        if k_sigmas <= 0:
            raise ValueError("k_sigmas must be positive")
        if patience < 1:
            raise ValueError("patience must be >= 1")
        if grow_limit_sigmas <= 0:
            raise ValueError("grow_limit_sigmas must be positive")
        if warmup < 2:
            raise ValueError("warmup must be >= 2")
        self.slo = slo
        self.buffer = BatchBuffer(sample_size)
        self.k_sigmas = float(k_sigmas)
        self.std_floor = (
            0.1 * slo.std if std_floor is None else float(std_floor)
        )
        self.std_cap = slo.std if std_cap is None else float(std_cap)
        if self.std_cap < self.std_floor:
            raise ValueError("std_cap must be >= std_floor")
        self.patience = int(patience)
        self.grow_limit_sigmas = float(grow_limit_sigmas)
        self.warmup = int(warmup)
        self.baseline = RollingWindow(size=window)
        self.accepted = 0
        self.recalibrations = 0
        self.streak = 0
        self._exceedances: List[float] = []

    # ------------------------------------------------------------------
    def _clamp_std(self, value: float) -> float:
        return min(max(value, self.std_floor), self.std_cap)

    def baseline_stats(self) -> tuple:
        """Current ``(mean, clamped std)`` of the healthy baseline."""
        if self.accepted >= self.warmup:
            return self.baseline.mean, self._clamp_std(self.baseline.std)
        # Pre-warmup: the offline SLO, scaled to batch means of n.
        n = self.buffer.size
        return self.slo.mean, self._clamp_std(self.slo.std / n ** 0.5)

    @property
    def current_threshold(self) -> float:
        mean, std = self.baseline_stats()
        return mean + self.k_sigmas * std

    def _learn(self, batch_mean: float) -> None:
        self.baseline.push(batch_mean)
        self.accepted += 1

    def observe(self, value: float) -> bool:
        batch_mean = self.buffer.push(value)
        if batch_mean is None:
            return False
        return self._observe_batch(batch_mean)

    def _observe_batch(self, batch_mean: float) -> bool:
        mean, std = self.baseline_stats()
        threshold = mean + self.k_sigmas * std
        exceeded = batch_mean > threshold
        listener = self._listener
        if listener is not None and listener.wants_batches:
            listener.on_batch(
                self, batch_mean, threshold, self.buffer.size, exceeded
            )
        if not exceeded or self.accepted < self.warmup:
            # Healthy (or still calibrating): fold into the baseline.
            self._learn(batch_mean)
            self.streak = 0
            self._exceedances.clear()
            return False
        # Suspected degradation: suppress re-baselining, watch the streak.
        self.streak += 1
        self._exceedances.append(batch_mean)
        if len(self._exceedances) > self.patience:
            del self._exceedances[0]
        if self.streak < self.patience:
            return False
        growth = self._exceedances[-1] - self._exceedances[0]
        if growth <= self.grow_limit_sigmas * std:
            # The exceedance stabilised: a new healthy operating point,
            # not aging.  Recalibrate the baseline from the streak.
            for value in self._exceedances:
                self._learn(value)
            self.recalibrations += 1
            self.streak = 0
            self._exceedances.clear()
            if listener is not None:
                listener.on_transition(
                    self,
                    "recalibrate",
                    self.recalibrations,
                    len(self.baseline.values()),
                    self.current_threshold,
                )
            return False
        cause = {
            "kind": "adaptive-threshold",
            "batch_mean": batch_mean,
            "threshold": threshold,
            "baseline_mean": mean,
            "baseline_std": std,
            "streak": self.streak,
            "growth": growth,
            "grow_limit": self.grow_limit_sigmas * std,
            "recalibrations": self.recalibrations,
            "sample_size": self.buffer.size,
        }
        self.streak = 0
        self._exceedances.clear()
        self.buffer.clear()
        if listener is not None:
            listener.on_trigger_cause(self, cause)
        return True

    def reset(self) -> None:
        """Clear detection state (the learned baseline is calibration,
        not detection state, and survives a rejuvenation)."""
        self.buffer.clear()
        self.streak = 0
        self._exceedances.clear()
        if self._listener is not None:
            self._listener.on_reset(self)

    def describe(self) -> str:
        return (
            f"Adaptive(n={self.buffer.size}, W={self.baseline.size}, "
            f"k={self.k_sigmas:g}, patience={self.patience})"
        )
