"""Cron parsing and the virtual-clock scheduler: pure-function pins.

Nothing here touches a wall clock or a real simulation: the scheduler
is driven with explicit tick times against a stub job manager, so
every firing decision (skip, queue, missed, max_runs) is asserted
exactly.  Epoch 0 is Thu 1970-01-01 00:00 UTC, which makes the cron
expectations small integers.
"""

from datetime import datetime, timezone

import pytest

from repro.obs.sentinel import ScheduleSpec, Scheduler, parse_cron

DAY = 86400.0


class StubManager:
    """Duck-typed job manager: records submissions, never simulates."""

    def __init__(self, active=False):
        self.active = active
        self.submitted = []
        self._counter = 0

    def validate_campaign(self, params):
        if params.get("scenarios") == "bogus":
            raise ValueError("unknown scenario 'bogus'")
        return params

    def submit_campaign(self, params, source="api", scheduled_for=None):
        self._counter += 1
        job = {
            "id": f"job-{self._counter:04d}",
            "params": params,
            "source": source,
            "scheduled_for": scheduled_for,
        }
        self.submitted.append(job)
        return job

    def has_active(self, source=None):
        return self.active


def spec(**overrides):
    base = dict(name="nightly", campaign={"replications": 1}, every_s=60.0)
    base.update(overrides)
    return ScheduleSpec(**base)


class TestCronParse:
    def test_every_15_minutes(self):
        cron = parse_cron("*/15 * * * *")
        assert cron.minutes == frozenset({0, 15, 30, 45})
        assert cron.next_fire(0.0) == 900.0
        assert cron.next_fire(900.0) == 1800.0

    def test_next_fire_is_strictly_after(self):
        cron = parse_cron("0 * * * *")
        assert cron.next_fire(0.0) == 3600.0
        assert cron.next_fire(3599.0) == 3600.0
        assert cron.next_fire(3600.0) == 7200.0

    def test_weekday_names_and_ranges(self):
        cron = parse_cron("0 3 * * mon-fri")
        assert cron.weekdays == frozenset({0, 1, 2, 3, 4})
        # Epoch day 0 is a Thursday: 03:00 the same day.
        assert cron.next_fire(0.0) == 3 * 3600.0

    def test_classic_sunday_aliases(self):
        # Classic cron numbers Sunday as both 0 and 7; names use sun.
        for field in ("0", "7", "sun"):
            cron = parse_cron(f"0 0 * * {field}")
            when = datetime.fromtimestamp(
                cron.next_fire(0.0), tz=timezone.utc
            )
            assert when.weekday() == 6  # python convention: Sunday = 6
            assert cron.next_fire(0.0) == 3 * DAY  # Sun 1970-01-04

    def test_saturday_by_name(self):
        assert parse_cron("0 0 * * sat").next_fire(0.0) == 2 * DAY

    def test_dom_dow_or_semantics(self):
        # Both fields restricted: a date matching either fires (classic
        # cron).  Monday Jan 5 comes before the 1st of February.
        cron = parse_cron("0 0 1 * mon")
        assert cron.next_fire(0.0) == 4 * DAY  # Mon 1970-01-05
        # Day-of-month restricted alone: weekdays don't widen it.
        first_only = parse_cron("0 0 1 * *")
        assert first_only.next_fire(0.0) == 31 * DAY  # Feb 1

    def test_month_names_and_lists(self):
        cron = parse_cron("30 12 * jan,feb *")
        assert cron.months == frozenset({1, 2})
        assert cron.next_fire(0.0) == 12 * 3600.0 + 1800.0

    def test_never_firing_expression_raises(self):
        cron = parse_cron("0 0 31 2 *")  # February 31st
        with pytest.raises(ValueError, match="never fires"):
            cron.next_fire(0.0)

    def test_matches(self):
        cron = parse_cron("*/10 6 * * *")
        assert cron.matches(
            datetime(2026, 8, 9, 6, 20, tzinfo=timezone.utc)
        )
        assert not cron.matches(
            datetime(2026, 8, 9, 7, 20, tzinfo=timezone.utc)
        )

    @pytest.mark.parametrize(
        "text",
        [
            "* * * *",  # 4 fields
            "x * * * *",  # not a number
            "61 * * * *",  # minute out of range
            "* 25 * * *",  # hour out of range
            "* * * * 8",  # weekday out of range
            "1,,2 * * * *",  # empty list item
            "5/2 * * * *",  # step without a range
            "30-10 * * * *",  # inverted range
        ],
    )
    def test_parse_errors(self, text):
        with pytest.raises(ValueError):
            parse_cron(text)


class TestScheduleSpec:
    def test_needs_exactly_one_trigger(self):
        with pytest.raises(ValueError, match="exactly one"):
            ScheduleSpec(name="x", campaign={})
        with pytest.raises(ValueError, match="exactly one"):
            ScheduleSpec(
                name="x", campaign={}, every_s=60.0, cron="* * * * *"
            )

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            spec(every_s=0.0)
        with pytest.raises(ValueError):
            spec(on_overlap="pile-up")
        with pytest.raises(ValueError):
            spec(max_runs=0)
        with pytest.raises(ValueError):
            ScheduleSpec(name="x", campaign={}, cron="bad cron")
        with pytest.raises(ValueError):
            ScheduleSpec(name="", campaign={}, every_s=60.0)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown schedule"):
            ScheduleSpec.from_dict(
                {"name": "x", "campaign": {}, "every_s": 60, "typo": 1}
            )
        with pytest.raises(ValueError, match="campaign"):
            ScheduleSpec.from_dict({"name": "x", "every_s": 60})

    def test_round_trips_through_dict(self):
        original = spec(cron="*/5 * * * *", every_s=None, max_runs=3)
        again = ScheduleSpec.from_dict(original.to_dict())
        assert again == original


class TestSchedulerTick:
    def test_interval_fires_once_per_period(self):
        manager = StubManager()
        scheduler = Scheduler(manager)
        scheduler.add(spec(), now=0.0)
        assert scheduler.get("nightly")["next_due"] == 60.0
        assert scheduler.tick(30.0) == []
        launched = scheduler.tick(60.0)
        assert [j["id"] for j in launched] == ["job-0001"]
        assert launched[0]["source"] == "schedule:nightly"
        assert launched[0]["scheduled_for"] == 60.0
        assert scheduler.tick(61.0) == []
        assert scheduler.get("nightly")["next_due"] == 120.0

    def test_late_tick_fires_once_and_counts_missed(self):
        manager = StubManager()
        scheduler = Scheduler(manager)
        scheduler.add(spec(), now=0.0)
        scheduler.tick(60.0)
        # Nobody ticked through 120..360: one firing, four misses.
        launched = scheduler.tick(400.0)
        assert len(launched) == 1
        state = scheduler.get("nightly")
        assert state["missed"] == 4
        assert state["next_due"] == 420.0

    def test_overlap_skip_counts_instead_of_submitting(self):
        manager = StubManager(active=True)
        scheduler = Scheduler(manager)
        scheduler.add(spec(), now=0.0)
        assert scheduler.tick(60.0) == []
        state = scheduler.get("nightly")
        assert state["skipped"] == 1
        assert manager.submitted == []
        # The missed period still advanced past now.
        assert state["next_due"] == 120.0

    def test_overlap_queue_submits_anyway(self):
        manager = StubManager(active=True)
        scheduler = Scheduler(manager)
        scheduler.add(spec(on_overlap="queue"), now=0.0)
        assert len(scheduler.tick(60.0)) == 1

    def test_max_runs_retires_the_schedule(self):
        manager = StubManager()
        scheduler = Scheduler(manager)
        scheduler.add(spec(max_runs=2), now=0.0)
        assert len(scheduler.tick(60.0)) == 1
        assert len(scheduler.tick(120.0)) == 1
        state = scheduler.get("nightly")
        assert state["next_due"] is None
        assert state["runs"] == 2
        assert scheduler.tick(180.0) == []

    def test_disabled_schedule_never_fires(self):
        manager = StubManager()
        scheduler = Scheduler(manager)
        scheduler.add(spec(enabled=False), now=0.0)
        assert scheduler.tick(600.0) == []

    def test_anchor_in_the_future_is_the_first_due(self):
        manager = StubManager()
        scheduler = Scheduler(manager)
        scheduler.add(spec(every_s=50.0, anchor_s=100.0), now=0.0)
        assert scheduler.get("nightly")["next_due"] == 100.0
        assert scheduler.tick(99.0) == []
        assert len(scheduler.tick(100.0)) == 1

    def test_cron_schedule_uses_next_fire(self):
        manager = StubManager()
        scheduler = Scheduler(manager)
        scheduler.add(
            spec(cron="*/15 * * * *", every_s=None), now=0.0
        )
        assert scheduler.get("nightly")["next_due"] == 900.0
        assert len(scheduler.tick(900.0)) == 1
        assert scheduler.get("nightly")["next_due"] == 1800.0

    def test_add_validates_campaign_and_names(self):
        manager = StubManager()
        scheduler = Scheduler(manager)
        with pytest.raises(ValueError, match="bogus"):
            scheduler.add(spec(campaign={"scenarios": "bogus"}), now=0.0)
        scheduler.add(spec(), now=0.0)
        with pytest.raises(ValueError, match="already exists"):
            scheduler.add(spec(), now=0.0)
        assert len(scheduler) == 1

    def test_add_accepts_plain_dicts(self):
        scheduler = Scheduler(StubManager())
        state = scheduler.add(
            {"name": "dict", "campaign": {}, "every_s": 10}, now=0.0
        )
        assert state["next_due"] == 10.0

    def test_remove_and_lookup(self):
        scheduler = Scheduler(StubManager())
        scheduler.add(spec(), now=0.0)
        assert scheduler.remove("nightly")
        assert not scheduler.remove("nightly")
        with pytest.raises(LookupError):
            scheduler.get("nightly")
        assert scheduler.states() == []
