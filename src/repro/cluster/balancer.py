"""Load-balancing policies for the cluster front end.

A balancer picks, for each arriving transaction, one of the *eligible*
nodes.  It always sees the full, stably-ordered node list plus the
indices currently eligible (nodes in rejuvenation downtime are excluded
by the cluster), so stateful policies keep consistent per-node state
even while some nodes are out.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.ecommerce.node import ProcessingNode


class LoadBalancer(abc.ABC):
    """Strategy interface: choose a node for the next transaction."""

    @abc.abstractmethod
    def select(
        self,
        nodes: Sequence[ProcessingNode],
        eligible: Sequence[int],
        rng: np.random.Generator,
    ) -> int:
        """Return one of ``eligible`` (indices into ``nodes``).

        ``eligible`` is never empty; the cluster handles the all-down
        case before consulting the balancer.
        """

    def reset(self) -> None:
        """Forget internal state between runs (default: stateless)."""


class RoundRobin(LoadBalancer):
    """Cycle through the nodes in order, skipping ineligible ones."""

    def __init__(self) -> None:
        self._cursor = 0

    def select(
        self,
        nodes: Sequence[ProcessingNode],
        eligible: Sequence[int],
        rng: np.random.Generator,
    ) -> int:
        eligible_set = set(eligible)
        for _ in range(len(nodes)):
            candidate = self._cursor % len(nodes)
            self._cursor += 1
            if candidate in eligible_set:
                return candidate
        # Unreachable while `eligible` is non-empty.
        raise AssertionError("no eligible node")  # pragma: no cover

    def reset(self) -> None:
        self._cursor = 0


class RandomBalancer(LoadBalancer):
    """Pick an eligible node uniformly at random."""

    def select(
        self,
        nodes: Sequence[ProcessingNode],
        eligible: Sequence[int],
        rng: np.random.Generator,
    ) -> int:
        return int(eligible[int(rng.integers(len(eligible)))])


class JoinShortestQueue(LoadBalancer):
    """Send the job to the node with the fewest transactions in system.

    Ties break towards the lowest index, keeping runs deterministic.
    """

    def select(
        self,
        nodes: Sequence[ProcessingNode],
        eligible: Sequence[int],
        rng: np.random.Generator,
    ) -> int:
        return min(eligible, key=lambda i: (nodes[i].in_system, i))


class WeightedRoundRobin(LoadBalancer):
    """Smooth weighted round-robin (the nginx algorithm).

    Each eligible node's current weight grows by its configured weight
    per arrival; the node with the largest current weight is picked and
    pays back the sum of the competing weights.  Produces the evenly
    interleaved sequence expected from weighted dispatching.

    Parameters
    ----------
    weights:
        One positive weight per cluster node, by node index.
    """

    def __init__(self, weights: Sequence[float]) -> None:
        if not weights:
            raise ValueError("need at least one weight")
        if any(w <= 0 for w in weights):
            raise ValueError("weights must be positive")
        self.weights = [float(w) for w in weights]
        self._current = [0.0] * len(self.weights)

    def select(
        self,
        nodes: Sequence[ProcessingNode],
        eligible: Sequence[int],
        rng: np.random.Generator,
    ) -> int:
        if len(nodes) != len(self.weights):
            raise ValueError(
                f"balancer configured for {len(self.weights)} nodes, "
                f"cluster has {len(nodes)}"
            )
        for i in eligible:
            self._current[i] += self.weights[i]
        best = max(eligible, key=lambda i: (self._current[i], -i))
        self._current[best] -= sum(self.weights[i] for i in eligible)
        return best

    def reset(self) -> None:
        self._current = [0.0] * len(self.weights)


#: Balancer names accepted by declarative system specs and the CLI
#: (``WeightedRoundRobin`` needs per-node weights, so it stays
#: construct-by-hand).
BALANCERS = {
    "round_robin": RoundRobin,
    "random": RandomBalancer,
    "jsq": JoinShortestQueue,
}


def make_balancer(name: str) -> LoadBalancer:
    """A fresh balancer from its registry name."""
    try:
        factory = BALANCERS[name]
    except KeyError:
        raise ValueError(
            f"unknown balancer {name!r}; available: "
            f"{', '.join(sorted(BALANCERS))}"
        ) from None
    return factory()
