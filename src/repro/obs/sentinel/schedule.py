"""Declarative recurring-campaign schedules on a virtual clock.

A :class:`ScheduleSpec` says *what* to run (a campaign parameter block,
validated up front by :meth:`~repro.serve.jobs.JobManager.validate_campaign`)
and *when* (a fixed interval in seconds, or a 5-field cron expression
evaluated in UTC).  The :class:`Scheduler` owns the specs and fires due
ones when :meth:`Scheduler.tick` is called with the current time --
nothing inside this module reads a wall clock, so tests and CI drive
ticks explicitly (``POST /api/schedules/tick``) and every decision is
a pure function of (specs, tick times).

Determinism rules:

* A schedule fires **at most once per tick** however late the tick is;
  periods missed while nobody ticked are counted (``missed``), not
  replayed -- a serve process that was down for an hour does not burst
  sixty backlogged campaigns on restart.
* Overlap policy is explicit: ``on_overlap="skip"`` (default) counts a
  skip when the schedule's previous job is still queued/running, while
  ``"queue"`` submits anyway and lets the job manager's run lock
  serialise execution.
* Launched jobs carry ``source="schedule:<name>"`` and the virtual
  fire time, and are recorded into the run ledger by the job manager's
  normal path -- manifest hashes byte-identical to the same campaign
  launched via the CLI (pinned by ``tests/serve/test_sentinel_api.py``).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from datetime import datetime, timedelta, timezone
from typing import Any, Dict, FrozenSet, List, Mapping, Optional, Tuple

__all__ = ["CronExpr", "ScheduleSpec", "Scheduler", "parse_cron"]

#: Field ranges for the 5 cron fields, in order.
_CRON_FIELDS: Tuple[Tuple[str, int, int], ...] = (
    ("minute", 0, 59),
    ("hour", 0, 23),
    ("day", 1, 31),
    ("month", 1, 12),
    ("weekday", 0, 6),  # 0 = Monday (python datetime.weekday())
)

#: Names accepted in the day-of-week field, already in the internal
#: Monday=0 convention (numeric tokens use classic cron 0/7=Sunday and
#: are converted in ``atom``).
_DOW_NAMES = {
    "mon": 0, "tue": 1, "wed": 2, "thu": 3, "fri": 4, "sat": 5, "sun": 6,
}
_MONTH_NAMES = {
    "jan": 1, "feb": 2, "mar": 3, "apr": 4, "may": 5, "jun": 6,
    "jul": 7, "aug": 8, "sep": 9, "oct": 10, "nov": 11, "dec": 12,
}


def _parse_field(
    text: str, name: str, lo: int, hi: int
) -> Tuple[FrozenSet[int], bool]:
    """One cron field -> (allowed values, was-it-a-star)."""
    names = _DOW_NAMES if name == "weekday" else (
        _MONTH_NAMES if name == "month" else {}
    )

    def atom(token: str) -> int:
        token = token.strip().lower()
        if token in names:
            return names[token]
        try:
            value = int(token)
        except ValueError:
            raise ValueError(
                f"cron {name} field: {token!r} is not a number"
            ) from None
        if name == "weekday":
            # Classic cron: 0-7 with both 0 and 7 = Sunday; convert to
            # python's Monday=0 convention used by datetime.weekday().
            if not 0 <= value <= 7:
                raise ValueError(f"cron weekday {value} out of range 0-7")
            return (value - 1) % 7
        if not lo <= value <= hi:
            raise ValueError(
                f"cron {name} {value} out of range {lo}-{hi}"
            )
        return value

    allowed: set = set()
    star = False
    for part in text.split(","):
        part = part.strip()
        if not part:
            raise ValueError(f"cron {name} field has an empty list item")
        step = 1
        if "/" in part:
            part, step_text = part.split("/", 1)
            step = int(step_text)
            if step < 1:
                raise ValueError(f"cron {name} step must be >= 1")
        if part == "*":
            if step == 1:
                star = True
            if name == "weekday":
                allowed.update(range(0, 7, 1) if step == 1 else set())
                if step != 1:
                    # Steps over the classic 0-6 Sunday-first range.
                    allowed.update((v - 1) % 7 for v in range(0, 7, step))
            else:
                allowed.update(range(lo, hi + 1, step))
        elif "-" in part:
            start_text, end_text = part.split("-", 1)
            start, end = atom(start_text), atom(end_text)
            if name == "weekday":
                # Ranges wrap in converted space: sat-sun == 6,0.
                values = []
                v = start
                while True:
                    values.append(v)
                    if v == end:
                        break
                    v = (v + 1) % 7
                allowed.update(values[::step])
            else:
                if start > end:
                    raise ValueError(
                        f"cron {name} range {part!r} is inverted"
                    )
                allowed.update(range(start, end + 1, step))
        else:
            if step != 1:
                raise ValueError(
                    f"cron {name} step needs a range or '*': {part!r}"
                )
            allowed.add(atom(part))
    return frozenset(allowed), star


@dataclass(frozen=True)
class CronExpr:
    """A parsed 5-field cron expression (minute-resolution, UTC)."""

    text: str
    minutes: FrozenSet[int]
    hours: FrozenSet[int]
    days: FrozenSet[int]
    months: FrozenSet[int]
    weekdays: FrozenSet[int]
    #: Classic cron day semantics: when *both* day-of-month and
    #: day-of-week are restricted, a date matching either fires.
    day_star: bool
    weekday_star: bool

    def _day_matches(self, when: datetime) -> bool:
        dom = when.day in self.days
        dow = when.weekday() in self.weekdays
        if self.day_star and self.weekday_star:
            return True
        if self.day_star:
            return dow
        if self.weekday_star:
            return dom
        return dom or dow

    def matches(self, when: datetime) -> bool:
        return (
            when.minute in self.minutes
            and when.hour in self.hours
            and when.month in self.months
            and self._day_matches(when)
        )

    def next_fire(self, after_s: float) -> float:
        """Epoch seconds of the first match strictly after ``after_s``."""
        when = datetime.fromtimestamp(after_s, tz=timezone.utc)
        when = when.replace(second=0, microsecond=0) + timedelta(minutes=1)
        # Bounded scan with month/day/hour skipping: at most ~8 years of
        # months covers every satisfiable spec (leap-day cron included).
        for _ in range(100):
            while when.month not in self.months:
                when = (when.replace(day=1, hour=0, minute=0)
                        + timedelta(days=32)).replace(day=1)
            scanned_days = 0
            while not self._day_matches(when):
                when = when.replace(hour=0, minute=0) + timedelta(days=1)
                scanned_days += 1
                if when.month not in self.months or scanned_days > 366:
                    break
            else:
                while when.hour not in self.hours:
                    when = when.replace(minute=0) + timedelta(hours=1)
                    if not self._day_matches(when):
                        break
                else:
                    while when.minute not in self.minutes:
                        when = when + timedelta(minutes=1)
                        if when.hour not in self.hours:
                            break
                    else:
                        return when.timestamp()
        raise ValueError(f"cron expression never fires: {self.text!r}")


def parse_cron(text: str) -> CronExpr:
    """Parse ``"minute hour day month weekday"`` (lists/ranges/steps)."""
    fields = text.split()
    if len(fields) != 5:
        raise ValueError(
            f"cron expression needs 5 fields, got {len(fields)}: {text!r}"
        )
    parsed = []
    stars = []
    for value, (name, lo, hi) in zip(fields, _CRON_FIELDS):
        allowed, star = _parse_field(value, name, lo, hi)
        if not allowed:
            raise ValueError(f"cron {name} field matches nothing: {value!r}")
        parsed.append(allowed)
        stars.append(star)
    return CronExpr(
        text=text,
        minutes=parsed[0],
        hours=parsed[1],
        days=parsed[2],
        months=parsed[3],
        weekdays=parsed[4],
        day_star=stars[2],
        weekday_star=stars[4],
    )


@dataclass(frozen=True)
class ScheduleSpec:
    """What to run and when; validated before it ever ticks."""

    name: str
    campaign: Mapping[str, Any]
    every_s: Optional[float] = None
    cron: Optional[str] = None
    on_overlap: str = "skip"
    max_runs: Optional[int] = None
    enabled: bool = True
    #: Interval anchor (epoch/virtual seconds); defaults to add time.
    anchor_s: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError("schedule name must be a non-empty string")
        if (self.every_s is None) == (self.cron is None):
            raise ValueError(
                "schedule needs exactly one of every_s or cron"
            )
        if self.every_s is not None and self.every_s <= 0:
            raise ValueError("every_s must be positive")
        if self.cron is not None:
            parse_cron(self.cron)  # raises on bad expressions
        if self.on_overlap not in ("skip", "queue"):
            raise ValueError("on_overlap must be 'skip' or 'queue'")
        if self.max_runs is not None and self.max_runs < 1:
            raise ValueError("max_runs must be >= 1")

    @staticmethod
    def from_dict(spec: Mapping[str, Any]) -> "ScheduleSpec":
        if not isinstance(spec, Mapping):
            raise ValueError("schedule spec must be a JSON object")
        known = {
            "name", "campaign", "every_s", "cron", "on_overlap",
            "max_runs", "enabled", "anchor_s",
        }
        unknown = set(spec) - known
        if unknown:
            raise ValueError(
                f"unknown schedule field(s): {sorted(unknown)}"
            )
        campaign = spec.get("campaign")
        if not isinstance(campaign, Mapping):
            raise ValueError("schedule needs a 'campaign' object")
        every_s = spec.get("every_s")
        return ScheduleSpec(
            name=spec.get("name", ""),
            campaign=dict(campaign),
            every_s=None if every_s is None else float(every_s),
            cron=spec.get("cron"),
            on_overlap=spec.get("on_overlap", "skip"),
            max_runs=spec.get("max_runs"),
            enabled=bool(spec.get("enabled", True)),
            anchor_s=spec.get("anchor_s"),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "campaign": dict(self.campaign),
            "every_s": self.every_s,
            "cron": self.cron,
            "on_overlap": self.on_overlap,
            "max_runs": self.max_runs,
            "enabled": self.enabled,
            "anchor_s": self.anchor_s,
        }


@dataclass
class _ScheduleState:
    spec: ScheduleSpec
    next_due: Optional[float]
    launched: List[str] = field(default_factory=list)
    skipped: int = 0
    missed: int = 0
    last_fired: Optional[float] = None


class Scheduler:
    """Virtual-clock schedule registry over a job manager.

    The manager is duck-typed: anything with ``validate_campaign``,
    ``submit_campaign(params, source=, scheduled_for=)`` and
    ``has_active(source=)`` works, so the deterministic unit tests
    drive a stub while the serve layer passes the real
    :class:`~repro.serve.jobs.JobManager`.
    """

    def __init__(self, jobs: Any):
        self.jobs = jobs
        self._lock = threading.Lock()
        self._states: Dict[str, _ScheduleState] = {}

    # ------------------------------------------------------------------
    def add(
        self, spec: Any, now: float = 0.0
    ) -> Dict[str, Any]:
        """Register a spec (or spec dict); returns its state snapshot."""
        if not isinstance(spec, ScheduleSpec):
            spec = ScheduleSpec.from_dict(spec)
        # Campaign validation happens here so a bad schedule is a 400
        # at POST time, not a failed job at tick time.
        self.jobs.validate_campaign(dict(spec.campaign))
        with self._lock:
            if spec.name in self._states:
                raise ValueError(f"schedule {spec.name!r} already exists")
            self._states[spec.name] = _ScheduleState(
                spec=spec, next_due=self._first_due(spec, now)
            )
            return self._snapshot(self._states[spec.name])

    def remove(self, name: str) -> bool:
        with self._lock:
            return self._states.pop(name, None) is not None

    def get(self, name: str) -> Dict[str, Any]:
        with self._lock:
            state = self._states.get(name)
            if state is None:
                raise LookupError(f"no schedule {name!r}")
            return self._snapshot(state)

    def states(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [self._snapshot(s) for s in self._states.values()]

    def __len__(self) -> int:
        with self._lock:
            return len(self._states)

    # ------------------------------------------------------------------
    def tick(self, now: float) -> List[Dict[str, Any]]:
        """Fire every due schedule once; returns launched job dicts.

        Ticks may arrive late or out of band; a schedule fires at most
        once per tick and its ``next_due`` always advances past ``now``
        (periods nobody ticked through are counted as ``missed``).
        """
        launched: List[Dict[str, Any]] = []
        with self._lock:
            states = list(self._states.values())
        for state in states:
            spec = state.spec
            with self._lock:
                if (
                    not spec.enabled
                    or state.next_due is None
                    or state.next_due > now
                ):
                    continue
                fire_ts = state.next_due
                state.missed += self._advance(state, now)
                done = (
                    spec.max_runs is not None
                    and len(state.launched) + 1 >= spec.max_runs
                )
                skip = (
                    spec.on_overlap == "skip"
                    and self.jobs.has_active(source=f"schedule:{spec.name}")
                )
                if skip:
                    state.skipped += 1
                    continue
                state.last_fired = fire_ts
            job = self.jobs.submit_campaign(
                dict(spec.campaign),
                source=f"schedule:{spec.name}",
                scheduled_for=fire_ts,
            )
            with self._lock:
                state.launched.append(job["id"])
                if done:
                    state.next_due = None
            launched.append(job)
        return launched

    # ------------------------------------------------------------------
    @staticmethod
    def _first_due(spec: ScheduleSpec, now: float) -> float:
        if spec.every_s is not None:
            anchor = now if spec.anchor_s is None else spec.anchor_s
            if anchor > now:
                return anchor
            periods = int((now - anchor) // spec.every_s) + 1
            return anchor + periods * spec.every_s
        return parse_cron(spec.cron or "").next_fire(now)

    @staticmethod
    def _advance(state: _ScheduleState, now: float) -> int:
        """Move ``next_due`` strictly past ``now``; returns missed count."""
        spec = state.spec
        missed = 0
        if spec.every_s is not None:
            due = state.next_due or now
            due += spec.every_s
            while due <= now:
                due += spec.every_s
                missed += 1
            state.next_due = due
        else:
            cron = parse_cron(spec.cron or "")
            due = cron.next_fire(state.next_due or now)
            while due <= now:
                due = cron.next_fire(due)
                missed += 1
            state.next_due = due
        return missed

    @staticmethod
    def _snapshot(state: _ScheduleState) -> Dict[str, Any]:
        out = state.spec.to_dict()
        out.update(
            {
                "next_due": state.next_due,
                "runs": len(state.launched),
                "launched": list(state.launched),
                "skipped": state.skipped,
                "missed": state.missed,
                "last_fired": state.last_fired,
            }
        )
        return out
