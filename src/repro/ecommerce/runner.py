"""Replication harness over the e-commerce simulator.

The paper's evaluation protocol is five independent replications of
100,000 transactions per scenario (Section 5).  ``run_replications``
implements it: each replication gets an independent random-stream family
derived from the master seed, and a *fresh* policy instance built by the
supplied factory so no detection state leaks between replications.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.core.base import RejuvenationPolicy
from repro.ecommerce.config import SystemConfig
from repro.ecommerce.metrics import ReplicatedResult, RunResult
from repro.ecommerce.system import ECommerceSystem
from repro.ecommerce.workload import ArrivalProcess, PoissonArrivals

PolicyFactory = Callable[[], Optional[RejuvenationPolicy]]
ArrivalFactory = Callable[[], ArrivalProcess]


def run_once(
    config: SystemConfig,
    arrivals: ArrivalProcess,
    policy: Optional[RejuvenationPolicy],
    n_transactions: int,
    seed: Optional[int] = None,
    warmup: int = 0,
    collect_response_times: bool = False,
) -> RunResult:
    """One replication of the Section-3 model."""
    system = ECommerceSystem(config, arrivals, policy=policy, seed=seed)
    return system.run(
        n_transactions,
        warmup=warmup,
        collect_response_times=collect_response_times,
    )


def run_replications(
    config: SystemConfig,
    arrival_factory: ArrivalFactory,
    policy_factory: PolicyFactory,
    n_transactions: int,
    replications: int,
    seed: int = 0,
    warmup: int = 0,
) -> ReplicatedResult:
    """Independent replications of one scenario.

    Parameters
    ----------
    config:
        System parameters.
    arrival_factory:
        Builds a fresh arrival process per replication (arrival processes
        may be stateful, e.g. MMPP).
    policy_factory:
        Builds a fresh policy per replication (or returns ``None``).
    n_transactions, replications:
        The paper uses 100,000 x 5.
    seed:
        Master seed; replication ``i`` uses ``seed + i`` as its own
        master, giving independent streams.
    warmup:
        Per-replication warm-up transactions excluded from statistics.
    """
    if replications < 1:
        raise ValueError("need at least one replication")
    runs = []
    for i in range(replications):
        runs.append(
            run_once(
                config,
                arrival_factory(),
                policy_factory(),
                n_transactions,
                seed=seed + i,
                warmup=warmup,
            )
        )
    return ReplicatedResult(runs=tuple(runs))


def simulate_mmc_response_times(
    arrival_rate: float,
    n_transactions: int,
    seed: Optional[int] = None,
    config: Optional[SystemConfig] = None,
) -> np.ndarray:
    """Response times of the pure M/M/c reduction, in completion order.

    This is the Section-4.1 configuration for the autocorrelation study:
    the Section-3 model with kernel overhead (step 4), memory leaks
    (steps 5-6) and rejuvenation (step 8) removed.
    """
    base = config if config is not None else SystemConfig()
    reduced = base.without_degradation()
    result = run_once(
        reduced,
        PoissonArrivals(arrival_rate),
        policy=None,
        n_transactions=n_transactions,
        seed=seed,
        collect_response_times=True,
    )
    assert result.response_times is not None
    return np.asarray(result.response_times)
