"""Trend-based rejuvenation (after Trivedi et al. 2000, ref. [15]).

The paper's related work motivates "practical policies based on actual
measurements" via time-series trend detection.  ``TrendPolicy`` is that
baseline: it keeps a sliding window of batch means and triggers when the
Mann-Kendall test finds a significant *upward* trend whose Theil-Sen
slope is steep enough to matter.  Unlike the bucket algorithms it needs
no SLO mean/std -- only the window -- which makes it the natural
comparison point for systems without a calibrated SLA.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

from repro.core.base import BatchBuffer, RejuvenationPolicy
from repro.stats.trend import mann_kendall


class TrendPolicy(RejuvenationPolicy):
    """Trigger on a significant, material upward trend of batch means.

    Parameters
    ----------
    sample_size:
        Observations per batch mean (smooths short-term noise exactly as
        in SRAA).
    window:
        Number of recent batch means tested for a trend (>= 5).
    alpha:
        Mann-Kendall significance level.
    min_slope:
        Minimum Theil-Sen slope (metric units per batch) for a trigger;
        guards against statistically significant but operationally
        irrelevant drifts.

    Examples
    --------
    >>> policy = TrendPolicy(sample_size=2, window=10, min_slope=0.5)
    >>> rising = [float(v) for v in range(40)]
    >>> any(policy.observe(v) for v in rising)
    True
    """

    name = "trend"

    def __init__(
        self,
        sample_size: int = 5,
        window: int = 12,
        alpha: float = 0.05,
        min_slope: float = 0.0,
    ) -> None:
        if window < 5:
            raise ValueError("trend window must hold at least 5 batch means")
        if not 0.0 < alpha < 1.0:
            raise ValueError("alpha must lie in (0, 1)")
        if min_slope < 0.0:
            raise ValueError("minimum slope must be non-negative")
        self.buffer = BatchBuffer(sample_size)
        self.window = int(window)
        self.alpha = float(alpha)
        self.min_slope = float(min_slope)
        self._means: Deque[float] = deque(maxlen=self.window)

    def observe(self, value: float) -> bool:
        batch_mean = self.buffer.push(value)
        if batch_mean is None:
            return False
        self._means.append(batch_mean)
        if len(self._means) < self.window:
            return False
        result = mann_kendall(list(self._means))
        if (
            result.increasing
            and result.significant(self.alpha)
            and result.slope >= self.min_slope
        ):
            self.reset()
            return True
        return False

    def reset(self) -> None:
        """Drop the window and any partial batch."""
        self._means.clear()
        self.buffer.clear()

    def describe(self) -> str:
        return (
            f"Trend(n={self.buffer.size}, window={self.window}, "
            f"alpha={self.alpha:g})"
        )
