"""Average run length of a one-sided CUSUM (Brook & Evans 1972).

The CUSUM statistic ``S <- max(0, S + X - ref)`` with decision interval
``h`` is a Markov chain on ``[0, h]``; discretising the interval into
``m`` states and solving the absorbing-chain equations gives the ARL to
any accuracy.  Combined with :class:`repro.core.arl.BucketChainARL`
this puts the paper's bucket detectors and the classical control charts
on one exact footing: expected observations between false alarms
in-control, expected observations to detection out-of-control.

The observation law enters through its cdf, so exact M/M/c response
times (:meth:`repro.queueing.mmc.MMcModel.response_time_cdf`) plug in
directly.
"""

from __future__ import annotations

from typing import Callable

import numpy as np


def cusum_arl(
    cdf: Callable[[float], float],
    reference: float,
    decision_interval: float,
    states: int = 200,
) -> float:
    """Expected observations until ``S`` exceeds ``decision_interval``.

    Parameters
    ----------
    cdf:
        Cdf of one observation ``X`` (e.g. the response-time law).
    reference:
        The CUSUM reference value ``ref`` (``mu + k`` in policy terms).
    decision_interval:
        ``h > 0``; the chain starts at ``S = 0``.
    states:
        Discretisation resolution ``m``; error vanishes as ``m`` grows
        (200 is ample for the tests' 2 % agreement with Monte Carlo).
    """
    if decision_interval <= 0:
        raise ValueError("decision interval must be positive")
    if states < 10:
        raise ValueError("need at least 10 discretisation states")
    m = int(states)
    width = decision_interval / m
    # Representative value of state j (midpoint of [j w, (j+1) w)).
    mids = (np.arange(m) + 0.5) * width
    mids[0] = 0.0  # state 0 carries the atom at S = 0
    # Q[i, j] = P(next state j | current value mids[i]).
    Q = np.empty((m, m))
    for i, s in enumerate(mids):
        # To state 0: X <= ref + w - s (everything that maxes out at 0
        # or lands in the first cell).
        Q[i, 0] = cdf(reference + width - s)
        for j in range(1, m):
            low = reference + j * width - s
            high = reference + (j + 1) * width - s
            Q[i, j] = cdf(high) - cdf(low)
    # Absorption: S' >= h; probabilities are implicit (rows sum < 1).
    arl = np.linalg.solve(np.eye(m) - Q, np.ones(m))
    return float(arl[0])


def cusum_detection_profile(
    cdf_healthy: Callable[[float], float],
    cdf_degraded: Callable[[float], float],
    reference: float,
    decision_interval: float,
    states: int = 200,
) -> tuple[float, float]:
    """``(in-control ARL, out-of-control ARL)`` for one CUSUM design.

    The classical design trade-off in one call: how long between false
    alarms on healthy traffic, and how fast the detection once the
    metric law shifts.
    """
    return (
        cusum_arl(cdf_healthy, reference, decision_interval, states),
        cusum_arl(cdf_degraded, reference, decision_interval, states),
    )
