"""Statistics used by the monitoring algorithms and the evaluation.

* :class:`~repro.stats.running.OnlineMoments` -- Welford's numerically
  stable running mean/variance, used by calibration and by the simulator's
  metric accounting.
* :mod:`~repro.stats.autocorrelation` -- the paper's lag-1 autocorrelation
  estimator (Shumway & Stoffer) with warm-up discard and the
  ``1.96/sqrt(N)`` significance test of Section 4.1.
* :mod:`~repro.stats.normal` -- standard-normal quantiles and the
  decision thresholds ``mu + z sigma / sqrt(n)`` used by SARAA/CLTA.
* :mod:`~repro.stats.clt` -- diagnostics for how fast the law of the
  sample mean approaches the normal (Fig. 5): sup-density distance,
  Kolmogorov distance and tail inflation.
* :mod:`~repro.stats.intervals` -- replication confidence intervals.
"""

from repro.stats.autocorrelation import (
    autocorrelation,
    lag1_autocorrelation,
    significance_threshold,
)
from repro.stats.clt import CLTDiagnostics
from repro.stats.cusum_arl import cusum_arl, cusum_detection_profile
from repro.stats.intervals import mean_confidence_interval
from repro.stats.normal import (
    normal_quantile,
    sample_mean_threshold,
    two_sided_z,
)
from repro.stats.quantiles import P2Quantile
from repro.stats.running import OnlineMoments
from repro.stats.trend import (
    TrendResult,
    least_squares_slope,
    mann_kendall,
    theil_sen_slope,
    time_to_level,
)

__all__ = [
    "CLTDiagnostics",
    "OnlineMoments",
    "P2Quantile",
    "TrendResult",
    "autocorrelation",
    "cusum_arl",
    "cusum_detection_profile",
    "lag1_autocorrelation",
    "least_squares_slope",
    "mann_kendall",
    "mean_confidence_interval",
    "normal_quantile",
    "sample_mean_threshold",
    "significance_threshold",
    "theil_sen_slope",
    "time_to_level",
    "two_sided_z",
]
