"""Monitoring framework: metric stream -> policy -> rejuvenation action.

The paper's premise is that the *customer-affecting* metric (response
time) must be monitored directly; CPU or memory counters missed a severe
field fault for months.  This package provides the glue a deployment
needs:

* :class:`~repro.monitoring.monitor.RejuvenationMonitor` -- feeds every
  metric observation to a policy, invokes a rejuvenation callback on a
  trigger, and keeps an auditable event log (trigger times, inter-trigger
  gaps, counts).
* :mod:`~repro.monitoring.calibration` -- estimates the healthy-behaviour
  ``(mu_X, sigma_X)`` from measured data when no SLA supplies them
  (classical or robust median/MAD estimators, with warm-up discard).
"""

from repro.monitoring.adaptive import AdaptiveSLO
from repro.monitoring.calibration import calibrate_slo, robust_calibrate_slo
from repro.monitoring.monitor import MonitorReport, RejuvenationMonitor

__all__ = [
    "AdaptiveSLO",
    "MonitorReport",
    "RejuvenationMonitor",
    "calibrate_slo",
    "robust_calibrate_slo",
]
