"""Ablation studies for the modelling decisions DESIGN.md calls out.

The paper's text under-specifies four mechanisms; each ablation varies
one of them at the Fig. 16 operating point (SRAA/SARAA/CLTA-relevant
configurations at a high and a low load) so their influence on the
reproduced numbers is on record:

* rejuvenation semantics -- does it drop queued transactions?
* GC semantics -- does an in-progress GC stall newly started threads?
* rejuvenation downtime -- instantaneous vs a 60 s restart window;
* SARAA acceleration schedule -- linear (paper) vs none vs geometric;
* service-time law -- exponential (paper) vs deterministic vs
  heavy-tailed, probing whether memorylessness drives the CLTA
  divergence D1 of EXPERIMENTS.md (it does not).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Sequence, Tuple

from repro.core.clta import CLTA
from repro.core.saraa import (
    SARAA,
    geometric_acceleration,
    linear_acceleration,
    no_acceleration,
)
from repro.core.sla import PAPER_SLO
from repro.core.sraa import SRAA
from repro.ecommerce.config import PAPER_CONFIG, SystemConfig
from repro.ecommerce.runner import run_replications
from repro.ecommerce.spec import ArrivalSpec
from repro.experiments.scale import Scale
from repro.experiments.tables import ExperimentResult, Series, Table

#: Ablations compare one low-load and one high-load operating point.
ABLATION_LOADS: Tuple[float, float] = (0.5, 9.0)


def _measure(
    config: SystemConfig,
    policy_factory: Callable[[], object],
    load: float,
    scale: Scale,
    seed: int,
) -> Tuple[float, float]:
    """(avg RT, loss fraction) for one variant at one load."""
    rate = config.arrival_rate_for_load(load)
    replicated = run_replications(
        config,
        arrival=ArrivalSpec.poisson(rate),
        policy=policy_factory,
        n_transactions=scale.transactions,
        replications=scale.replications,
        seed=seed,
    )
    return replicated.avg_response_time, replicated.loss_fraction


def _variant_table(
    title: str,
    variants: Sequence[Tuple[str, SystemConfig, Callable[[], object]]],
    scale: Scale,
    seed: int,
) -> Table:
    table = Table(title=title, x_label="load_cpus", y_label="value")
    for label, config, factory in variants:
        rt_series = Series(label=f"{label} RT")
        loss_series = Series(label=f"{label} loss")
        for load in ABLATION_LOADS:
            rt, loss = _measure(config, factory, load, scale, seed)
            rt_series.add(load, rt)
            loss_series.add(load, loss)
        table.add_series(rt_series)
        table.add_series(loss_series)
    return table


def _sraa253() -> SRAA:
    return SRAA(PAPER_SLO, sample_size=2, n_buckets=5, depth=3)


def run_ablations(scale: Scale, seed: int = 0) -> ExperimentResult:
    """Run all four ablations at a reduced load grid."""
    tables: List[Table] = []

    queue_kill = dataclasses.replace(
        PAPER_CONFIG, rejuvenation_kills_queued=True
    )
    tables.append(
        _variant_table(
            "Ablation 1: rejuvenation semantics (SRAA 2,5,3)",
            [
                ("queue survives (default)", PAPER_CONFIG, _sraa253),
                ("queue dropped", queue_kill, _sraa253),
            ],
            scale,
            seed,
        )
    )

    stop_world = dataclasses.replace(
        PAPER_CONFIG, gc_freezes_new_threads=True
    )
    tables.append(
        _variant_table(
            "Ablation 2: GC stop-the-world semantics (SRAA 2,5,3)",
            [
                ("running threads only (default)", PAPER_CONFIG, _sraa253),
                ("freezes new threads too", stop_world, _sraa253),
            ],
            scale,
            seed,
        )
    )

    downtime = dataclasses.replace(
        PAPER_CONFIG, rejuvenation_downtime_s=60.0
    )
    tables.append(
        _variant_table(
            "Ablation 3: rejuvenation downtime (SRAA 2,5,3)",
            [
                ("instantaneous (default)", PAPER_CONFIG, _sraa253),
                ("60 s downtime, arrivals refused", downtime, _sraa253),
            ],
            scale,
            seed,
        )
    )

    def saraa_with(schedule: Callable[[int, int, int], int]):
        return lambda: SARAA(
            PAPER_SLO, sample_size=10, n_buckets=3, depth=1, schedule=schedule
        )

    tables.append(
        _variant_table(
            "Ablation 4: SARAA acceleration schedule (n=10, K=3, D=1)",
            [
                ("linear (paper)", PAPER_CONFIG, saraa_with(linear_acceleration)),
                ("none", PAPER_CONFIG, saraa_with(no_acceleration)),
                (
                    "geometric",
                    PAPER_CONFIG,
                    saraa_with(geometric_acceleration),
                ),
            ],
            scale,
            seed,
        )
    )

    def clta30():
        return CLTA(PAPER_SLO, sample_size=30, z=1.96)

    deterministic = dataclasses.replace(
        PAPER_CONFIG, service_distribution="deterministic"
    )
    heavy_tailed = dataclasses.replace(
        PAPER_CONFIG, service_distribution="lognormal", service_cv=3.0
    )
    tables.append(
        _variant_table(
            "Ablation 5: service-time law, CLTA(30) vs SRAA(2,5,3) "
            "(D1 probe)",
            [
                ("exp/CLTA", PAPER_CONFIG, clta30),
                ("exp/SRAA", PAPER_CONFIG, _sraa253),
                ("det/CLTA", deterministic, clta30),
                ("det/SRAA", deterministic, _sraa253),
                ("lognormal-cv3/CLTA", heavy_tailed, clta30),
                ("lognormal-cv3/SRAA", heavy_tailed, _sraa253),
            ],
            scale,
            seed,
        )
    )

    return ExperimentResult(
        experiment_id="ablations",
        description="Sensitivity of the reproduction to modelling choices",
        tables=tables,
        paper_expectations=[
            "not in the paper -- these quantify the text's ambiguities; "
            "see DESIGN.md section 5",
        ],
    )
