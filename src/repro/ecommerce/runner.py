"""Replication harness over the e-commerce simulator.

The paper's evaluation protocol is five independent replications of
100,000 transactions per scenario (Section 5).  ``run_replications``
implements it on top of the execution layer: each replication becomes
one declarative :class:`~repro.exec.jobs.ReplicationJob` (master seed
``seed + i``, fresh policy/arrival instances built from specs so no
detection state leaks between replications), the jobs are fanned out
through an :class:`~repro.exec.backends.ExecutionBackend`, and the
results are reassembled in replication order -- so serial and
process-pool runs are bit-identical for the same seed.
"""

from __future__ import annotations

from typing import Any, List, Optional, Union

import numpy as np

from repro.core.base import RejuvenationPolicy
from repro.ecommerce.config import SystemConfig
from repro.ecommerce.metrics import ReplicatedResult, RunResult
from repro.ecommerce.system import ECommerceSystem
from repro.ecommerce.workload import ArrivalProcess, PoissonArrivals
from repro.exec.backends import ExecutionBackend, resolve_backend
from repro.exec.jobs import (
    ArrivalSource,
    PolicySource,
    ReplicationJob,
    execute_job,
)
from repro.exec.progress import ProgressHook
from repro.obs.session import (
    active_trace_format,
    active_trace_level,
    current_session,
)

# Backward-compatible aliases: the pre-exec-layer factory protocol.
PolicyFactory = PolicySource
ArrivalFactory = ArrivalSource


def run_once(
    config: SystemConfig,
    arrivals: ArrivalProcess,
    policy: Optional[RejuvenationPolicy],
    n_transactions: int,
    seed: Optional[int] = None,
    warmup: int = 0,
    collect_response_times: bool = False,
) -> RunResult:
    """One replication of the Section-3 model."""
    system = ECommerceSystem(config, arrivals, policy=policy, seed=seed)
    return system.run(
        n_transactions,
        warmup=warmup,
        collect_response_times=collect_response_times,
    )


def replication_jobs(
    config: SystemConfig,
    arrival: ArrivalSource,
    policy: PolicySource,
    n_transactions: int,
    replications: int,
    seed: int = 0,
    warmup: int = 0,
    trace_level: Optional[str] = None,
    telemetry_interval_s: Optional[float] = None,
    live: Optional[Any] = None,
    profile: bool = False,
    system: Optional[Any] = None,
) -> List[ReplicationJob]:
    """The job list behind :func:`run_replications`, in replication order.

    This is the seed protocol in one place: replication ``i`` uses
    ``seed + i`` as its own master seed, giving independent streams
    (pinned by ``tests/experiments/test_seed_protocol.py``).

    ``trace_level`` defaults to the level of the installed
    :class:`~repro.obs.session.TraceSession` (if any), so wrapping a run
    in :func:`repro.obs.use_tracing` is enough to trace it;
    ``telemetry_interval_s`` installs a fixed-interval probe per
    replication.  ``live`` (a :class:`repro.obs.live.LiveSpec`) and
    ``profile`` stamp every job with live telemetry / DES profiling;
    the per-run state rides back on the results and merges in
    replication order.
    """
    if replications < 1:
        raise ValueError("need at least one replication")
    if n_transactions < 1:
        raise ValueError("need at least one transaction")
    if trace_level is None:
        trace_level = active_trace_level()
    trace_format = active_trace_format()
    spec = None
    if system is not None:
        from repro.systems import resolve_system

        spec = resolve_system(system)
        n_transactions = spec.job_transactions(n_transactions)
    return [
        ReplicationJob(
            config=config,
            arrival=arrival,
            policy=policy,
            n_transactions=n_transactions,
            seed=seed + i,
            warmup=warmup,
            tag=("replication", i),
            trace_level=trace_level,
            trace_format=trace_format,
            telemetry_interval_s=telemetry_interval_s,
            live=live,
            profile=profile,
            system=spec,
        )
        for i in range(replications)
    ]


def run_replications(
    config: SystemConfig,
    arrival: Optional[ArrivalSource] = None,
    policy: PolicySource = None,
    n_transactions: int = 0,
    replications: int = 0,
    seed: int = 0,
    warmup: int = 0,
    backend: Union[ExecutionBackend, str, None] = None,
    progress: Optional[ProgressHook] = None,
    telemetry_interval_s: Optional[float] = None,
    live: Optional[Any] = None,
    profile: bool = False,
    system: Optional[Any] = None,
    arrival_factory: Optional[ArrivalSource] = None,
    policy_factory: Optional[PolicySource] = None,
) -> ReplicatedResult:
    """Independent replications of one scenario.

    Parameters
    ----------
    config:
        System parameters.
    arrival:
        Arrival source: an :class:`~repro.ecommerce.spec.ArrivalSpec`
        (picklable -- required for process-pool execution) or a
        zero-argument factory building a fresh process per replication.
    policy:
        Policy source: a :class:`~repro.core.spec.PolicySpec`, a
        zero-argument factory, or ``None`` to disable rejuvenation.
    n_transactions, replications:
        The paper uses 100,000 x 5.
    seed:
        Master seed; replication ``i`` uses ``seed + i`` as its own
        master, giving independent streams.
    warmup:
        Per-replication warm-up transactions excluded from statistics.
    backend:
        Execution backend (instance or name); ``None`` uses the
        innermost :func:`repro.exec.use_backend` context, falling back
        to the ``REPRO_WORKERS`` / ``REPRO_BACKEND`` environment.
    progress:
        Optional per-job :class:`~repro.exec.progress.JobEvent` hook.
    telemetry_interval_s:
        Optional simulated-seconds interval; installs a per-replication
        telemetry probe whose samples ride back on
        ``RunResult.telemetry``.
    live:
        Optional :class:`repro.obs.live.LiveSpec`; every replication
        runs a constant-memory live tap (and flight recorder, if the
        spec configures one) whose state rides back on
        ``RunResult.live`` / ``RunResult.flight``.
    profile:
        Attribute per-event wall-clock and counts to subsystems; the
        per-run :class:`repro.obs.live.Profile` rides back on
        ``RunResult.profile``.
    system:
        Substrate selector (``None`` = the single Section-3 node, a
        kind name, or a :class:`repro.systems.SystemSpec`); every
        replication runs against it, with ``n_transactions`` scaled by
        the substrate's convention (see ``SystemSpec.job_transactions``).
    arrival_factory, policy_factory:
        Deprecated aliases for ``arrival`` / ``policy`` (the pre-spec
        factory protocol); still accepted so existing callers keep
        working.

    When a :class:`~repro.obs.session.TraceSession` is installed
    (:func:`repro.obs.use_tracing`), the jobs are stamped with its
    trace level and the results ingested into it, in submission order.
    """
    if arrival_factory is not None:
        if arrival is not None:
            raise TypeError("pass either arrival or arrival_factory, not both")
        arrival = arrival_factory
    if policy_factory is not None:
        if policy is not None:
            raise TypeError("pass either policy or policy_factory, not both")
        policy = policy_factory
    if arrival is None:
        raise TypeError("an arrival source is required")
    jobs = replication_jobs(
        config,
        arrival,
        policy,
        n_transactions,
        replications,
        seed=seed,
        warmup=warmup,
        telemetry_interval_s=telemetry_interval_s,
        live=live,
        profile=profile,
        system=system,
    )
    runs = resolve_backend(backend).map(execute_job, jobs, progress=progress)
    session = current_session()
    if session is not None:
        session.ingest(jobs, runs)
    return ReplicatedResult(runs=tuple(runs))


def simulate_mmc_response_times(
    arrival_rate: float,
    n_transactions: int,
    seed: Optional[int] = None,
    config: Optional[SystemConfig] = None,
) -> np.ndarray:
    """Response times of the pure M/M/c reduction, in completion order.

    This is the Section-4.1 configuration for the autocorrelation study:
    the Section-3 model with kernel overhead (step 4), memory leaks
    (steps 5-6) and rejuvenation (step 8) removed.
    """
    base = config if config is not None else SystemConfig()
    reduced = base.without_degradation()
    result = run_once(
        reduced,
        PoissonArrivals(arrival_rate),
        policy=None,
        n_transactions=n_transactions,
        seed=seed,
        collect_response_times=True,
    )
    assert result.response_times is not None
    return np.asarray(result.response_times)
