"""Birth-death chains and the M/M/c queue-length process (Fig. 1).

The paper's Fig. 1 is the Markovian state diagram of the M/M/c queue:
births at rate ``lambda``, deaths at rate ``min(k, c) mu``.  This module
builds that chain (truncated at a configurable capacity) so the CTMC
machinery can answer *transient* questions the closed-form M/M/c model
cannot -- how fast does the queue length distribution settle, what does
the ramp after an empty start look like -- and cross-validates the
steady state against :class:`~repro.queueing.mmc.MMcModel`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.ctmc.chain import CTMC


def birth_death_generator(
    birth_rates: Sequence[float], death_rates: Sequence[float]
) -> np.ndarray:
    """Generator of a birth-death chain on ``{0, ..., n}``.

    Parameters
    ----------
    birth_rates:
        ``n`` rates; ``birth_rates[k]`` moves ``k -> k + 1``.
    death_rates:
        ``n`` rates; ``death_rates[k]`` moves ``k + 1 -> k``.
    """
    births = [float(r) for r in birth_rates]
    deaths = [float(r) for r in death_rates]
    if len(births) != len(deaths):
        raise ValueError("need equally many birth and death rates")
    if any(r < 0 for r in births + deaths):
        raise ValueError("rates must be non-negative")
    n_states = len(births) + 1
    Q = np.zeros((n_states, n_states))
    for k, rate in enumerate(births):
        Q[k, k + 1] = rate
        Q[k, k] -= rate
    for k, rate in enumerate(deaths):
        Q[k + 1, k] = rate
        Q[k + 1, k + 1] -= rate
    return Q


class MMcQueueLengthProcess:
    """The number-in-system process of an M/M/c queue, truncated.

    Parameters
    ----------
    arrival_rate, service_rate, servers:
        The queue parameters (Fig. 1 of the paper).
    capacity:
        Truncation level; states are ``0..capacity``.  For a stable
        queue, a capacity a few times ``c/(1-rho)`` makes the truncation
        error negligible (checked in the tests).
    """

    def __init__(
        self,
        arrival_rate: float,
        service_rate: float,
        servers: int,
        capacity: int = 200,
    ) -> None:
        if arrival_rate < 0:
            raise ValueError("arrival rate must be non-negative")
        if service_rate <= 0:
            raise ValueError("service rate must be positive")
        if servers < 1:
            raise ValueError("at least one server is required")
        if capacity < servers:
            raise ValueError("capacity must be at least the server count")
        self.arrival_rate = float(arrival_rate)
        self.service_rate = float(service_rate)
        self.servers = int(servers)
        self.capacity = int(capacity)
        births = [self.arrival_rate] * self.capacity
        deaths = [
            min(k + 1, self.servers) * self.service_rate
            for k in range(self.capacity)
        ]
        self.chain = CTMC(birth_death_generator(births, deaths))

    # ------------------------------------------------------------------
    def initial_empty(self) -> np.ndarray:
        """Distribution with mass 1 on the empty system."""
        p0 = np.zeros(self.capacity + 1)
        p0[0] = 1.0
        return p0

    def transient_distribution(
        self, t: float, p0: np.ndarray | None = None
    ) -> np.ndarray:
        """Queue-length distribution at time ``t``."""
        initial = p0 if p0 is not None else self.initial_empty()
        return self.chain.transient(initial, t)

    def transient_mean(self, t: float, p0: np.ndarray | None = None) -> float:
        """Expected number in system at time ``t``."""
        distribution = self.transient_distribution(t, p0)
        return float(np.arange(self.capacity + 1) @ distribution)

    def steady_state(self) -> np.ndarray:
        """Stationary queue-length distribution of the truncated chain."""
        return self.chain.steady_state()

    def time_to_near_steady_state(
        self, tolerance: float = 0.01, horizon: float = 1e6
    ) -> float:
        """First probe time with L1 distance below ``tolerance``.

        A coarse relaxation-time estimate via doubling probes from an
        empty start; used to choose simulation warm-up lengths.
        """
        if tolerance <= 0:
            raise ValueError("tolerance must be positive")
        target = self.steady_state()
        t = 1.0
        while t <= horizon:
            distribution = self.transient_distribution(t)
            if float(np.abs(distribution - target).sum()) < tolerance:
                return t
            t *= 2.0
        raise ArithmeticError(
            f"no convergence within horizon {horizon} "
            "(is the queue nearly saturated?)"
        )
