"""The Section-4.1 autocorrelation study.

Five independent replications of 100,000 M/M/16 response times at
``lambda = 1.6`` (the maximum load of interest), first 10,000 discarded
as warm-up, lag-1 coefficient tested against ``1.96 / sqrt(90,000)``.
The paper finds a significant coefficient in only one of five
replications and concludes that first-order correlation "plays a minor
role" even at the maximum load.
"""

from __future__ import annotations

from repro.ctmc.birth_death import MMcQueueLengthProcess
from repro.ecommerce.runner import simulate_mmc_response_times
from repro.experiments.scale import Scale
from repro.experiments.tables import ExperimentResult, Series, Table
from repro.stats.autocorrelation import (
    is_significant,
    lag1_autocorrelation,
    significance_threshold,
)

#: The paper's warm-up fraction (10,000 of 100,000).
WARMUP_FRACTION = 0.1
#: The paper's study load.
ARRIVAL_RATE = 1.6


def run_autocorrelation(scale: Scale, seed: int = 0) -> ExperimentResult:
    """Run the study at the scale's transaction count and replications."""
    warmup = int(scale.transactions * WARMUP_FRACTION)
    effective = scale.transactions - warmup
    threshold = significance_threshold(effective)
    replications = max(scale.replications, 5)
    table = Table(
        title=(
            f"Lag-1 autocorrelation of M/M/16 response times at "
            f"lambda={ARRIVAL_RATE} ({replications} replications of "
            f"{scale.transactions}, warm-up {warmup})"
        ),
        x_label="replication",
        y_label="gamma_hat",
    )
    gamma_series = Series(label="gamma_hat")
    threshold_series = Series(label="threshold 1.96/sqrt(N)")
    significant = 0
    for rep in range(replications):
        rts = simulate_mmc_response_times(
            ARRIVAL_RATE, scale.transactions, seed=seed + rep
        )
        gamma = lag1_autocorrelation(rts, warmup=warmup)
        gamma_series.add(rep, gamma)
        threshold_series.add(rep, threshold)
        if is_significant(gamma, effective):
            significant += 1
    table.add_series(gamma_series)
    table.add_series(threshold_series)
    table.notes.append(
        f"{significant} of {replications} replications significant at 95 %"
    )
    # Companion check: is the paper's 10 % warm-up discard generous
    # enough?  Compare it with the analytic relaxation time of the
    # queue-length CTMC at each load.
    warmup_table = Table(
        title=(
            "Warm-up adequacy: queue-length relaxation time vs the "
            "paper's 10 % discard"
        ),
        x_label="load_cpus",
        y_label="seconds",
    )
    relax_series = Series(label="relaxation time (L1 < 0.01)")
    discard_series = Series(label="discard window (10 % of run)")
    for load in (2.0, 8.0, 9.0):
        rate = load * 0.2
        process = MMcQueueLengthProcess(rate, 0.2, 16, capacity=150)
        relax_series.add(load, process.time_to_near_steady_state(0.01))
        discard_series.add(load, warmup / rate)
    warmup_table.add_series(relax_series)
    warmup_table.add_series(discard_series)
    return ExperimentResult(
        experiment_id="autocorr",
        description="First-order autocorrelation study (Section 4.1)",
        tables=[table, warmup_table],
        paper_expectations=[
            "only 1 of 5 replications shows |gamma_hat| > 1.96/sqrt(90000)",
            "first-order correlation plays a minor role even at the "
            "maximum load of interest",
        ],
    )
