"""``repro watch``: tick mode over recorded inputs, follow mode over SSE.

Tick mode is the cron/CI entry point: burn-rate rules replay a
recorded trace, regression rules walk the run ledger, and the exit
code is 1 exactly when an incident is still open.  The aging trace
here is the same deterministic synthetic campaign the engine tests
pin, so the incident table is bit-for-bit reproducible.
"""

import json
import threading

import pytest

from repro.cli import main
from repro.obs.columnar.io import write_columnar
from repro.obs.columnar.synth import synth_campaign_trace
from repro.obs.exporters import write_jsonl

#: Burn-rule flags matched to the synthetic campaign's SLO and volume.
TICK = [
    "watch", "--tick",
    "--slo", "0.2",
    "--min-count", "50",
    "--snapshot-every", "200",
]


def ledger_entry(entry_id, rts):
    """A run-ledger entry with pinned per-replication response times."""
    n = len(rts)
    return {
        "id": entry_id,
        "kind": "simulate",
        "manifest": {"manifest_hash": "abc123", "kind": "simulate"},
        "outcomes": {
            "per_replication": {
                "avg_response_time": list(rts),
                "loss_fraction": [0.0] * n,
                "rejuvenations": [1.0] * n,
                "gc_count": [0.0] * n,
            }
        },
    }


@pytest.fixture(scope="class")
def traces(tmp_path_factory):
    """The seeded aging campaign, written in both trace formats."""
    root = tmp_path_factory.mktemp("watch-traces")
    trace = synth_campaign_trace(
        runs=2, events_per_run=4000, horizon_s=3600.0, seed=7
    )
    jsonl = str(root / "aging.jsonl")
    write_jsonl(jsonl, trace.iter_records())
    rcol = str(root / "aging.rcol")
    write_columnar(trace, rcol)
    return jsonl, rcol


class TestWatchTick:
    def test_aging_trace_resolves_and_exits_zero(self, traces, capsys):
        jsonl, _ = traces
        assert main(TICK + ["--trace", jsonl]) == 0
        out = capsys.readouterr().out
        # Both policy runs tripped and recovered inside the trace.
        assert "[close] inc-0001" in out
        assert "[close] inc-0002" in out
        assert "reason=resolved" in out

    def test_json_table_is_identical_across_formats(self, traces, capsys):
        jsonl, rcol = traces
        assert main(TICK + ["--json", "--trace", jsonl]) == 0
        from_jsonl = json.loads(capsys.readouterr().out)
        assert main(TICK + ["--json", "--trace", rcol]) == 0
        from_rcol = json.loads(capsys.readouterr().out)
        assert from_jsonl == from_rcol
        assert from_jsonl["open"] == 0
        incidents = from_jsonl["incidents"]
        assert [i["id"] for i in incidents] == ["inc-0001", "inc-0002"]
        assert {i["target"] for i in incidents} == {
            "faults/synthetic/SRAA/0",
            "faults/synthetic/SARAA/0",
        }
        assert all(i["status"] == "closed" for i in incidents)

    def test_alerts_ledger_and_file_sink_record_transitions(
        self, traces, tmp_path, capsys
    ):
        from repro.obs.sentinel import AlertLedger

        jsonl, _ = traces
        alerts_dir = str(tmp_path / "alerts")
        sink_path = str(tmp_path / "sink.jsonl")
        assert main(
            TICK
            + ["--trace", jsonl, "--alerts", alerts_dir,
               "--sink", f"file:{sink_path}"]
        ) == 0
        capsys.readouterr()
        records = AlertLedger(alerts_dir).records()
        # Runs replay sequentially: each incident opens and resolves
        # before the next run's snapshots begin.
        assert [r["action"] for r in records] == [
            "open", "close", "open", "close",
        ]
        with open(sink_path, encoding="utf-8") as handle:
            sunk = [json.loads(line) for line in handle]
        assert [
            (r["action"], r["incident"]["id"]) for r in sunk
        ] == [
            (r["action"], r["incident"]["id"]) for r in records
        ]

    def test_regression_streak_leaves_an_open_incident(
        self, tmp_path, capsys
    ):
        import os

        ledger_dir = tmp_path / "ledger"
        os.makedirs(ledger_dir)
        entries = [
            ledger_entry("sim-0001", [1.0, 1.1, 0.9, 1.0]),
            ledger_entry("sim-0002", [3.0, 3.1, 2.9, 3.05]),
            ledger_entry("sim-0003", [3.0, 3.1, 2.9, 3.05]),
        ]
        with open(ledger_dir / "runs.jsonl", "w", encoding="utf-8") as f:
            for entry in entries:
                f.write(json.dumps(entry) + "\n")
        with open(
            ledger_dir / "baselines.json", "w", encoding="utf-8"
        ) as f:
            json.dump(
                {"prod": {"id": "sim-0001", "manifest_hash": "abc123"}}, f
            )
        assert main([
            "watch", "--tick",
            "--baseline", "prod",
            "--persistence", "2",
            "--ledger", str(ledger_dir),
        ]) == 1
        out = capsys.readouterr().out
        assert "[open] inc-0001" in out
        assert "rule=baseline-regression" in out

    def test_healthy_reruns_stay_quiet(self, tmp_path, capsys):
        import os

        ledger_dir = tmp_path / "ledger"
        os.makedirs(ledger_dir)
        entries = [
            ledger_entry("sim-0001", [1.0, 1.1, 0.9, 1.0]),
            ledger_entry("sim-0002", [1.02, 0.95, 1.05, 0.99]),
            ledger_entry("sim-0003", [0.98, 1.04, 1.0, 1.01]),
        ]
        with open(ledger_dir / "runs.jsonl", "w", encoding="utf-8") as f:
            for entry in entries:
                f.write(json.dumps(entry) + "\n")
        with open(
            ledger_dir / "baselines.json", "w", encoding="utf-8"
        ) as f:
            json.dump(
                {"prod": {"id": "sim-0001", "manifest_hash": "abc123"}}, f
            )
        assert main([
            "watch", "--tick",
            "--baseline", "prod",
            "--persistence", "2",
            "--ledger", str(ledger_dir),
        ]) == 0
        assert "no incidents" in capsys.readouterr().out

    def test_no_rules_is_an_error(self):
        with pytest.raises(SystemExit, match="needs rules"):
            main(["watch", "--tick"])

    def test_missing_trace_is_an_error(self):
        with pytest.raises(SystemExit, match="no such trace"):
            main([
                "watch", "--tick", "--slo", "0.2",
                "--trace", "/nonexistent/trace.rcol",
            ])

    def test_bad_sink_spec_is_an_error(self, traces):
        jsonl, _ = traces
        with pytest.raises(SystemExit):
            main(TICK + ["--trace", jsonl, "--sink", "carrier-pigeon"])


class TestWatchFollow:
    def test_follow_prints_a_live_alert(self, capsys):
        # A watched server; snapshots that trip the burn math are
        # published after the follower attaches, and the resulting
        # alert rides the SSE stream into the follower's stdout.
        from repro.serve import ReproServer

        rules = {
            "burn_rate": [
                {
                    "name": "slo",
                    "slo_s": 0.2,
                    "objective": 0.9,
                    "factor": 2.0,
                    "long_window_s": 100.0,
                    "short_window_s": 20.0,
                    "min_count": 10,
                }
            ]
        }
        server = ReproServer(port=0, rules=rules).start()
        try:
            def trip():
                threading.Event().wait(0.3)
                for ts, completed, bad in [
                    (10.0, 10, 0), (20.0, 20, 20),
                ]:
                    server.broker.publish(
                        "live.snapshot",
                        {
                            "ts": ts,
                            "completed": completed,
                            "slo_bad": bad,
                            "slo_s": 0.2,
                            "run": "job-0001",
                        },
                    )

            thread = threading.Thread(target=trip, daemon=True)
            thread.start()
            assert main([
                "watch", "--follow",
                "--url", server.url,
                "--max-events", "1",
                "--timeout", "30",
            ]) == 0
            thread.join()
        finally:
            server.close()
        out = capsys.readouterr().out
        assert "[open] inc-0001" in out
        assert "rule=slo" in out

    def test_follow_alerts_backs_off_exponentially(self, capsys):
        from repro.obs.sentinel.watch import follow_alerts

        delays = []
        printed = follow_alerts(
            "http://127.0.0.1:1",  # nothing listens here
            sleep=delays.append,
            max_retries=4,
        )
        assert printed == 0
        assert delays == [0.5, 1.0, 2.0, 4.0]
        out = capsys.readouterr().out
        assert "connection lost; retry 1 in 0.5s" in out
        assert "retry 4 in 4.0s" in out

    def test_follow_alerts_backoff_is_capped(self):
        from repro.obs.sentinel.watch import (
            BACKOFF_MAX_S,
            follow_alerts,
        )
        import io

        delays = []
        follow_alerts(
            "http://127.0.0.1:1",
            sleep=delays.append,
            max_retries=10,
            stream=io.StringIO(),
        )
        assert max(delays) == BACKOFF_MAX_S
        assert delays[-3:] == [BACKOFF_MAX_S] * 3


class TestTopFollowBackoff:
    def test_follow_snapshots_backs_off_and_recovers(self, tmp_path):
        import io

        from repro.obs.live.top import follow_snapshots

        path = tmp_path / "snapshot.json"
        delays = []

        def sleep(delay):
            delays.append(delay)
            if len(delays) == 3:
                # Source comes back: the next fetch succeeds and the
                # backoff resets to the base interval.
                path.write_text(json.dumps({"ts": 1.0}))

        painted = follow_snapshots(
            str(path),
            interval_s=1.0,
            frames=5,
            stream=io.StringIO(),
            sleep=sleep,
        )
        assert painted == 5
        assert delays == [1.0, 2.0, 4.0, 1.0]
