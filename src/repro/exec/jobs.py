"""Declarative, picklable replication jobs.

A :class:`ReplicationJob` is plain data: the system configuration, an
*arrival source* and a *policy source* (declarative specs or zero-arg
factories), and the run parameters.  Because the job carries no live
simulator state and no closures when built from specs, it crosses
process boundaries, which is what lets
:class:`~repro.exec.backends.ProcessPoolBackend` fan the Section-5
evaluation grid out over cores.

Sources are duck-typed: anything with a ``build()`` method (e.g.
:class:`~repro.core.spec.PolicySpec`,
:class:`~repro.ecommerce.spec.ArrivalSpec`) builds a fresh instance per
job; a zero-argument callable is invoked instead (the pre-spec factory
protocol, still supported -- but closures only pickle under fork-less
backends when they are module-level functions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Optional, Tuple, Union

from repro.systems.protocol import resolve_system

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.base import RejuvenationPolicy
    from repro.ecommerce.metrics import RunResult
    from repro.ecommerce.workload import ArrivalProcess

#: Builds a fresh arrival process per job: a spec or a factory.
ArrivalSource = Union[Any, Callable[[], "ArrivalProcess"]]
#: Builds a fresh policy per job: a spec, a factory, or None (no policy).
PolicySource = Union[Any, Callable[[], Optional["RejuvenationPolicy"]], None]


@dataclass(frozen=True)
class ReplicationJob:
    """One independent replication of the Section-3 model, as plain data.

    ``tag`` is caller bookkeeping (e.g. ``(label, load, replication)``)
    carried through the backend and surfaced in progress events; it does
    not affect execution.

    ``trace_level`` (one of :data:`repro.obs.tracer.TRACE_LEVELS`, or
    ``None`` for the near-free untraced path) makes the worker build a
    :class:`~repro.obs.tracer.Tracer` whose events ride back on
    ``RunResult.trace``; ``telemetry_interval_s`` likewise installs a
    fixed-interval probe whose samples ride back on
    ``RunResult.telemetry``.  Both stay plain data, so the job remains
    picklable.

    ``live`` (a :class:`repro.obs.live.LiveSpec`, or ``None``) turns on
    constant-memory live telemetry: the worker builds a
    :class:`~repro.obs.live.LiveTap` -- composed with the full tracer
    via a tee when both are requested -- and the final aggregator,
    flight-recorder dumps, and (with ``profile=True``) the DES
    profiler's snapshot ride back on ``RunResult.live`` / ``flight`` /
    ``profile``.  A spec carrying a ``display`` is unpicklable by
    design: the process-pool backend then runs the job in the parent
    process, which is where a terminal renderer must live.
    """

    config: Any  # SystemConfig
    arrival: ArrivalSource
    policy: PolicySource
    n_transactions: int
    seed: Optional[int]
    warmup: int = 0
    collect_response_times: bool = False
    tag: Tuple[Any, ...] = ()
    trace_level: Optional[str] = None
    #: How the worker buffers and returns the trace: ``None``/"jsonl"
    #: for the tuple-of-TraceEvent payload, "columnar" for an encoded
    #: :class:`~repro.obs.columnar.store.EventBatch`.  Pure
    #: representation -- excluded from the manifest like all
    #: observability fields.
    trace_format: Optional[str] = None
    telemetry_interval_s: Optional[float] = None
    #: Optional fault scenario (e.g. repro.faults FaultScenario) or a
    #: plain sequence of picklable injections, armed at run start.
    faults: Any = None
    #: Optional repro.obs.live LiveSpec: streaming aggregation plus the
    #: flight-recorder ring, at O(1) memory whatever the horizon.
    live: Any = None
    #: Attribute per-event wall-clock and counts to subsystems
    #: (rides back on ``RunResult.profile``).
    profile: bool = False
    #: Substrate selector: ``None`` (the default single node), a kind
    #: name from :data:`repro.systems.SYSTEM_KINDS`, or a configured
    #: :class:`~repro.systems.SystemSpec` (e.g. a ``FleetSpec``).
    system: Any = None

    def manifest_dict(self) -> dict:
        """The job's deterministic identity, as canonical plain data.

        Covers exactly the fields that shape the simulated trajectory
        -- config, sources, horizon, seed, warmup, faults.  The
        observability fields (tracing, telemetry, live taps, profiling)
        are excluded on purpose: they watch the run without changing
        it, so a traced and an untraced run of the same spec must
        share one manifest hash.
        """
        from repro.obs.ledger.canonical import to_plain

        manifest = {
            "config": to_plain(self.config),
            "arrival": to_plain(self.arrival),
            "policy": to_plain(self.policy),
            "n_transactions": int(self.n_transactions),
            "seed": self.seed,
            "warmup": int(self.warmup),
            "faults": to_plain(self.faults),
        }
        if self.system is not None:
            # Only non-default substrates appear in the manifest, so
            # every pre-protocol single-node hash (and the committed
            # ledger baselines) stays stable.
            manifest["system"] = to_plain(
                resolve_system(self.system).to_dict()
            )
        return manifest


def build_arrival(source: ArrivalSource) -> "ArrivalProcess":
    """A fresh arrival process from a spec or factory."""
    build = getattr(source, "build", None)
    if build is not None:
        return build()
    if callable(source):
        return source()
    raise TypeError(
        "arrival source must be an ArrivalSpec (or any object with a "
        f"build() method) or a zero-argument factory, got {source!r}"
    )


def build_policy(source: PolicySource) -> Optional["RejuvenationPolicy"]:
    """A fresh policy from a spec or factory (``None`` disables it)."""
    if source is None:
        return None
    build = getattr(source, "build", None)
    if build is not None:
        return build()
    if callable(source):
        return source()
    raise TypeError(
        "policy source must be a PolicySpec (or any object with a "
        "build() method), a zero-argument factory, or None, got "
        f"{source!r}"
    )


def execute_job(job: ReplicationJob) -> "RunResult":
    """Run one replication job to completion (in this process).

    Dispatches through the :mod:`repro.systems` protocol: the job's
    ``system`` spec builds the substrate (the single Section-3 node by
    default) from the job's sources, and the substrate runs under the
    job's observability sinks and fault scenario.  The result is a
    :class:`~repro.ecommerce.metrics.RunResult` whatever the substrate.
    """
    # Imported here, not at module level: repro.ecommerce.runner imports
    # this module, so a top-level import would be circular.
    from repro.systems.protocol import ObsSpec

    spec = resolve_system(job.system)
    system = spec.build(
        job.config,
        job.arrival,
        job.policy,
        seed=job.seed,
        obs=ObsSpec(
            trace_level=job.trace_level,
            trace_format=job.trace_format,
            telemetry_interval_s=job.telemetry_interval_s,
            live=job.live,
            profile=job.profile,
        ),
        faults=job.faults,
    )
    return system.run(
        job.n_transactions,
        warmup=job.warmup,
        collect_response_times=job.collect_response_times,
    )
