"""Phase-type distributions against closed-form facts."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.integrate import quad

from repro.queueing.distributions import (
    PhaseType,
    erlang,
    exponential,
    hyperexponential,
    hypoexponential,
)

rates = st.floats(min_value=0.05, max_value=20.0)


class TestExponential:
    def test_moments(self):
        dist = exponential(0.2)
        assert dist.mean() == pytest.approx(5.0)
        assert dist.var() == pytest.approx(25.0)
        assert dist.std() == pytest.approx(5.0)

    def test_cdf_matches_closed_form(self):
        dist = exponential(0.5)
        for x in (0.0, 0.3, 1.0, 4.0):
            assert dist.cdf(x) == pytest.approx(1.0 - math.exp(-0.5 * x))

    def test_pdf_matches_closed_form(self):
        dist = exponential(2.0)
        for x in (0.0, 0.1, 1.0):
            assert dist.pdf(x) == pytest.approx(2.0 * math.exp(-2.0 * x))

    def test_skewness_is_two(self):
        assert exponential(1.3).skewness() == pytest.approx(2.0)

    def test_negative_x(self):
        dist = exponential(1.0)
        assert dist.cdf(-1.0) == 0.0
        assert dist.pdf(-1.0) == 0.0
        assert dist.sf(-1.0) == 1.0

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            exponential(0.0)


class TestErlang:
    def test_moments(self):
        dist = erlang(4, 2.0)
        assert dist.mean() == pytest.approx(4 / 2.0)
        assert dist.var() == pytest.approx(4 / 4.0)

    def test_skewness(self):
        # Erlang(k) skewness is 2/sqrt(k).
        assert erlang(9, 1.0).skewness() == pytest.approx(2.0 / 3.0)

    def test_invalid_stages_rejected(self):
        with pytest.raises(ValueError):
            erlang(0, 1.0)


class TestHypoexponential:
    def test_mean_is_sum_of_stage_means(self):
        dist = hypoexponential([1.0, 2.0, 4.0])
        assert dist.mean() == pytest.approx(1.0 + 0.5 + 0.25)

    def test_var_is_sum_of_stage_vars(self):
        dist = hypoexponential([1.0, 2.0])
        assert dist.var() == pytest.approx(1.0 + 0.25)

    def test_two_stage_cdf_closed_form(self):
        a, b = 0.2, 1.6
        dist = hypoexponential([a, b])
        for x in (0.5, 2.0, 8.0):
            expected = 1.0 - (
                b * math.exp(-a * x) - a * math.exp(-b * x)
            ) / (b - a)
            assert dist.cdf(x) == pytest.approx(expected)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            hypoexponential([])


class TestHyperexponential:
    def test_mean_is_mixture_of_means(self):
        dist = hyperexponential([0.3, 0.7], [1.0, 2.0])
        assert dist.mean() == pytest.approx(0.3 / 1.0 + 0.7 / 2.0)

    def test_cdf_is_mixture_of_cdfs(self):
        dist = hyperexponential([0.4, 0.6], [0.5, 3.0])
        x = 1.7
        expected = 0.4 * (1 - math.exp(-0.5 * x)) + 0.6 * (
            1 - math.exp(-3.0 * x)
        )
        assert dist.cdf(x) == pytest.approx(expected)

    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(ValueError):
            hyperexponential([0.5, 0.4], [1.0, 2.0])


class TestPhaseTypeGeneral:
    def test_pdf_integrates_to_one(self):
        dist = hypoexponential([0.2, 1.6])
        total, _ = quad(dist.pdf, 0.0, 200.0, limit=200)
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_pdf_is_derivative_of_cdf(self):
        dist = hyperexponential([0.3, 0.7], [0.4, 2.0])
        h = 1e-6
        for x in (0.5, 2.0, 5.0):
            numeric = (dist.cdf(x + h) - dist.cdf(x - h)) / (2 * h)
            assert dist.pdf(x) == pytest.approx(numeric, rel=1e-4)

    def test_atom_at_zero(self):
        dist = PhaseType([0.6], [[-1.0]])
        assert dist.atom_at_zero == pytest.approx(0.4)
        # The cdf jumps at 0 by the atom mass.
        assert dist.cdf(0.0) == pytest.approx(0.4)

    def test_moment_zero_is_one(self):
        assert exponential(1.0).moment(0) == 1.0

    def test_moment_negative_rejected(self):
        with pytest.raises(ValueError):
            exponential(1.0).moment(-1)

    def test_sampling_matches_moments(self):
        dist = hypoexponential([0.5, 2.0])
        rng = np.random.default_rng(42)
        sample = dist.sample(rng, size=20_000)
        assert sample.mean() == pytest.approx(dist.mean(), rel=0.05)
        assert sample.std() == pytest.approx(dist.std(), rel=0.08)

    def test_sampling_with_atom(self):
        dist = PhaseType([0.5], [[-1.0]])
        rng = np.random.default_rng(1)
        sample = dist.sample(rng, size=4_000)
        assert (sample == 0.0).mean() == pytest.approx(0.5, abs=0.05)

    def test_sample_size_zero(self):
        assert exponential(1.0).sample(np.random.default_rng(0), 0).size == 0

    def test_validation_rejects_bad_subgenerator(self):
        with pytest.raises(ValueError):
            PhaseType([1.0], [[1.0]])  # positive diagonal
        with pytest.raises(ValueError):
            PhaseType([1.0, 0.0], [[-1.0, 2.0], [0.0, -1.0]])  # row sum > 0

    def test_validation_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            PhaseType([1.5], [[-1.0]])
        with pytest.raises(ValueError):
            PhaseType([1.0, 0.0], [[-1.0]])  # dimension mismatch

    @given(rates, rates)
    @settings(max_examples=25, deadline=None)
    def test_property_hypoexp_mean_var(self, a, b):
        dist = hypoexponential([a, b])
        assert dist.mean() == pytest.approx(1 / a + 1 / b, rel=1e-9)
        assert dist.var() == pytest.approx(1 / a**2 + 1 / b**2, rel=1e-9)

    @given(rates, st.floats(min_value=0.0, max_value=50.0))
    @settings(max_examples=25, deadline=None)
    def test_property_cdf_in_unit_interval(self, rate, x):
        value = exponential(rate).cdf(x)
        assert 0.0 <= value <= 1.0
