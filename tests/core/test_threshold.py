"""Bobbio-style threshold baselines."""

import numpy as np
import pytest

from repro.core.threshold import DeterministicThreshold, RiskBasedThreshold


class TestDeterministic:
    def test_triggers_above_threshold(self):
        policy = DeterministicThreshold(10.0)
        assert policy.observe(10.1) is True
        assert policy.observe(10.0) is False
        assert policy.observe(3.0) is False

    def test_burst_fragility(self):
        # One outlier in otherwise healthy traffic triggers -- the
        # weakness the bucket approach addresses.
        policy = DeterministicThreshold(10.0)
        triggers = policy.observe_many([5.0] * 50 + [60.0] + [5.0] * 50)
        assert triggers == [50]

    def test_reset_is_noop(self):
        policy = DeterministicThreshold(10.0)
        policy.reset()
        assert policy.observe(11.0) is True

    def test_describe(self):
        assert "10" in DeterministicThreshold(10.0).describe()


class TestRiskBased:
    def test_zero_risk_below_soft_limit(self):
        policy = RiskBasedThreshold(10.0, 20.0, rng=np.random.default_rng(0))
        assert policy.risk(9.9) == 0.0
        assert policy.observe(9.9) is False

    def test_certain_above_hard_limit(self):
        policy = RiskBasedThreshold(10.0, 20.0, rng=np.random.default_rng(0))
        assert policy.risk(20.0) == 1.0
        assert policy.observe(25.0) is True

    def test_linear_in_between(self):
        policy = RiskBasedThreshold(10.0, 20.0)
        assert policy.risk(15.0) == pytest.approx(0.5)
        assert policy.risk(12.5) == pytest.approx(0.25)

    def test_trigger_frequency_matches_risk(self):
        policy = RiskBasedThreshold(
            10.0, 20.0, rng=np.random.default_rng(42)
        )
        trials = 10_000
        triggers = sum(policy.observe(15.0) for _ in range(trials))
        assert triggers / trials == pytest.approx(0.5, abs=0.03)

    def test_seeded_rng_reproducible(self):
        a = RiskBasedThreshold(10.0, 20.0, rng=np.random.default_rng(5))
        b = RiskBasedThreshold(10.0, 20.0, rng=np.random.default_rng(5))
        values = [12.0, 18.0, 14.0, 19.0] * 10
        assert a.observe_many(values) == b.observe_many(values)

    def test_validation(self):
        with pytest.raises(ValueError):
            RiskBasedThreshold(20.0, 10.0)
        with pytest.raises(ValueError):
            RiskBasedThreshold(10.0, 10.0)
