"""Brook-Evans CUSUM ARL against Monte Carlo and known structure."""

import math

import numpy as np
import pytest

from repro.core.control_charts import CUSUMPolicy
from repro.core.sla import ServiceLevelObjective
from repro.stats.cusum_arl import cusum_arl, cusum_detection_profile


def exponential_cdf(mean):
    return lambda x: 1.0 - math.exp(-x / mean) if x > 0 else 0.0


def monte_carlo_arl(mean, reference, h, runs, seed):
    rng = np.random.default_rng(seed)
    slo = ServiceLevelObjective(mean=reference, std=1.0)
    # Reuse the production policy with k = 0 so ref = slo.mean.
    lengths = []
    for _ in range(runs):
        policy = CUSUMPolicy(slo, k_sigmas=0.0, h_sigmas=h)
        steps = 0
        while True:
            steps += 1
            if policy.observe(float(rng.exponential(mean))):
                break
            if steps > 10**6:  # pragma: no cover - guard
                raise AssertionError("no trigger")
        lengths.append(steps)
    return float(np.mean(lengths))


class TestAgainstMonteCarlo:
    @pytest.mark.parametrize(
        "mean, reference, h",
        [
            (5.0, 7.5, 25.0),   # in-control-ish: exp(5) against ref 7.5
            (15.0, 7.5, 25.0),  # out-of-control: shifted mean
            (5.0, 6.0, 10.0),   # tighter design
        ],
    )
    def test_matches_simulation(self, mean, reference, h):
        exact = cusum_arl(exponential_cdf(mean), reference, h, states=300)
        empirical = monte_carlo_arl(
            mean, reference, h, runs=3_000, seed=int(mean * 10)
        )
        assert empirical == pytest.approx(exact, rel=0.08)


class TestStructure:
    def test_arl_grows_with_h(self):
        cdf = exponential_cdf(5.0)
        values = [cusum_arl(cdf, 7.5, h) for h in (5.0, 15.0, 30.0)]
        assert values[0] < values[1] < values[2]

    def test_shift_shortens_arl(self):
        healthy, degraded = cusum_detection_profile(
            exponential_cdf(5.0), exponential_cdf(20.0), 7.5, 25.0
        )
        assert degraded < healthy / 5

    def test_discretisation_converges(self):
        cdf = exponential_cdf(5.0)
        coarse = cusum_arl(cdf, 7.5, 25.0, states=100)
        fine = cusum_arl(cdf, 7.5, 25.0, states=800)
        assert coarse == pytest.approx(fine, rel=0.02)

    def test_certain_increment_gives_deterministic_delay(self):
        # X = 10 with certainty, ref 5: S grows 5 per step, h = 24
        # crossed at step 5 (S = 25 >= 24 treated as absorbed at > h
        # boundary by the midpoint discretisation).
        step_cdf = lambda x: 1.0 if x >= 10.0 else 0.0  # noqa: E731
        exact = cusum_arl(step_cdf, 5.0, 24.0, states=400)
        assert exact == pytest.approx(5.0, abs=0.3)

    def test_mmc_response_times_plug_in(self, paper_model):
        # Healthy M/M/16 response times: the in-control ARL of the
        # textbook design is comfortably long.
        arl = cusum_arl(
            paper_model.response_time_cdf, 7.5, 25.0, states=200
        )
        assert arl > 50.0

    def test_validation(self):
        cdf = exponential_cdf(5.0)
        with pytest.raises(ValueError):
            cusum_arl(cdf, 7.5, 0.0)
        with pytest.raises(ValueError):
            cusum_arl(cdf, 7.5, 25.0, states=5)
