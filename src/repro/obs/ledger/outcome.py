"""Outcome blocks: what a run produced, as deterministic plain data.

The ledger separates *outcomes* (simulation results -- bit-identical
across backends for the same spec+seed, so serial and process-pool
entries agree byte for byte; pinned by
``tests/obs/test_ledger_manifest.py``) from *timing* (wall-clock and
DES-profiler attribution -- machine noise by nature, recorded for
trending but never compared statistically by ``repro runs check``).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.stats.intervals import mean_confidence_interval


def _interval(values, confidence: float = 0.95) -> Dict[str, float]:
    mean, low, high = mean_confidence_interval(values, confidence)
    return {"mean": mean, "low": low, "high": high}


def replicated_outcomes(result: Any) -> Dict[str, Any]:
    """The outcome block of a ``run_replications`` result.

    Keeps the raw per-replication vectors: ``repro runs check`` needs
    them for the CLT comparison against a baseline, and they are small
    (one float per replication, not per transaction).  RT quantiles
    come from the merged live sketches when the run carried them.
    """
    runs = result.runs
    out: Dict[str, Any] = {
        "replications": len(runs),
        "per_replication": {
            "avg_response_time": [r.avg_response_time for r in runs],
            "rt_std": [r.rt_std for r in runs],
            "loss_fraction": [r.loss_fraction for r in runs],
            "rejuvenations": [r.rejuvenations for r in runs],
            "gc_count": [r.gc_count for r in runs],
            "completed": [r.completed for r in runs],
            "lost": [r.lost for r in runs],
        },
        "response_time": _interval([r.avg_response_time for r in runs]),
        "loss_fraction": _interval([r.loss_fraction for r in runs]),
        "rejuvenations_per_replication": result.rejuvenations,
        "gc_per_replication": result.gc_count,
        "flight_dumps": sum(len(r.flight or ()) for r in runs),
    }
    merged = result.merged_live()
    if merged is not None:
        from repro.obs.live import live_outcome

        out["live"] = live_outcome(merged)
    return out


def experiment_outcomes(result: Any) -> Dict[str, Any]:
    """The outcome block of an :class:`ExperimentResult`.

    ``result_hash`` is the canonical digest of the full result payload
    -- two bit-identical reproductions of a figure share it, so drift
    detection can short-circuit.  The per-series summaries keep checks
    and diffs readable without storing every point twice.
    """
    from repro.experiments.io import result_to_dict
    from repro.obs.ledger.canonical import canonical_hash

    payload = result_to_dict(result)
    tables = []
    for table in result.tables:
        series = []
        for s in table.series:
            values = [y for _, y in sorted(s.points.items())]
            series.append(
                {
                    "label": s.label,
                    "n": len(values),
                    "mean": sum(values) / len(values) if values else 0.0,
                    "min": min(values) if values else 0.0,
                    "max": max(values) if values else 0.0,
                }
            )
        tables.append({"title": table.title, "series": series})
    return {
        "experiment_id": result.experiment_id,
        "result_hash": canonical_hash(payload),
        "tables": tables,
    }


def campaign_outcomes(campaign: Any) -> Dict[str, Any]:
    """The outcome block of a fault campaign: the robustness scores."""
    from dataclasses import asdict

    out: Dict[str, Any] = {
        "scores": [asdict(score) for score in campaign.scores],
    }
    merged = campaign.merged_live()
    if merged is not None:
        from repro.obs.live import live_outcome

        out["live"] = live_outcome(merged)
    return out


def timing_block(
    wall_clock_s: Optional[float] = None, profile: Any = None
) -> Dict[str, Any]:
    """The non-deterministic timing section of a ledger entry.

    Wall-clock and profiler *seconds* vary run to run; the profiler's
    event counts are deterministic but ride here with their seconds to
    keep the attribution table in one place.
    """
    out: Dict[str, Any] = {"wall_clock_s": wall_clock_s}
    if profile is not None:
        out["profile"] = {
            "total_events": profile.total_events,
            "total_seconds": profile.total_seconds,
            "entries": [
                {
                    "kind": entry.kind,
                    "subsystem": entry.subsystem,
                    "events": entry.events,
                    "seconds": entry.seconds,
                }
                for entry in profile.entries
            ],
        }
    return out
